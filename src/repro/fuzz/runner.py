"""The fuzzing loop and the ``python -m repro.fuzz`` command line.

Each integer seed yields one flow trial, one query trial, one lint
trial (static/dynamic agreement), one planner trial (planned versus
unplanned execution), one parallel trial (chunked versus serial
execution, byte-identical) and one evolve trial (incremental design
evolution versus full rebuild), all fully determined by the seed
(string-seeded RNG, stable across platforms and ``PYTHONHASHSEED``).  Failures are shrunk and written as corpus-format
JSON into ``--failures-dir``; promote a file into
``tests/fuzz/corpus/`` to pin the regression forever.

Typical uses::

    python -m repro.fuzz --seeds 500
    python -m repro.fuzz --start 41 --seeds 1        # reproduce seed 41
    python -m repro.fuzz --seeds 100000 --time-budget 60
    python -m repro.fuzz --replay fuzz-failures/seed41_flow.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional

from repro.fuzz import corpus
from repro.fuzz.evolveoracle import (
    build_evolve_trial,
    check_evolve_trial,
    shrink_evolve_trial,
)
from repro.fuzz.flowgen import build_flow_trial
from repro.fuzz.lintoracle import (
    build_lint_trial,
    check_lint_trial,
    shrink_lint_trial,
)
from repro.fuzz.oracle import check_flow_trial, check_query_trial
from repro.fuzz.paralleloracle import (
    build_parallel_trial,
    check_parallel_trial,
    shrink_parallel_trial,
)
from repro.fuzz.planoracle import (
    build_plan_trial,
    check_plan_trial,
    shrink_plan_trial,
)
from repro.fuzz.querygen import build_query_trial
from repro.fuzz.shrink import shrink_flow_trial, shrink_query_trial

_KINDS = (
    ("flow", build_flow_trial, check_flow_trial, shrink_flow_trial),
    ("query", build_query_trial, check_query_trial, shrink_query_trial),
    ("lint", build_lint_trial, check_lint_trial, shrink_lint_trial),
    ("planned", build_plan_trial, check_plan_trial, shrink_plan_trial),
    (
        "parallel",
        build_parallel_trial,
        check_parallel_trial,
        shrink_parallel_trial,
    ),
    ("evolve", build_evolve_trial, check_evolve_trial, shrink_evolve_trial),
)


def run(
    seeds,
    time_budget: Optional[float] = None,
    failures_dir=None,
    echo: Optional[Callable[[str], None]] = None,
    shrink: bool = True,
) -> dict:
    """Run the differential trials for every seed in ``seeds``.

    Returns a report dict: ``trials`` (count actually run), ``seeds``
    (count consumed), ``elapsed`` and ``failures`` — one record per
    failing trial with the seed, kind, oracle detail and the shrunk
    trial as a corpus entry.
    """
    say = echo if echo is not None else (lambda message: None)
    started = time.monotonic()
    report = {"trials": 0, "seeds": 0, "failures": [], "elapsed": 0.0}
    for seed in seeds:
        if (
            time_budget is not None
            and time.monotonic() - started >= time_budget
        ):
            say(f"time budget of {time_budget:.1f}s reached")
            break
        report["seeds"] += 1
        for kind, build, check, reduce_trial in _KINDS:
            try:
                trial = build(seed)
                detail = check(trial)
            except Exception as exc:  # the harness itself must not die
                detail = f"harness: {type(exc).__name__}: {exc}"
                trial = None
            report["trials"] += 1
            if detail is None:
                continue
            say(f"seed {seed} [{kind}] FAILED: {detail}")
            record = {"seed": seed, "kind": kind, "detail": detail}
            if trial is not None:
                shrunk = reduce_trial(trial) if shrink else trial
                record["entry"] = corpus.encode_trial(
                    shrunk, description=detail.split("\n")[0][:200]
                )
                if failures_dir is not None:
                    directory = Path(failures_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    path = directory / f"seed{seed}_{kind}.json"
                    corpus.save_entry(path, record["entry"])
                    record["path"] = str(path)
                    say(
                        f"  shrunk reproducer written to {path} "
                        f"(replay: python -m repro.fuzz --replay {path})"
                    )
            report["failures"].append(record)
    report["elapsed"] = time.monotonic() - started
    return report


def _replay_files(paths: List[str], say) -> int:
    failures = 0
    for raw_path in paths:
        path = Path(raw_path)
        entry = json.loads(path.read_text())
        detail = corpus.replay(entry)
        if detail is None:
            say(f"{path}: PASS")
        else:
            failures += 1
            say(f"{path}: FAIL: {detail}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Differential fuzzing of the dual-mode ETL engine and the "
            "document store."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to run (default: 100)",
    )
    parser.add_argument(
        "--start", type=int, default=0,
        help="first seed (default: 0)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="stop after S seconds even if seeds remain",
    )
    parser.add_argument(
        "--failures-dir", default="fuzz-failures",
        help="where shrunk reproducers are written (default: fuzz-failures)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="record failures without minimising them",
    )
    parser.add_argument(
        "--replay", nargs="+", metavar="FILE",
        help="replay corpus-format JSON files instead of fuzzing",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print the summary"
    )
    options = parser.parse_args(argv)
    say = (lambda message: None) if options.quiet else print

    if options.replay:
        failures = _replay_files(options.replay, print)
        print(
            f"replayed {len(options.replay)} entr"
            f"{'y' if len(options.replay) == 1 else 'ies'}, "
            f"{failures} failing"
        )
        return 1 if failures else 0

    report = run(
        range(options.start, options.start + options.seeds),
        time_budget=options.time_budget,
        failures_dir=options.failures_dir,
        echo=say,
        shrink=not options.no_shrink,
    )
    print(
        f"{report['trials']} trials over {report['seeds']} seeds in "
        f"{report['elapsed']:.1f}s: {len(report['failures'])} failure(s)"
    )
    divergences = _locksan_divergences(say)
    return 1 if report["failures"] or divergences else 0


def _locksan_divergences(say) -> int:
    """Cross-check observed lock edges against the static graph.

    Only active under ``REPRO_LOCKSAN=1``: every lock-order edge the
    sanitizer observed during the fuzz run must appear in the static
    may-acquire-under graph — an edge the analyzer missed means its
    call resolution has a hole worth a ``# calls:`` annotation.
    """
    from repro.locks import sanitizing

    if not sanitizing():
        return 0
    from repro.analysis.concurrency.sanitizer import monitor

    divergences = monitor.verify_against_static()
    for divergence in divergences:
        say(f"LOCKSAN: {divergence}")
    for finding in monitor.findings:
        say(f"LOCKSAN: {finding}")
    if divergences:
        print(
            f"lock sanitizer: {len(divergences)} observed edge(s) "
            f"outside the static graph"
        )
    return len(divergences)


if __name__ == "__main__":
    sys.exit(main())
