"""HTTP front end over the design-session services.

Routes (all request/response bodies are JSON):

========  =====================================  ==============================
GET       /healthz                               liveness + session count
GET       /sessions                              session names
POST      /sessions                              ``{"name": ...}`` -> create
GET       /sessions/<name>/status                DesignStatus
GET       /sessions/<name>/design                unified design summary
GET       /sessions/<name>/requirements          elicited requirement ids
POST      /sessions/<name>/requirements          ``{"xrq": "<xml>"}`` -> add
DELETE    /sessions/<name>/requirements/<id>     remove one requirement
POST      /sessions/<name>/deploy                ``{"platform": ...}``
========  =====================================  ==============================

Errors come back as ``{"error": message}`` with 400 (bad input), 404
(unknown session/requirement), 409 (conflict) or 500.

Concurrency model: the HTTP server is threaded (one handler thread per
connection); the :class:`SessionManager` serialises all work *within* a
session behind a per-session reentrant lock while different sessions
proceed in parallel — exactly the isolation the session-scoped
repository namespaces promise.  This front end is what exposed the
check-then-set races fixed in the engine caches, the store snapshot and
the artifact bus: hundreds of handler threads hammer those paths at
once (see ``benchmarks/run_serving.py``).
"""

from __future__ import annotations

import json
import re
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.core.services.session import DesignSession
from repro.errors import QuarryError, RepositoryError
from repro.repository.metadata import MetadataRepository

#: Session names are path segments and repository namespace parts.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class ServeError(Exception):
    """An error with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SessionManager:
    """Named design sessions over one shared metadata repository.

    ``create``/``get`` are guarded by the manager lock; every operation
    *on* a session must run inside ``with manager.locked(name):`` so a
    session's fold state only ever sees one mutator at a time.
    """

    def __init__(
        self,
        ontology,
        schema,
        mappings,
        repository: Optional[MetadataRepository] = None,
        source_database=None,
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._repository = (
            repository if repository is not None else MetadataRepository()
        )
        #: Optional database handed to ``deploy`` for platforms that
        #: extract (``native``); ``None`` serves design-only platforms.
        self.source_database = source_database
        self._sessions: Dict[str, DesignSession] = {}
        self._locks: Dict[str, threading.RLock] = {}
        self._lock = threading.Lock()

    def create(self, name: str) -> DesignSession:
        if not _NAME_PATTERN.match(name or ""):
            raise ServeError(
                400,
                "session name must be 1-64 characters of "
                "[A-Za-z0-9_.-]",
            )
        with self._lock:
            if name in self._sessions:
                raise ServeError(409, f"session {name!r} already exists")
            session = DesignSession(
                self._ontology,
                self._schema,
                self._mappings,
                repository=self._repository,
                session=name,
            )
            self._sessions[name] = session
            self._locks[name] = threading.RLock()
            return session

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @contextmanager
    def locked(self, name: str):
        """The named session, held under its per-session lock."""
        with self._lock:
            session = self._sessions.get(name)
            lock = self._locks.get(name)
        if session is None or lock is None:
            raise ServeError(404, f"unknown session {name!r}")
        with lock:
            yield session


def tpch_manager(**kwargs) -> SessionManager:
    """A manager over the TPC-H demo domain (the CLI's domain)."""
    from repro.sources import tpch

    return SessionManager(
        tpch.ontology(), tpch.schema(), tpch.mappings(), **kwargs
    )


# -- request handling ---------------------------------------------------------


def _design_summary(session: DesignSession) -> dict:
    unified_md, unified_etl = session.unified_design()
    return {
        "facts": sorted(unified_md.facts),
        "dimensions": sorted(unified_md.dimensions),
        "etl_operations": len(unified_etl),
        "operators": [
            {"name": node.name, "kind": node.kind}
            for node in unified_etl.nodes()
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the session manager (set by the server)."""

    manager: SessionManager  # injected by QuarryServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the load generator's job, not ours

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(400, f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServeError(400, "request body must be a JSON object")
        return payload

    def _route(self, method: str) -> Tuple[int, dict]:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if method == "GET" and parts == ["healthz"]:
            return 200, {
                "status": "ok",
                "sessions": self.manager.count(),
            }
        if parts and parts[0] == "sessions":
            return self._route_sessions(method, parts[1:])
        raise ServeError(404, f"no such route: {method} {self.path}")

    def _route_sessions(
        self, method: str, parts: List[str]
    ) -> Tuple[int, dict]:
        manager = self.manager
        if not parts:
            if method == "GET":
                return 200, {"sessions": manager.names()}
            if method == "POST":
                name = self._body().get("name")
                if not isinstance(name, str):
                    raise ServeError(400, "body needs a 'name' string")
                manager.create(name)
                return 201, {"session": name}
            raise ServeError(404, f"no such route: {method} /sessions")
        name, rest = parts[0], parts[1:]
        if method == "GET" and rest == ["status"]:
            with manager.locked(name) as session:
                return 200, session.status().to_dict()
        if method == "GET" and rest == ["design"]:
            with manager.locked(name) as session:
                return 200, _design_summary(session)
        if method == "GET" and rest == ["requirements"]:
            with manager.locked(name) as session:
                return 200, {
                    "requirements": [
                        requirement.id
                        for requirement in session.requirements()
                    ]
                }
        if method == "POST" and rest == ["requirements"]:
            xrq_text = self._body().get("xrq")
            if not isinstance(xrq_text, str):
                raise ServeError(400, "body needs an 'xrq' string")
            with manager.locked(name) as session:
                report = session.add_requirement_xrq(xrq_text)
                return 201, report.to_dict()
        if (
            method == "DELETE"
            and len(rest) == 2
            and rest[0] == "requirements"
        ):
            with manager.locked(name) as session:
                report = session.remove_requirement(rest[1])
                return 200, report.to_dict()
        if method == "POST" and rest == ["deploy"]:
            body = self._body()
            platform = body.get("platform")
            if not isinstance(platform, str):
                raise ServeError(400, "body needs a 'platform' string")
            with manager.locked(name) as session:
                result = session.deploy(
                    platform,
                    source_database=manager.source_database,
                    lint_gate=bool(body.get("lint_gate", True)),
                )
                return 200, {
                    "design": result.design,
                    "platform": result.platform,
                    "artifacts": dict(result.artifacts),
                    "loaded": (
                        dict(result.stats.loaded) if result.stats else None
                    ),
                }
        raise ServeError(
            404, f"no such route: {method} /sessions/{name}/{'/'.join(rest)}"
        )

    def _handle(self, method: str) -> None:
        try:
            status, payload = self._route(method)
        except ServeError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except KeyError as exc:
            self._reply(404, {"error": f"not found: {exc}"})
        except (QuarryError, RepositoryError) as exc:
            message = str(exc)
            status = 409 if "already exists" in message else 400
            self._reply(status, {"error": message})
        except Exception as exc:  # the server must survive any request
            self._reply(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        else:
            self._reply(status, payload)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class QuarryServer:
    """A threaded HTTP server bound to one session manager.

    ``port=0`` picks a free port (``server.port`` reports it).  Use as
    a context manager, or call :meth:`start`/:meth:`shutdown`.
    """

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"manager": manager})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.manager = manager

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QuarryServer":
        """Serve on a background thread; returns once the socket listens."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "QuarryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
