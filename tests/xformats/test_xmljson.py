"""Unit tests for the generic XML↔JSON converter and parser registry."""

import pytest

from repro.errors import FormatError
from repro.xformats import FormatRegistry, json_to_xml, xml_to_json
from repro.xformats.xmljson import json_text_to_xml, xml_to_json_text


class TestXmlJson:
    def test_simple_roundtrip(self):
        xml = "<a x=\"1\"><b>hello</b><c/></a>"
        document = xml_to_json(xml)
        assert document["tag"] == "a"
        assert document["attributes"] == {"x": "1"}
        assert document["children"][0]["text"] == "hello"
        rendered = json_to_xml(document)
        assert xml_to_json(rendered) == document

    def test_xrq_document_roundtrips_through_json(self):
        from repro.xformats import xrq
        from tests.core.conftest import build_revenue_requirement

        xml = xrq.dumps(build_revenue_requirement())
        roundtripped = json_to_xml(xml_to_json(xml))
        assert xrq.loads(roundtripped).measures == (
            build_revenue_requirement().measures
        )

    def test_xlm_document_roundtrips_through_json(self):
        from repro.xformats import xlm
        from tests.etlmodel.conftest import build_revenue_flow

        xml = xlm.dumps(build_revenue_flow())
        parsed = xlm.loads(json_to_xml(xml_to_json(xml)))
        assert set(parsed.node_names()) == set(
            build_revenue_flow().node_names()
        )

    def test_text_level_roundtrip(self):
        xml = "<doc><v>1</v></doc>"
        json_text = xml_to_json_text(xml)
        assert '"tag": "doc"' in json_text
        assert "<v>1</v>" in json_text_to_xml(json_text)

    def test_whitespace_only_text_is_dropped(self):
        document = xml_to_json("<a>\n  <b/>\n</a>")
        assert document["text"] is None

    def test_malformed_xml_raises(self):
        with pytest.raises(FormatError):
            xml_to_json("<a>")

    def test_malformed_json_raises(self):
        with pytest.raises(FormatError):
            json_text_to_xml("{not json")

    def test_incomplete_document_raises(self):
        with pytest.raises(FormatError):
            json_to_xml({"tag": "a"})


class TestRegistry:
    def test_builtins_registered(self):
        registry = FormatRegistry()
        assert registry.notations("requirement", "export") == ["xrq"]
        assert registry.notations("md_schema", "import") == ["xmd"]
        assert registry.notations("etl_flow", "export") == ["xlm"]
        assert registry.notations("envelope", "export") == ["json"]

    def test_export_import_through_registry(self):
        from tests.core.conftest import build_revenue_requirement

        registry = FormatRegistry()
        requirement = build_revenue_requirement()
        text = registry.export("requirement", "xrq", requirement)
        parsed = registry.import_("requirement", "xrq", text)
        assert parsed.id == requirement.id

    def test_register_custom_notation(self):
        registry = FormatRegistry()
        registry.register(
            "etl_flow", "piglatin", "export",
            lambda flow: f"-- pig for {flow.name}",
            description="Apache PigLatin sketch",
        )
        from repro.etlmodel import EtlFlow

        assert registry.export("etl_flow", "piglatin", EtlFlow("f")) == (
            "-- pig for f"
        )

    def test_duplicate_registration_rejected(self):
        registry = FormatRegistry()
        with pytest.raises(FormatError):
            registry.register("etl_flow", "xlm", "export", lambda flow: "")

    def test_replace_allows_override(self):
        registry = FormatRegistry()
        registry.register(
            "etl_flow", "xlm", "export", lambda flow: "override", replace=True
        )
        from repro.etlmodel import EtlFlow

        assert registry.export("etl_flow", "xlm", EtlFlow("f")) == "override"

    def test_unknown_lookup_raises(self):
        registry = FormatRegistry()
        with pytest.raises(FormatError):
            registry.lookup("etl_flow", "cobol", "export")

    def test_bad_artifact_or_direction_rejected(self):
        registry = FormatRegistry()
        with pytest.raises(FormatError):
            registry.register("bogus", "x", "export", lambda value: "")
        with pytest.raises(FormatError):
            registry.register("etl_flow", "x", "sideways", lambda value: "")

    def test_entries_enumeration(self):
        registry = FormatRegistry()
        # xRQ/xMD/xLM import+export, plus the bus envelope's JSON codec.
        assert len(registry.entries()) == 8

    def test_envelope_roundtrip_through_registry(self):
        from repro.core.services import ArtifactEnvelope

        registry = FormatRegistry()
        envelope = ArtifactEnvelope(
            topic="partials", kind="partial.created", session="default",
            sequence=3, position=7, producer="interpretation",
            payload={"requirement": "IR1"},
        )
        text = registry.export("envelope", "json", envelope)
        assert registry.import_("envelope", "json", text) == envelope
