"""Unit tests for dimension conformance and merging."""

import pytest

from repro.errors import MDError
from repro.expressions import ScalarType
from repro.mdmodel import Dimension, Hierarchy, Level, LevelAttribute
from repro.mdmodel.conformance import (
    dimensions_conformable,
    find_matching_level,
    hierarchies_order_compatible,
    level_matches,
    levels_match,
    merge_dimensions,
    merge_levels,
)

STR = ScalarType.STRING


def level(name, attrs, concept=None):
    return Level(
        name,
        attributes=[LevelAttribute(attr, STR) for attr in attrs],
        concept=concept,
    )


class TestLevelMatching:
    def test_same_concept_matches_despite_names(self):
        first = level("Country", ["c_name"], concept="Nation")
        second = level("Nation", ["n_name"], concept="Nation")
        assert levels_match(first, second)

    def test_different_concepts_never_match(self):
        first = level("Country", ["name"], concept="Nation")
        second = level("Country", ["name"], concept="Region")
        assert not levels_match(first, second)

    def test_without_provenance_name_match(self):
        assert levels_match(level("City", ["a"]), level("City", ["b"]))

    def test_without_provenance_attribute_overlap(self):
        first = level("A", ["name", "code"])
        second = level("B", ["name", "zip"])
        assert levels_match(first, second)

    def test_disjoint_attributes_do_not_match(self):
        assert not levels_match(level("A", ["x", "y"]), level("B", ["u", "v"]))

    def test_empty_attribute_sets_do_not_match(self):
        assert not levels_match(Level("A"), Level("B"))

    def test_find_matching_level(self):
        dimension = Dimension("D")
        dimension.add_level(level("Nation", ["n_name"], concept="Nation"))
        probe = level("Country", ["x"], concept="Nation")
        assert find_matching_level(probe, dimension).name == "Nation"
        assert find_matching_level(level("Z", ["z"], concept="Z"), dimension) is None


class TestDimensionConformance:
    def _geo(self, name="Geo"):
        dimension = Dimension(name)
        dimension.add_level(level("City", ["city"], concept="City"))
        dimension.add_level(level("Country", ["country"], concept="Country"))
        dimension.add_hierarchy(Hierarchy("geo", ["City", "Country"]))
        return dimension

    def test_identical_dimensions_conform(self):
        assert dimensions_conformable(self._geo(), self._geo("Geo2"))

    def test_no_shared_levels_do_not_conform(self):
        other = Dimension("Time")
        other.add_level(level("Day", ["day"], concept="Day"))
        other.add_hierarchy(Hierarchy("time", ["Day"]))
        assert not dimensions_conformable(self._geo(), other)

    def test_reversed_rollup_order_blocks_conformance(self):
        reversed_geo = Dimension("GeoR")
        reversed_geo.add_level(level("City", ["city"], concept="City"))
        reversed_geo.add_level(level("Country", ["country"], concept="Country"))
        reversed_geo.add_hierarchy(Hierarchy("geo", ["Country", "City"]))
        pairs = level_matches(self._geo(), reversed_geo)
        assert not hierarchies_order_compatible(self._geo(), reversed_geo, pairs)
        assert not dimensions_conformable(self._geo(), reversed_geo)

    def test_partial_overlap_conforms(self):
        richer = self._geo("Geo3")
        richer.add_level(level("Region", ["region"], concept="Region"))
        richer.hierarchies[0] = Hierarchy("geo", ["City", "Country", "Region"])
        assert dimensions_conformable(self._geo(), richer)


class TestMerging:
    def test_merge_levels_unions_attributes(self):
        target = level("Part", ["p_name"], concept="Part")
        incoming = level("Part", ["p_name", "p_brand"], concept="Part")
        merged = merge_levels(target, incoming)
        assert merged.attribute_names() == ["p_name", "p_brand"]
        assert merged.key == "p_name"

    def test_merge_levels_requires_match(self):
        with pytest.raises(MDError):
            merge_levels(level("A", ["x"], concept="A"), level("B", ["y"], concept="B"))

    def test_merge_levels_fills_missing_concept(self):
        target = level("Part", ["p_name"])
        incoming = level("Part", ["p_type"], concept="Part")
        assert merge_levels(target, incoming).concept == "Part"

    def test_merge_dimensions_unions_levels_and_hierarchies(self):
        first = Dimension("Supplier", requirements={"IR1"})
        first.add_level(level("Supplier", ["s_name"], concept="Supplier"))
        first.add_level(level("Nation", ["n_name"], concept="Nation"))
        first.add_hierarchy(Hierarchy("geo", ["Supplier", "Nation"]))

        second = Dimension("Supplier", requirements={"IR2"})
        second.add_level(level("Supplier", ["s_name", "s_acctbal"], concept="Supplier"))
        second.add_level(level("Nation", ["n_name"], concept="Nation"))
        second.add_level(level("Region", ["r_name"], concept="Region"))
        second.add_hierarchy(Hierarchy("geo", ["Supplier", "Nation", "Region"]))

        merged = merge_dimensions(first, second)
        assert set(merged.levels) == {"Supplier", "Nation", "Region"}
        assert merged.level("Supplier").attribute_names() == ["s_name", "s_acctbal"]
        assert merged.requirements == {"IR1", "IR2"}
        # Both roll-up paths are kept (the richer one under a fresh name).
        assert len(merged.hierarchies) == 2

    def test_merge_drops_duplicate_hierarchies(self):
        first = Dimension("D")
        first.add_level(level("L", ["a"], concept="L"))
        first.add_hierarchy(Hierarchy("h", ["L"]))
        second = Dimension("D")
        second.add_level(level("L", ["a"], concept="L"))
        second.add_hierarchy(Hierarchy("other_name_same_path", ["L"]))
        merged = merge_dimensions(first, second)
        assert len(merged.hierarchies) == 1

    def test_merge_renames_incoming_levels_in_hierarchies(self):
        first = Dimension("Geo")
        first.add_level(level("Nation", ["n_name"], concept="Nation"))
        first.add_hierarchy(Hierarchy("geo", ["Nation"]))
        second = Dimension("Geo2")
        second.add_level(level("Country", ["c_name"], concept="Nation"))
        second.add_level(level("Region", ["r_name"], concept="Region"))
        second.add_hierarchy(Hierarchy("geo", ["Country", "Region"]))
        merged = merge_dimensions(first, second)
        # Country is Nation (same concept): hierarchies must use "Nation".
        renamed = [h for h in merged.hierarchies if len(h.levels) == 2][0]
        assert renamed.levels == ["Nation", "Region"]

    def test_merge_rejects_nonconformable(self):
        first = Dimension("A")
        first.add_level(level("X", ["x"], concept="X"))
        first.add_hierarchy(Hierarchy("h", ["X"]))
        second = Dimension("B")
        second.add_level(level("Y", ["y"], concept="Y"))
        second.add_hierarchy(Hierarchy("h", ["Y"]))
        with pytest.raises(MDError):
            merge_dimensions(first, second)
