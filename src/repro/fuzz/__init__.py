"""Differential fuzzing for the dual-mode ETL engine.

The columnar engine is only trustworthy while it stays observationally
identical to the legacy row-at-a-time interpreter.  This package grows
that guarantee from "the tests we thought of" to "every flow a seeded
generator can dream up":

* :mod:`repro.fuzz.datagen` — adversarial random tables (NULLs,
  duplicates, collision-prone values, empty tables, falsy values),
* :mod:`repro.fuzz.exprgen` — type-correct random predicates and
  derivation expressions,
* :mod:`repro.fuzz.flowgen` — random valid ETL flows over the full
  operator vocabulary,
* :mod:`repro.fuzz.querygen` — random documents and Mongo-style queries
  plus an independent naive reference matcher,
* :mod:`repro.fuzz.oracle` — the differential checks (columnar vs
  legacy row-multisets, error parity, xLM round-trip identity),
* :mod:`repro.fuzz.shrink` — minimises failing trials,
* :mod:`repro.fuzz.corpus` — JSON (de)serialisation of trials so
  shrunk failures become committed regression cases,
* :mod:`repro.fuzz.runner` — the ``python -m repro.fuzz`` entry point.

Every trial is derived from an integer seed only, so any failure
reproduces with ``python -m repro.fuzz --start <seed> --seeds 1``.
"""

from repro.fuzz.flowgen import FlowTrial, build_flow_trial
from repro.fuzz.oracle import check_flow_trial, check_query_trial
from repro.fuzz.querygen import QueryTrial, build_query_trial
from repro.fuzz.runner import main, run

__all__ = [
    "FlowTrial",
    "QueryTrial",
    "build_flow_trial",
    "build_query_trial",
    "check_flow_trial",
    "check_query_trial",
    "main",
    "run",
]
