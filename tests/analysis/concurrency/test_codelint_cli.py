"""CLI tests for ``python -m repro.codelint``: exit codes and payloads."""

import json
import textwrap

import pytest

from repro.codelint import main

BAD = """
    from repro.locks import new_lock

    class Box:
        def __init__(self):
            self._lock = new_lock("Box._lock")

        def outer(self):
            with self._lock:
                with self._lock:
                    pass
"""

CLEAN = """
    from repro.locks import new_lock

    class Box:
        def __init__(self):
            self._lock = new_lock("Box._lock")

        def poke(self):
            with self._lock:
                return 1
"""


def _write(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


def test_violation_exits_one(tmp_path, capsys):
    assert main([_write(tmp_path, BAD), "--no-waivers"]) == 1
    out = capsys.readouterr().out
    assert "QRY902" in out and "Box._lock" in out


def test_clean_exits_zero(tmp_path, capsys):
    assert main([_write(tmp_path, CLEAN), "--no-waivers"]) == 0
    assert "clean" in capsys.readouterr().out


def test_package_lints_clean_with_committed_waivers(capsys):
    """The acceptance gate itself: the shipped package + shipped
    waiver file exit 0, and no committed waiver is stale."""
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "stale waiver" not in out


def test_disable_suppresses_rule(tmp_path):
    assert main([_write(tmp_path, BAD), "--no-waivers", "--disable", "QRY902"]) == 0


def test_only_restricts_rules(tmp_path, capsys):
    assert main([_write(tmp_path, BAD), "--no-waivers", "--only", "QRY901"]) == 0
    assert main([_write(tmp_path, BAD), "--no-waivers", "--only", "QRY902"]) == 1


def test_unknown_code_exits_two(tmp_path, capsys):
    assert main([_write(tmp_path, BAD), "--only", "QRY999"]) == 2
    assert "QRY999" in capsys.readouterr().err


def test_syntax_error_exits_two(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert main([str(path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_json_payload_shape(tmp_path, capsys):
    assert main([_write(tmp_path, BAD), "--no-waivers", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["waived"] == []
    assert payload["unused_waivers"] == []
    codes = [d["code"] for d in payload["diagnostics"]]
    assert codes == ["QRY902"]
    assert all("fingerprint" in d for d in payload["diagnostics"])


def test_waiver_file_roundtrip(tmp_path, capsys):
    source = _write(tmp_path, BAD)
    assert main([source, "--no-waivers", "--json"]) == 1
    fingerprint = json.loads(capsys.readouterr().out)["diagnostics"][0][
        "fingerprint"
    ]
    waiver_file = tmp_path / "waivers.json"
    waiver_file.write_text(
        json.dumps(
            {
                "waivers": [
                    {"fingerprint": fingerprint, "reason": "test fixture"},
                    {
                        "fingerprint": "QRY902:stale:gone",
                        "reason": "obsolete",
                    },
                ]
            }
        )
    )
    assert main([source, "--waivers", str(waiver_file)]) == 0
    out = capsys.readouterr().out
    assert "1 finding(s) waived" in out
    assert "stale waiver (matches nothing): QRY902:stale:gone" in out


def test_waiver_without_reason_exits_two(tmp_path, capsys):
    waiver_file = tmp_path / "waivers.json"
    waiver_file.write_text(
        json.dumps({"waivers": [{"fingerprint": "QRY902:x"}]})
    )
    assert main([_write(tmp_path, BAD), "--waivers", str(waiver_file)]) == 2
    assert "reason" in capsys.readouterr().err


def test_graph_emits_static_lock_graph(capsys):
    assert main(["--graph"]) == 0
    graph = json.loads(capsys.readouterr().out)
    assert "_JobRunner._lock" in graph["locks"]
    edges = {tuple(edge) for edge in graph["edges"]}
    assert ("DocumentStore._lock", "Collection._lock") in edges
    # The discipline this PR enforces: the static graph is acyclic.
    assert ("Collection._lock", "DocumentStore._lock") not in edges


def test_list_rules_spans_both_registries(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("QRY901", "QRY905", "QRY907"):
        assert code in out
    assert "QRY001" in out  # design rules share the catalog


@pytest.mark.parametrize(
    "code,source",
    [
        (
            "QRY901",
            """
            from repro.locks import new_lock

            class Left:
                def __init__(self, right):
                    self._lock = new_lock("Left._lock")
                    self.right = right

                def poke(self):
                    with self._lock:
                        self.right.prod()  # calls: Right.prod

            class Right:
                def __init__(self, left):
                    self._lock = new_lock("Right._lock")
                    self.left = left

                def prod(self):
                    with self._lock:
                        pass

                def reverse(self):
                    with self._lock:
                        self.left.poke()  # calls: Left.poke
            """,
        ),
        ("QRY902", BAD),
        (
            "QRY903",
            """
            import time
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")

                def nap(self):
                    with self._lock:
                        time.sleep(1)
            """,
        ),
        (
            "QRY904",
            """
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")
                    self._n = 0  # guarded-by: Box._lock

                def bump(self):
                    self._n += 1
            """,
        ),
        (
            "QRY905",
            """
            _CACHE = {}

            def process_rows(rows):
                _CACHE[1] = rows
                return rows
            """,
        ),
    ],
)
def test_every_error_rule_gates_the_cli(tmp_path, capsys, code, source):
    """Acceptance: the CLI exits 1 on a seeded violation of each rule."""
    assert main([_write(tmp_path, source), "--no-waivers"]) == 1
    assert code in capsys.readouterr().out


def test_manual_acquire_warns_without_gating(tmp_path, capsys):
    source = """
        from repro.locks import new_lock

        class Box:
            def __init__(self):
                self._lock = new_lock("Box._lock")

            def risky(self):
                self._lock.acquire()
                work()
                self._lock.release()
    """
    assert main([_write(tmp_path, source), "--no-waivers"]) == 0
    out = capsys.readouterr().out
    assert "QRY906" in out and "warning" in out
