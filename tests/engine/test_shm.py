"""The shared-memory column transport under the process-pool executor.

Round-trip fidelity is the whole point: every value that rides shared
memory must come back bit-identical (NaN payloads, signed zeros, bool
vs int), and everything else must fall back to pickling rather than
silently coercing.
"""

import math
import struct

import pytest

from repro.engine.shm import (
    ColumnTransport,
    RawSlice,
    SharedObject,
    ShmSlice,
    _classify,
    hydrate_chunk,
    process_context,
)


def roundtrip(values, start=0, stop=None):
    stop = len(values) if stop is None else stop
    with ColumnTransport({"c": values}, len(values)) as transport:
        payload = transport.chunk_payload(["c"], start, stop)
        # Hydrate while the parent still owns the segments, exactly as
        # a worker would (futures resolve before transport.close()).
        return hydrate_chunk(payload)[0], transport.shared_columns


class TestClassify:
    def test_int_and_float_columns_pack(self):
        assert _classify([1, 2, None, -5]) == "q"
        assert _classify([1.5, None, -0.0]) == "d"

    def test_mixed_bool_big_and_object_fall_back(self):
        assert _classify([1, 2.5]) is None  # mixed int/float
        assert _classify([True, False]) is None  # bool is not int
        assert _classify([1, True]) is None
        assert _classify([2**63]) is None  # beyond int64
        assert _classify([-(2**63) - 1]) is None
        assert _classify(["a", "b"]) is None
        assert _classify([1, "a"]) is None

    def test_all_null_packs_as_mask_only(self):
        assert _classify([None, None]) == "q"


class TestRoundTrip:
    def test_ints_with_nulls(self):
        values = [5, None, -3, 0, 2**62, None]
        out, shared = roundtrip(values)
        assert out == values
        assert all(type(v) is int for v in out if v is not None)
        assert shared == ["c"]

    def test_float_bits_survive(self):
        tricky = [
            0.1 + 0.2,
            -0.0,
            float("inf"),
            float("-inf"),
            struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000123))[0],
            None,
            1e-323,  # subnormal
        ]
        out, shared = roundtrip(tricky)
        assert shared == ["c"]
        for expected, got in zip(tricky, out):
            if expected is None:
                assert got is None
            elif math.isnan(expected):
                # bit-exact, NaN payload included
                assert struct.pack("<d", got) == struct.pack("<d", expected)
            else:
                assert struct.pack("<d", got) == struct.pack("<d", expected)

    def test_object_columns_ride_pickle_fallback(self):
        values = ["a", None, "b", True, [1, 2]]
        out, shared = roundtrip(values)
        assert out == values
        assert out[3] is True  # not coerced to 1
        assert shared == []

    def test_slicing_is_exact(self):
        values = list(range(100))
        out, __ = roundtrip(values, start=33, stop=67)
        assert out == values[33:67]

    def test_multi_column_payload_order(self):
        columns = {"a": [1, 2, 3], "b": ["x", "y", "z"], "c": [1.0, None, 3.0]}
        with ColumnTransport(columns, 3) as transport:
            payload = transport.chunk_payload(["c", "a"], 1, 3)
            hydrated = hydrate_chunk(payload)
        assert hydrated == [[None, 3.0], [2, 3]]

    def test_empty_relation(self):
        out, shared = roundtrip([])
        assert out == []
        # Zero-length columns skip shared memory entirely.
        assert shared == []

    def test_payload_entries_are_small_for_packed_columns(self):
        values = list(range(10_000))
        with ColumnTransport({"c": values}, len(values)) as transport:
            entry = transport.chunk_payload(["c"], 0, 5000)[0]
            assert isinstance(entry, ShmSlice)
            raw = transport.chunk_payload(["c"], 0, 5000)
            assert isinstance(raw[0], ShmSlice)

    def test_close_is_idempotent(self):
        transport = ColumnTransport({"c": [1, 2, 3]}, 3)
        transport.close()
        transport.close()
        assert transport.shared_columns == []


class TestRawSlice:
    def test_values_copy(self):
        entry = RawSlice(data=(1, "a", None))
        assert entry.values() == [1, "a", None]


class TestSharedObject:
    def test_round_trip_through_handle(self):
        payload = {"keys": [1, 2, 3], "nested": ("a", None)}
        with SharedObject(payload) as shared:
            handle = shared.handle()
            assert handle.load() == payload
        # After close the segment is gone; the handle must not be used.

    def test_close_is_idempotent(self):
        shared = SharedObject([1, 2, 3])
        shared.close()
        shared.close()


class TestProcessContext:
    def test_returns_a_usable_context(self):
        context = process_context()
        assert context.get_start_method() in ("fork", "spawn")


class TestWorkerSideHydration:
    def test_hydrate_in_real_worker(self):
        # End to end through an actual child process: the payload
        # pickles, the worker attaches, and values come back exact.
        from concurrent.futures import ProcessPoolExecutor

        values = [1.5, None, -0.0, 3.25] * 50
        with ColumnTransport({"c": values}, len(values)) as transport:
            payload = transport.chunk_payload(["c"], 10, 60)
            with ProcessPoolExecutor(
                max_workers=1, mp_context=process_context()
            ) as pool:
                result = pool.submit(hydrate_chunk, payload).result()
        assert result == [values[10:60]]


def test_classify_rejects_int_subclasses():
    class MyInt(int):
        pass

    assert _classify([MyInt(3)]) is None


def test_unhashable_values_fall_back_and_survive():
    values = [[1], [2, 3], None]
    out, shared = roundtrip(values)
    assert out == values
    assert shared == []


@pytest.mark.parametrize("count", [1, 7, 4096])
def test_various_lengths(count):
    values = [float(i) if i % 3 else None for i in range(count)]
    out, __ = roundtrip(values)
    assert out == values
