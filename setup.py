"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (legacy develop install path)."""

from setuptools import setup

setup()
