"""Unit tests for the expression parser and AST rendering."""

import datetime

import pytest

from repro.errors import ParseError
from repro.expressions import ast, parse


class TestLiterals:
    def test_integer(self):
        assert parse("7") == ast.Literal(7)

    def test_decimal(self):
        assert parse("2.5") == ast.Literal(2.5)

    def test_string(self):
        assert parse("'Spain'") == ast.Literal("Spain")

    def test_booleans_and_null(self):
        assert parse("true") == ast.Literal(True)
        assert parse("false") == ast.Literal(False)
        assert parse("null") == ast.Literal(None)

    def test_date_literal(self):
        assert parse("date '1995-03-15'") == ast.Literal(datetime.date(1995, 3, 15))

    def test_bad_date_literal_raises(self):
        with pytest.raises(ParseError):
            parse("date 'not-a-date'")


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        tree = parse("a + b * c")
        assert isinstance(tree, ast.BinaryOp)
        assert tree.operator == "+"
        assert tree.right == ast.BinaryOp("*", ast.Attribute("b"), ast.Attribute("c"))

    def test_parentheses_override(self):
        tree = parse("(a + b) * c")
        assert tree.operator == "*"
        assert tree.left == ast.BinaryOp("+", ast.Attribute("a"), ast.Attribute("b"))

    def test_comparison_binds_looser_than_arithmetic(self):
        tree = parse("a + 1 > b * 2")
        assert tree.operator == ">"

    def test_and_binds_tighter_than_or(self):
        tree = parse("a = 1 or b = 2 and c = 3")
        assert tree.operator == "or"
        assert tree.right.operator == "and"

    def test_not_binds_tighter_than_and(self):
        tree = parse("not a = 1 and b = 2")
        assert tree.operator == "and"
        assert isinstance(tree.left, ast.UnaryOp)

    def test_left_associativity_of_subtraction(self):
        tree = parse("a - b - c")
        assert tree.operator == "-"
        assert tree.left == ast.BinaryOp("-", ast.Attribute("a"), ast.Attribute("b"))

    def test_unary_minus(self):
        tree = parse("-a * b")
        assert tree.operator == "*"
        assert tree.left == ast.UnaryOp("-", ast.Attribute("a"))


class TestCallsAndLists:
    def test_function_call(self):
        tree = parse("year(o_orderdate)")
        assert tree == ast.FunctionCall("year", (ast.Attribute("o_orderdate"),))

    def test_nested_call(self):
        tree = parse("round(abs(x))")
        assert tree.name == "round"
        assert tree.arguments[0].name == "abs"

    def test_call_with_no_arguments(self):
        tree = parse("f()")
        assert tree == ast.FunctionCall("f", ())

    def test_in_list(self):
        tree = parse("n_name in ('Spain', 'France')")
        assert tree.operator == "in"
        assert isinstance(tree.right, ast.ValueList)
        assert [item.value for item in tree.right.items] == ["Spain", "France"]

    def test_in_requires_parenthesised_list(self):
        with pytest.raises(ParseError):
            parse("a in 'Spain'")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "a +", "* a", "(a", "a)", "f(a,", "a = = b", "a b", "1 2"],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_message_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("a + )")
        assert "position" in str(excinfo.value)


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "not (a = 1 and b = 2)",
            "n_name in ('Spain', 'France')",
            "price * (1 - discount)",
            "year(o_orderdate) = 1995",
            "coalesce(x, 0) >= 10",
            "'it''s' = s",
            "date '1995-01-01' <= o_orderdate",
        ],
    )
    def test_roundtrip_parse_render_parse(self, text):
        tree = parse(text)
        rendered = str(tree)
        assert parse(rendered) == tree

    def test_attributes_collects_all_names(self):
        tree = parse("a + f(b, c * d) > e")
        assert tree.attributes() == frozenset({"a", "b", "c", "d", "e"})

    def test_substitute_renames_attributes(self):
        tree = parse("a + b")
        renamed = ast.substitute(tree, {"a": "x"})
        assert renamed == parse("x + b")

    def test_conjuncts_splits_top_level_and(self):
        tree = parse("a = 1 and b = 2 and c = 3")
        parts = ast.conjuncts(tree)
        assert [str(part) for part in parts] == ["a = 1", "b = 2", "c = 3"]

    def test_conjoin_rebuilds_predicate(self):
        parts = [parse("a = 1"), parse("b = 2")]
        assert str(ast.conjoin(parts)) == "a = 1 and b = 2"

    def test_conjoin_empty_raises(self):
        with pytest.raises(ValueError):
            ast.conjoin([])
