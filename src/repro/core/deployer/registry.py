"""Backend registry for the Design Deployer.

"Quarry is extensible in that it can link to a variety of execution
platforms" (§2.4).  Instead of hard-wiring each platform into the
deployer facade, every artefact generator registers here under its
platform name; the facade routes ``deploy(platform)`` through the
registry.  Plugging in a new platform is one ``register_backend`` call —
no facade edit.

A backend is a pure generator: ``(md_schema, etl_flow) -> artifacts``
(a dict of artefact-name -> text).  The ``native`` platform — which
executes the flow instead of generating text — stays a facade special
case on purpose: it needs a live database and returns a queryable one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import DeploymentError
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema

GeneratorFn = Callable[[MDSchema, EtlFlow], Dict[str, str]]


@dataclass(frozen=True)
class DeployerBackend:
    """One registered deployment platform."""

    name: str
    generate: GeneratorFn
    description: str = ""


class BackendRegistry:
    """Named deployment backends, in registration order."""

    def __init__(self) -> None:
        self._backends: Dict[str, DeployerBackend] = {}

    def register(
        self,
        name: str,
        generate: GeneratorFn,
        description: str = "",
        replace: bool = False,
    ) -> DeployerBackend:
        if name in self._backends and not replace:
            raise DeploymentError(
                f"deployment backend {name!r} already registered; "
                f"pass replace=True"
            )
        backend = DeployerBackend(name, generate, description)
        self._backends[name] = backend
        return backend

    def lookup(self, name: str) -> DeployerBackend:
        try:
            return self._backends[name]
        except KeyError:
            raise DeploymentError(
                f"unknown platform {name!r}; supported: "
                f"{tuple(self.names()) + ('native',)}"
            ) from None

    def has(self, name: str) -> bool:
        return name in self._backends

    def names(self) -> List[str]:
        return list(self._backends)

    def backends(self) -> List[DeployerBackend]:
        return list(self._backends.values())


def _ddl_backend(dialect: str) -> GeneratorFn:
    from repro.core.deployer import ddl

    def generate(md_schema: MDSchema, etl_flow: EtlFlow) -> Dict[str, str]:
        return {
            "ddl": ddl.generate(
                md_schema, dialect=dialect, database_name="demo"
            )
        }

    return generate


def _pdi_backend(md_schema: MDSchema, etl_flow: EtlFlow) -> Dict[str, str]:
    from repro.core.deployer import pdi

    return {"ktr": pdi.generate(etl_flow)}


def _sql_backend(md_schema: MDSchema, etl_flow: EtlFlow) -> Dict[str, str]:
    from repro.core.deployer import sqlscript

    return {"script": sqlscript.generate(etl_flow)}


def _pig_backend(md_schema: MDSchema, etl_flow: EtlFlow) -> Dict[str, str]:
    from repro.core.deployer import pig

    return {"pig": pig.generate(etl_flow)}


def default_registry() -> BackendRegistry:
    """A fresh registry with every built-in backend installed."""
    registry = BackendRegistry()
    for dialect in ("postgres", "sqlite"):
        registry.register(
            dialect,
            _ddl_backend(dialect),
            description=f"{dialect} CREATE TABLE script",
        )
    registry.register(
        "pdi", _pdi_backend,
        description="Pentaho PDI transformation (.ktr)",
    )
    registry.register(
        "sql", _sql_backend,
        description="SQL INSERT-SELECT script",
    )
    registry.register(
        "pig", _pig_backend,
        description="Apache Pig Latin script",
    )
    return registry


def builtin_platforms() -> Tuple[str, ...]:
    """Every deployable platform name, ``native`` included."""
    return tuple(default_registry().names()) + ("native",)
