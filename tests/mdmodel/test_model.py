"""Unit tests for the MD schema classes."""

import pytest

from repro.errors import MDError
from repro.expressions import ScalarType
from repro.mdmodel import (
    AggregationFunction,
    Dimension,
    Fact,
    FactDimensionLink,
    Hierarchy,
    Level,
    LevelAttribute,
    Measure,
)

STR = ScalarType.STRING


class TestAggregationFunction:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("SUM", AggregationFunction.SUM),
            ("sum", AggregationFunction.SUM),
            ("AVERAGE", AggregationFunction.AVG),
            ("avg", AggregationFunction.AVG),
            ("Mean", AggregationFunction.AVG),
            ("COUNT", AggregationFunction.COUNT),
        ],
    )
    def test_parse_lenient(self, text, expected):
        assert AggregationFunction.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(MDError):
            AggregationFunction.parse("MEDIAN")


class TestLevel:
    def test_key_defaults_to_first_attribute(self):
        level = Level("L", attributes=[LevelAttribute("a", STR), LevelAttribute("b", STR)])
        assert level.key == "a"

    def test_explicit_key_must_be_attribute(self):
        with pytest.raises(MDError):
            Level("L", attributes=[LevelAttribute("a", STR)], key="nope")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(MDError):
            Level("L", attributes=[LevelAttribute("a", STR), LevelAttribute("a", STR)])

    def test_attribute_lookup(self):
        level = Level("L", attributes=[LevelAttribute("a", STR)])
        assert level.attribute("a").type is STR
        assert level.has_attribute("a")
        assert not level.has_attribute("b")
        with pytest.raises(MDError):
            level.attribute("b")


class TestHierarchy:
    def test_base_is_first(self):
        hierarchy = Hierarchy("geo", ["City", "Country"])
        assert hierarchy.base == "City"

    def test_rolls_up_is_ordered(self):
        hierarchy = Hierarchy("geo", ["City", "Country", "Region"])
        assert hierarchy.rolls_up("City", "Region")
        assert not hierarchy.rolls_up("Region", "City")
        assert not hierarchy.rolls_up("City", "Mars")

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(MDError):
            Hierarchy("geo", [])

    def test_repeated_level_rejected(self):
        with pytest.raises(MDError):
            Hierarchy("geo", ["City", "City"])


class TestDimension:
    def test_add_and_lookup_level(self):
        dimension = Dimension("D")
        dimension.add_level(Level("L", attributes=[LevelAttribute("a", STR)]))
        assert dimension.level("L").name == "L"
        with pytest.raises(MDError):
            dimension.level("missing")

    def test_duplicate_level_rejected(self):
        dimension = Dimension("D")
        dimension.add_level(Level("L", attributes=[LevelAttribute("a", STR)]))
        with pytest.raises(MDError):
            dimension.add_level(Level("L", attributes=[LevelAttribute("b", STR)]))

    def test_duplicate_hierarchy_rejected(self):
        dimension = Dimension("D")
        dimension.add_level(Level("L", attributes=[LevelAttribute("a", STR)]))
        dimension.add_hierarchy(Hierarchy("h", ["L"]))
        with pytest.raises(MDError):
            dimension.add_hierarchy(Hierarchy("h", ["L"]))

    def test_rolls_up_reflexive_and_across_hierarchies(self, revenue_star):
        supplier = revenue_star.dimension("Supplier")
        assert supplier.rolls_up("Supplier", "Supplier")
        assert supplier.rolls_up("Supplier", "Region")
        assert not supplier.rolls_up("Region", "Supplier")

    def test_base_levels(self, revenue_star):
        assert revenue_star.dimension("Supplier").base_levels() == ["Supplier"]

    def test_attribute_count(self, revenue_star):
        assert revenue_star.dimension("Supplier").attribute_count() == 3


class TestFact:
    def test_duplicate_measure_rejected(self):
        fact = Fact("F")
        fact.add_measure(Measure("m", expression="x"))
        with pytest.raises(MDError):
            fact.add_measure(Measure("m", expression="y"))

    def test_measure_lookup(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        assert fact.measure("revenue").aggregation is AggregationFunction.SUM
        with pytest.raises(MDError):
            fact.measure("missing")

    def test_linking_same_dimension_same_level_is_idempotent(self):
        fact = Fact("F")
        fact.link_dimension("D", "L")
        fact.link_dimension("D", "L")
        assert fact.links == [FactDimensionLink("D", "L")]

    def test_linking_same_dimension_other_level_rejected(self):
        fact = Fact("F")
        fact.link_dimension("D", "L1")
        with pytest.raises(MDError):
            fact.link_dimension("D", "L2")

    def test_link_for(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        assert fact.link_for("Part") == FactDimensionLink("Part", "Part")
        assert fact.link_for("Nope") is None

    def test_linked_dimensions(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        assert fact.linked_dimensions() == ["Part", "Supplier"]


class TestMDSchema:
    def test_lookups(self, revenue_star):
        assert revenue_star.fact("fact_table_revenue").name == "fact_table_revenue"
        assert revenue_star.dimension("Part").name == "Part"
        assert revenue_star.has_fact("fact_table_revenue")
        assert not revenue_star.has_fact("nope")
        with pytest.raises(MDError):
            revenue_star.fact("nope")
        with pytest.raises(MDError):
            revenue_star.dimension("nope")

    def test_duplicates_rejected(self, revenue_star):
        with pytest.raises(MDError):
            revenue_star.add_fact(Fact("fact_table_revenue"))
        with pytest.raises(MDError):
            revenue_star.add_dimension(Dimension("Part"))

    def test_all_requirements(self, revenue_star):
        assert revenue_star.all_requirements() == {"IR1"}

    def test_copy_is_deep_for_mutables(self, revenue_star):
        clone = revenue_star.copy()
        clone.fact("fact_table_revenue").requirements.add("IR2")
        clone.dimension("Supplier").add_level(
            Level("Extra", attributes=[LevelAttribute("x", STR)])
        )
        clone.dimension("Part").levels["Part"].attributes.append(
            LevelAttribute("p_type", STR)
        )
        assert revenue_star.fact("fact_table_revenue").requirements == {"IR1"}
        assert not revenue_star.dimension("Supplier").has_level("Extra")
        assert not revenue_star.dimension("Part").level("Part").has_attribute("p_type")

    def test_iter_levels(self, revenue_star):
        pairs = [(dim, level.name) for dim, level in revenue_star.iter_levels()]
        assert ("Supplier", "Nation") in pairs
        assert len(pairs) == 4
