"""Pentaho PDI (Kettle) ``.ktr`` generation for ETL flows.

Figure 3 shows the generated artefact: a ``<transformation>`` with a
``<connection>``, an ``<order>`` of ``<hop>`` elements and one
``<step>`` per operation, typed with PDI step types (``TableInput``,
``TableOutput``, ``FilterRows``, ``MergeJoin``, ``GroupBy``, ...).  The
``optype`` carried by every xLM node *is* the PDI step type, so the
translation is mostly structural; operation parameters are embedded in
the step bodies in PDI's element vocabulary (simplified but
schema-shaped).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Join,
    Loader,
    Operation,
    Selection,
    Sort,
)
from repro.xformats import xmlutil

#: PDI aggregate type names for our aggregation functions.
_PDI_AGGREGATES = {
    "SUM": "SUM",
    "AVERAGE": "AVERAGE",
    "MIN": "MIN",
    "MAX": "MAX",
    "COUNT": "COUNT_ALL",
}


def generate(
    flow: EtlFlow,
    database: str = "demo",
    host: str = "localhost",
    port: int = 5432,
) -> str:
    """Render a flow as a PDI transformation document."""
    root = ET.Element("transformation")
    info = xmlutil.sub(root, "info")
    xmlutil.sub(info, "name", flow.name)
    connection = xmlutil.sub(root, "connection")
    xmlutil.sub(connection, "name", database)
    xmlutil.sub(connection, "server", host)
    xmlutil.sub(connection, "type", "POSTGRESQL")
    xmlutil.sub(connection, "database", database)
    xmlutil.sub(connection, "port", str(port))
    order = xmlutil.sub(root, "order")
    for edge in flow.edges():
        hop = xmlutil.sub(order, "hop")
        xmlutil.sub(hop, "from", edge.source)
        xmlutil.sub(hop, "to", edge.target)
        xmlutil.sub(hop, "enabled", "Y" if edge.enabled else "N")
    for name in flow.topological_order():
        root.append(_step(flow, flow.node(name), database))
    return xmlutil.render(root)


def _step(flow: EtlFlow, operation: Operation, database: str) -> ET.Element:
    step = ET.Element("step")
    xmlutil.sub(step, "name", operation.name)
    xmlutil.sub(step, "type", operation.optype)
    if isinstance(operation, Datastore):
        xmlutil.sub(step, "connection", database)
        columns = ", ".join(operation.columns) if operation.columns else "*"
        xmlutil.sub(step, "sql", f"SELECT {columns} FROM {operation.table}")
    elif isinstance(operation, Selection):
        condition = xmlutil.sub(step, "compare")
        xmlutil.sub(condition, "condition", operation.predicate)
    elif isinstance(operation, Join):
        xmlutil.sub(step, "join_type", operation.join_type.upper())
        keys_left = xmlutil.sub(step, "keys_1")
        for key in operation.left_keys:
            xmlutil.sub(keys_left, "key", key)
        keys_right = xmlutil.sub(step, "keys_2")
        for key in operation.right_keys:
            xmlutil.sub(keys_right, "key", key)
        inputs = flow.inputs(operation.name)
        xmlutil.sub(step, "step1", inputs[0])
        xmlutil.sub(step, "step2", inputs[1])
    elif isinstance(operation, Aggregation):
        group = xmlutil.sub(step, "group")
        for column in operation.group_by:
            field = xmlutil.sub(group, "field")
            xmlutil.sub(field, "name", column)
        fields = xmlutil.sub(step, "fields")
        for spec in operation.aggregates:
            field = xmlutil.sub(fields, "field")
            xmlutil.sub(field, "aggregate", spec.output)
            xmlutil.sub(field, "subject", spec.input)
            xmlutil.sub(field, "type", _PDI_AGGREGATES.get(spec.function, spec.function))
    elif isinstance(operation, DerivedAttribute):
        calculation = xmlutil.sub(step, "calculation")
        xmlutil.sub(calculation, "field_name", operation.output)
        xmlutil.sub(calculation, "formula", operation.expression)
    elif isinstance(operation, Sort):
        fields = xmlutil.sub(step, "fields")
        for key in operation.keys:
            field = xmlutil.sub(fields, "field")
            xmlutil.sub(field, "name", key)
            xmlutil.sub(field, "ascending", "Y")
    elif isinstance(operation, Loader):
        xmlutil.sub(step, "connection", database)
        xmlutil.sub(step, "table", operation.table)
        xmlutil.sub(step, "truncate", "Y" if operation.mode == "replace" else "N")
    else:
        # SelectValues / Unique / AddSequence / Append steps: encode the
        # generic parameters from the xLM properties.
        from repro.xformats.xlm import _operation_properties

        for key, value in _operation_properties(operation).items():
            xmlutil.sub(step, key, value)
    return step
