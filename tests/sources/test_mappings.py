"""Unit tests for source schema mappings."""

import pytest

from repro.errors import MappingError
from repro.sources import tpch


@pytest.fixture(scope="module")
def domain():
    return tpch.ontology(), tpch.schema(), tpch.mappings()


class TestLookup:
    def test_concept_mapping(self, domain):
        __, __, maps = domain
        mapping = maps.concept_mapping("Lineitem")
        assert mapping.table == "lineitem"
        assert mapping.key_columns == ("l_orderkey", "l_linenumber")

    def test_unknown_concept_raises(self, domain):
        __, __, maps = domain
        with pytest.raises(MappingError):
            maps.concept_mapping("Nope")

    def test_property_column(self, domain):
        __, __, maps = domain
        assert maps.property_column("Part_p_name") == "p_name"

    def test_unknown_property_raises(self, domain):
        __, __, maps = domain
        with pytest.raises(MappingError):
            maps.property_column("Nope")

    def test_has_methods(self, domain):
        __, __, maps = domain
        assert maps.has_concept_mapping("Part")
        assert not maps.has_concept_mapping("Nope")
        assert maps.has_property_mapping("Part_p_brand")
        assert not maps.has_property_mapping("Nope")

    def test_property_table(self, domain):
        ontology, __, maps = domain
        assert maps.property_table(ontology, "Nation_n_name") == "nation"

    def test_duplicate_mapping_rejected(self, domain):
        __, __, maps = domain
        with pytest.raises(MappingError):
            maps.map_concept("Part", "part", ("p_partkey",))
        with pytest.raises(MappingError):
            maps.map_property("Part_p_name", "p_name")


class TestJoinResolution:
    def test_forward_join_follows_fk(self, domain):
        ontology, schema, maps = domain
        left, pairs, right = maps.join_columns(
            ontology, schema, "Lineitem_orders", forward=True
        )
        assert left == "lineitem"
        assert right == "orders"
        assert pairs == [("l_orderkey", "o_orderkey")]

    def test_backward_join_flips_columns(self, domain):
        ontology, schema, maps = domain
        left, pairs, right = maps.join_columns(
            ontology, schema, "Lineitem_orders", forward=False
        )
        assert left == "orders"
        assert right == "lineitem"
        assert pairs == [("o_orderkey", "l_orderkey")]

    def test_composite_key_join(self, domain):
        ontology, schema, maps = domain
        __, pairs, __ = maps.join_columns(
            ontology, schema, "Lineitem_partsupp", forward=True
        )
        assert pairs == [
            ("l_partkey", "ps_partkey"),
            ("l_suppkey", "ps_suppkey"),
        ]

    def test_missing_fk_raises(self, domain):
        ontology, schema, maps = domain
        # Add a relationship with no realising FK: Part -> Region.
        ontology.add_object_property(
            type(next(iter(ontology.object_properties())))(
                id="bogus", domain="Part", range="Region"
            )
        )
        with pytest.raises(MappingError):
            maps.join_columns(ontology, schema, "bogus", forward=True)


class TestValidation:
    def test_tpch_mappings_are_valid(self):
        ontology, schema, maps = tpch.ontology(), tpch.schema(), tpch.mappings()
        assert maps.validate(ontology, schema) == []

    def test_retail_mappings_are_valid(self):
        from repro.sources import retail

        assert retail.mappings().validate(retail.ontology(), retail.schema()) == []

    def test_validation_flags_unknown_concept(self, ):
        maps = tpch.mappings()
        maps.map_concept("Ghost", "nowhere", ("x",))
        problems = maps.validate(tpch.ontology(), tpch.schema())
        assert any("Ghost" in problem for problem in problems)

    def test_validation_flags_bad_column(self):
        maps = tpch.mappings()
        ontology = tpch.ontology()
        from repro.ontology import DatatypeProperty
        from repro.expressions import ScalarType

        ontology.add_datatype_property(
            DatatypeProperty(id="Part_ghost", concept="Part", range=ScalarType.STRING)
        )
        maps.map_property("Part_ghost", "no_such_column")
        problems = maps.validate(ontology, tpch.schema())
        assert any("no_such_column" in problem for problem in problems)

    def test_validation_flags_property_without_concept(self):
        from repro.sources.mappings import SourceMappings

        maps = SourceMappings(ontology_name="tpch", source_name="tpch")
        maps.map_property("Part_p_name", "p_name")
        problems = maps.validate(tpch.ontology(), tpch.schema())
        assert any("its concept" in problem for problem in problems)
