"""Unit tests of the planner's rewrite rules.

Each rule is tested twice over: structurally (the decision fired, or
was correctly refused) and semantically (planned execution loads the
same quantised row multisets as unplanned columnar execution).
"""

import pytest

from repro.engine import Database, Executor, TableDef
from repro.errors import QuarryError
from repro.engine.stats import StatisticsCatalog
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Join,
    Loader,
    Selection,
    SurrogateKey,
)
from repro.etlmodel.ops import JoinType
from repro.expressions import ScalarType
from repro.fuzz.planoracle import quantized_multiset
from repro.planner import plan_flow

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL
STR = ScalarType.STRING


def run_both_modes(database_factory, flow):
    """{mode: {table: quantised multiset}} over fresh databases."""
    snapshots = {}
    for mode in ("columnar", "planned"):
        database = database_factory()
        Executor(database, mode=mode).execute(flow)
        targets = sorted(
            {node.table for node in flow.nodes() if node.kind == "Loader"}
        )
        snapshots[mode] = {
            target: quantized_multiset(database.scan(target).rows)
            for target in targets
        }
    return snapshots


def decision_kinds(plan):
    return {decision.split(":")[0] for decision in plan.decisions}


# -- selection pushdown -------------------------------------------------------


def fact_dim_database():
    database = Database()
    database.create_table(TableDef("fact", {"k": INT, "v": DEC}))
    database.create_table(TableDef("dim", {"k": INT, "tag": INT}))
    database.insert_many(
        "fact",
        [{"k": index % 20, "v": float(index)} for index in range(100)],
    )
    database.insert_many(
        "dim", [{"k": index, "tag": index % 5} for index in range(20)]
    )
    return database


def join_then_filter_flow(join_type=JoinType.INNER):
    flow = EtlFlow("pushdown")
    flow.add(Datastore("src_fact", table="fact"))
    flow.add(Datastore("src_dim", table="dim"))
    flow.add(Join("j", left_keys=("k",), right_keys=("k",), join_type=join_type))
    flow.add(Selection("sel", predicate="tag = 3"))
    flow.add(Loader("out", table="out_rows", mode="replace"))
    flow.connect("src_fact", "j")
    flow.connect("src_dim", "j")
    flow.connect("j", "sel")
    flow.connect("sel", "out")
    return flow


def test_selection_pushed_below_inner_join():
    flow = join_then_filter_flow(JoinType.INNER)
    plan = plan_flow(flow, StatisticsCatalog(fact_dim_database()))
    assert plan.fallback is None
    assert "selection-pushdown" in decision_kinds(plan)
    # The selection now sits on the dim branch, below the join.
    assert "j" not in plan.flow.inputs("sel")
    snapshots = run_both_modes(fact_dim_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]


def test_selection_not_pushed_onto_left_join_right_side():
    """Filtering the NULL-padding side of a LEFT join first would
    manufacture padded rows the unplanned flow never produces."""
    flow = join_then_filter_flow(JoinType.LEFT)
    plan = plan_flow(flow, StatisticsCatalog(fact_dim_database()))
    assert "selection-pushdown" not in decision_kinds(plan)
    snapshots = run_both_modes(fact_dim_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]


def empty_table_database():
    database = Database()
    database.create_table(TableDef("t", {"g": INT, "v": DEC}))
    return database


def test_selection_not_pushed_below_global_aggregation():
    """A global (empty group-by) aggregate emits one row even on empty
    input; filtering first would re-grow that row past the filter."""
    flow = EtlFlow("global_agg")
    flow.chain(
        Datastore("src", table="t"),
        Aggregation(
            "agg",
            group_by=(),
            aggregates=(
                AggregationSpec(output="total", function="SUM", input="v"),
            ),
        ),
        Selection("sel", predicate="1 = 2"),
        Loader("out", table="out_rows", mode="replace"),
    )
    plan = plan_flow(flow, StatisticsCatalog(empty_table_database()))
    assert "selection-pushdown" not in decision_kinds(plan)
    snapshots = run_both_modes(empty_table_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]
    assert sum(snapshots["planned"]["out_rows"].values()) == 0


def grouped_database():
    database = Database()
    database.create_table(TableDef("t", {"g": INT, "v": DEC}))
    database.insert_many(
        "t", [{"g": index % 4, "v": float(index)} for index in range(40)]
    )
    return database


def test_selection_on_group_key_pushed_below_aggregation():
    flow = EtlFlow("grouped_agg")
    flow.chain(
        Datastore("src", table="t"),
        Aggregation(
            "agg",
            group_by=("g",),
            aggregates=(
                AggregationSpec(output="total", function="SUM", input="v"),
            ),
        ),
        Selection("sel", predicate="g = 1"),
        Loader("out", table="out_rows", mode="replace"),
    )
    plan = plan_flow(flow, StatisticsCatalog(grouped_database()))
    assert "selection-pushdown" in decision_kinds(plan)
    snapshots = run_both_modes(grouped_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]


# -- build-side choice --------------------------------------------------------


def skewed_join_database():
    database = Database()
    database.create_table(TableDef("dim", {"d_k": INT, "name": STR}))
    database.create_table(TableDef("fact", {"f_k": INT, "v": DEC}))
    database.insert_many(
        "dim", [{"d_k": index, "name": f"d{index}"} for index in range(3)]
    )
    database.insert_many(
        "fact",
        [{"f_k": index % 3, "v": float(index)} for index in range(100)],
    )
    return database


def skewed_join_flow(with_surrogate_key=False):
    flow = EtlFlow("build_side")
    flow.add(Datastore("src_dim", table="dim"))
    flow.add(Datastore("src_fact", table="fact"))
    flow.add(Join("j", left_keys=("d_k",), right_keys=("f_k",)))
    flow.connect("src_dim", "j")
    flow.connect("src_fact", "j")
    tail = "j"
    if with_surrogate_key:
        flow.add(
            SurrogateKey("sk", output="row_id", business_keys=("d_k",))
        )
        flow.connect("j", "sk")
        tail = "sk"
    flow.add(Loader("out", table="out_rows", mode="replace"))
    flow.connect(tail, "out")
    return flow


def test_build_side_flipped_for_imbalanced_inner_join():
    flow = skewed_join_flow()
    plan = plan_flow(flow, StatisticsCatalog(skewed_join_database()))
    assert "build-side" in decision_kinds(plan)
    # The flip swaps input order AND the key tuples.
    planned_join = plan.flow.node("j")
    assert planned_join.left_keys == ("f_k",)
    assert planned_join.right_keys == ("d_k",)
    assert plan.flow.inputs("j") == ["src_fact", "src_dim"]
    snapshots = run_both_modes(skewed_join_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]


def test_build_side_not_flipped_below_surrogate_key():
    """SurrogateKey assigns ids in row order, and flipping the build
    side reorders the join's output rows."""
    flow = skewed_join_flow(with_surrogate_key=True)
    plan = plan_flow(flow, StatisticsCatalog(skewed_join_database()))
    assert "build-side" not in decision_kinds(plan)


def collapsed_key_database():
    database = Database()
    database.create_table(TableDef("small", {"k": INT}))
    database.create_table(TableDef("big", {"k": INT, "v": DEC}))
    database.insert_many("small", [{"k": index} for index in range(3)])
    database.insert_many(
        "big", [{"k": index % 3, "v": float(index)} for index in range(100)]
    )
    return database


def test_build_side_not_flipped_on_collapsed_key():
    """A same-named key pair collapses to the LEFT side's value copy;
    Python's cross-type equality (True == 1) means swapping sides can
    change the surviving value, so such joins are never flipped."""
    flow = EtlFlow("collapsed")
    flow.add(Datastore("src_small", table="small"))
    flow.add(Datastore("src_big", table="big"))
    flow.add(Join("j", left_keys=("k",), right_keys=("k",)))
    flow.add(Loader("out", table="out_rows", mode="replace"))
    flow.connect("src_small", "j")
    flow.connect("src_big", "j")
    flow.connect("j", "out")
    plan = plan_flow(flow, StatisticsCatalog(collapsed_key_database()))
    assert "build-side" not in decision_kinds(plan)


# -- join-chain reordering ----------------------------------------------------


def chain_database():
    database = Database()
    database.create_table(
        TableDef("base", {"b_k1": INT, "b_k2": INT, "payload": DEC})
    )
    database.create_table(TableDef("wide", {"t1_k": INT, "w": DEC}))
    database.create_table(TableDef("narrow", {"t2_k": INT, "n": DEC}))
    database.insert_many(
        "base",
        [
            {"b_k1": index, "b_k2": index % 10, "payload": 1.0}
            for index in range(200)
        ],
    )
    database.insert_many(
        "wide", [{"t1_k": index, "w": 2.0} for index in range(200)]
    )
    database.insert_many(
        "narrow", [{"t2_k": index, "n": 3.0} for index in range(2)]
    )
    return database


def chain_flow():
    """base JOIN wide (fanout 1) then JOIN narrow (highly reductive) —
    written in the worse order."""
    flow = EtlFlow("chain")
    flow.add(Datastore("src_base", table="base"))
    flow.add(Datastore("src_wide", table="wide"))
    flow.add(Datastore("src_narrow", table="narrow"))
    flow.add(Join("j1", left_keys=("b_k1",), right_keys=("t1_k",)))
    flow.add(Join("j2", left_keys=("b_k2",), right_keys=("t2_k",)))
    flow.add(Loader("out", table="out_rows", mode="replace"))
    flow.connect("src_base", "j1")
    flow.connect("src_wide", "j1")
    flow.connect("j1", "j2")
    flow.connect("src_narrow", "j2")
    flow.connect("j2", "out")
    return flow


def test_join_chain_reordered_by_estimated_cardinality():
    flow = chain_flow()
    plan = plan_flow(flow, StatisticsCatalog(chain_database()))
    reorders = [
        decision
        for decision in plan.decisions
        if decision.startswith("join-reorder")
    ]
    assert reorders, plan.decisions
    # The reductive narrow join must now run before the fanout-1 join.
    assert "j2 -> j1" in reorders[0]
    snapshots = run_both_modes(chain_database, flow)
    assert snapshots["columnar"] == snapshots["planned"]


# -- fail-safe and annotations ------------------------------------------------


def collision_database():
    database = Database()
    database.create_table(TableDef("a", {"k": INT, "dup": INT}))
    database.create_table(TableDef("b", {"k": INT, "dup": INT}))
    database.insert_many("a", [{"k": 1, "dup": 1}])
    database.insert_many("b", [{"k": 1, "dup": 2}])
    return database


def test_unplannable_flow_bails_to_identity_with_error_parity():
    """A flow the schema propagator rejects (attribute collision) must
    produce the identical error in planned and unplanned mode."""
    flow = EtlFlow("collision")
    flow.add(Datastore("src_a", table="a"))
    flow.add(Datastore("src_b", table="b"))
    flow.add(Join("j", left_keys=("k",), right_keys=("k",)))
    flow.add(Loader("out", table="out_rows", mode="replace"))
    flow.connect("src_a", "j")
    flow.connect("src_b", "j")
    flow.connect("j", "out")
    plan = plan_flow(flow, StatisticsCatalog(collision_database()))
    assert plan.fallback is not None
    errors = {}
    for mode in ("columnar", "planned"):
        with pytest.raises(QuarryError) as caught:
            Executor(collision_database(), mode=mode).execute(flow)
        errors[mode] = f"{type(caught.value).__name__}: {caught.value}"
    assert errors["columnar"] == errors["planned"]


def test_planned_mode_annotates_estimates_and_q_error():
    flow = join_then_filter_flow()
    database = fact_dim_database()
    executor = Executor(database, mode="planned")
    stats = executor.execute(flow)
    annotated = [
        node for node in stats.nodes if node.estimated_rows is not None
    ]
    assert annotated, "planned mode must annotate estimated rows"
    assert all(node.q_error >= 1.0 for node in annotated)
    assert executor.last_plan is not None


def test_columnar_mode_has_no_estimates():
    flow = join_then_filter_flow()
    stats = Executor(fact_dim_database(), mode="columnar").execute(flow)
    assert all(node.estimated_rows is None for node in stats.nodes)
    assert all(node.q_error is None for node in stats.nodes)


def test_tiny_inputs_veto_fusion():
    database = Database()
    database.create_table(TableDef("t", {"k": INT, "v": DEC}))
    database.insert_many(
        "t", [{"k": index, "v": float(index)} for index in range(5)]
    )
    flow = EtlFlow("tiny")
    flow.chain(
        Datastore("src", table="t"),
        Selection("sel", predicate="k >= 0"),
        DerivedAttribute("twice", output="w", expression="v * 2"),
        Loader("out", table="out_rows", mode="replace"),
    )
    plan = plan_flow(flow, StatisticsCatalog(database))
    assert plan.no_fuse, plan.decisions
    assert "no-fuse" in decision_kinds(plan)
    # And the planned execution still works with fusion suppressed.
    Executor(database, mode="planned").execute(flow)
