"""Typed, versioned artifact envelopes.

Services never call each other: everything that crosses a service
boundary travels as an :class:`ArtifactEnvelope` — the xRQ/xMD/xLM
payload of the paper's RESTful exchanges, wrapped with routing metadata
(topic, kind, session) and a per-topic sequence number assigned by the
bus.  Envelopes are JSON documents end to end: what the bus logs into
the metadata repository is exactly ``to_dict()``, and a logged envelope
replays byte-identically through ``from_dict()``.

``attachment`` is the one deliberate exception: a transient in-process
reference to the rich object the payload serialises (e.g. the
:class:`~repro.core.interpreter.interpreter.PartialDesign` behind an
xMD+xLM payload).  It is never persisted and never required — every
consumer must be able to work from the payload alone (replay does) —
it only spares the synchronous pipeline a decode of what it just
encoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Envelope schema version, bumped on incompatible payload changes.
ENVELOPE_VERSION = 1


@dataclass
class ArtifactEnvelope:
    """One artifact crossing a service boundary."""

    topic: str
    kind: str  # e.g. requirement.added, partial.created, design.committed
    session: str
    sequence: int  # per-topic, assigned by the bus
    position: int  # bus-wide, assigned by the bus
    producer: str  # service name
    payload: Dict[str, Any] = field(default_factory=dict)
    version: int = ENVELOPE_VERSION
    attachment: Optional[Any] = None  # transient; never persisted

    def to_dict(self) -> Dict[str, Any]:
        """The JSON document the bus logs (attachment excluded)."""
        return {
            "topic": self.topic,
            "event_kind": self.kind,
            "session": self.session,
            "sequence": self.sequence,
            "position": self.position,
            "producer": self.producer,
            "payload": self.payload,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ArtifactEnvelope":
        return cls(
            topic=document["topic"],
            kind=document["event_kind"],
            session=document["session"],
            sequence=document["sequence"],
            position=document["position"],
            producer=document["producer"],
            payload=document.get("payload", {}),
            version=document.get("version", ENVELOPE_VERSION),
        )

    def __repr__(self) -> str:  # keep event logs readable in failures
        return (
            f"ArtifactEnvelope({self.topic}#{self.sequence} {self.kind} "
            f"session={self.session!r} producer={self.producer!r})"
        )


def dumps(envelope: ArtifactEnvelope) -> str:
    """The envelope as canonical JSON text — its wire/export notation."""
    import json

    return json.dumps(envelope.to_dict(), indent=2, sort_keys=True) + "\n"


def loads(text: str) -> ArtifactEnvelope:
    import json

    return ArtifactEnvelope.from_dict(json.loads(text))
