"""Structural edge cases of the flow DAG.

These pin behaviours the linter's passes rely on: deterministic
topological order, upstream/downstream closure after surgery, and what
``validate()`` reports for the shapes surgery can leave behind.
"""

import pytest

from repro.errors import EtlError, FlowValidationError
from repro.etlmodel import (
    Datastore,
    EtlFlow,
    Join,
    Loader,
    Selection,
)


def diamond():
    """src -> (left | right) -> join -> load."""
    flow = EtlFlow("diamond")
    flow.add(Datastore("src", table="t", columns=("a", "b")))
    flow.add(Selection("left", predicate="a > 0"))
    flow.add(Selection("right", predicate="b > 0"))
    flow.add(Join("join", left_keys=("a",), right_keys=("a",)))
    flow.add(Loader("load", table="out"))
    flow.connect("src", "left")
    flow.connect("src", "right")
    flow.connect("left", "join")
    flow.connect("right", "join")
    flow.connect("join", "load")
    return flow


class TestCycles:
    def test_self_loop_is_a_cycle(self):
        flow = EtlFlow("f")
        flow.add(Selection("s"))
        flow.connect("s", "s")  # connect() is shape-agnostic; validate() is not
        assert any("cycle" in problem for problem in flow.validate())
        with pytest.raises(FlowValidationError):
            flow.topological_order()

    def test_two_node_cycle_reported_by_validate(self):
        flow = EtlFlow("cyclic")
        flow.add(Selection("a"))
        flow.add(Selection("b"))
        flow.connect("a", "b")
        flow.connect("b", "a")
        problems = flow.validate()
        assert any("cycle" in problem for problem in problems)

    def test_cycle_error_carries_violations(self):
        flow = EtlFlow("cyclic")
        flow.add(Selection("a"))
        flow.add(Selection("b"))
        flow.connect("a", "b")
        flow.connect("b", "a")
        with pytest.raises(FlowValidationError) as excinfo:
            flow.topological_order()
        assert excinfo.value.violations
        assert any("cycle" in v for v in excinfo.value.violations)

    def test_cycle_behind_a_valid_prefix(self):
        flow = diamond()
        flow.add(Selection("back", predicate="a > 1"))
        flow.connect("join", "back")
        flow.connect("back", "left")  # closes a loop around the join
        problems = flow.validate()
        assert any("cycle" in problem for problem in problems)
        # the acyclic part of the report still surfaces local problems
        assert any("expects 1 input(s), has 2" in p for p in problems)


class TestDanglingEdges:
    def test_remove_unary_node_splices_around_it(self):
        flow = diamond()
        flow.remove_node("left")  # unary: src splices straight into join
        assert flow.inputs("join") == ["src", "right"]
        assert flow.validate() == []

    def test_remove_source_leaves_arity_violations(self):
        flow = diamond()
        flow.remove_node("src")  # a source cannot splice: edges just drop
        problems = flow.validate()
        assert any("expects 1 input(s), has 0" in p for p in problems)

    def test_disconnect_leaves_both_shapes_reported(self):
        flow = diamond()
        flow.disconnect("right", "join")
        problems = flow.validate()
        assert any("expects 2 input(s), has 1" in p for p in problems)
        assert any("dead end" in p for p in problems)  # right is now a sink

    def test_disconnect_unknown_edge_raises(self):
        flow = diamond()
        with pytest.raises(EtlError):
            flow.disconnect("src", "join")

    def test_remove_node_purges_adjacency(self):
        flow = diamond()
        flow.remove_node("join")
        assert flow.outputs("left") == []
        assert flow.outputs("right") == []
        assert flow.inputs("load") == []
        assert all("join" not in (e.source, e.target) for e in flow.edges())


class TestDuplicateNames:
    def test_add_duplicate_rejected(self):
        flow = diamond()
        with pytest.raises(EtlError):
            flow.add(Selection("left"))

    def test_replace_cannot_smuggle_a_rename(self):
        flow = diamond()
        with pytest.raises(EtlError):
            flow.replace_node("left", Selection("renamed"))


class TestGraftCollisions:
    def test_collision_renames_consistently(self):
        target = diamond()
        other = EtlFlow("other")
        other.chain(
            Datastore("src", table="u", columns=("c",)),
            Selection("left", predicate="c = 1"),  # collides with target
            Loader("load2", table="out2"),
        )
        mapping = target.graft(other, at={})
        assert mapping["src"] == "src_2"
        assert mapping["left"] == "left_2"
        # the grafted edge follows the rename
        assert target.inputs("left_2") == ["src_2"]
        assert target.node("left_2").predicate == "c = 1"

    def test_repeated_grafts_keep_renaming(self):
        target = diamond()
        for expected in ("left_2", "left_3"):
            other = EtlFlow("other")
            other.chain(
                Datastore("osrc", table="u", columns=("c",)),
                Selection("left", predicate="c = 1"),
                Loader("oload", table="out2"),
            )
            mapping = target.graft(other, at={})
            assert mapping["left"] == expected

    def test_graft_at_unifies_without_collision(self):
        target = diamond()
        other = EtlFlow("other")
        other.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Selection("extra", predicate="a = 1"),
            Loader("load2", table="out2"),
        )
        mapping = target.graft(other, at={"src": "src"})
        assert mapping["src"] == "src"
        assert target.inputs("extra") == ["src"]


class TestOrderPins:
    def test_topological_order_is_deterministic(self):
        first = diamond().topological_order()
        second = diamond().topological_order()
        assert first == second
        assert first[0] == "src" and first[-1] == "load"
        assert first.index("left") < first.index("join")
        assert first.index("right") < first.index("join")

    def test_upstream_downstream_closures(self):
        flow = diamond()
        assert flow.upstream("join") == {"src", "left", "right"}
        assert flow.downstream("src") == {"left", "right", "join", "load"}
        assert flow.upstream("src") == set()
        assert flow.downstream("load") == set()

    def test_surgery_updates_closures(self):
        flow = diamond()
        flow.remove_node("right")
        assert flow.upstream("join") == {"src", "left"}
        flow.insert_between("src", "left", Selection("mid", predicate="b = 1"))
        assert "mid" in flow.upstream("join")
        assert flow.downstream("mid") == {"left", "join", "load"}
