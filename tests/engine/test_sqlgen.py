"""Unit tests for SQL rendering."""

import pytest

from repro.errors import DeploymentError
from repro.engine.sqlgen import (
    select_statement,
    sql_expression,
    sql_identifier,
    sql_literal,
    sql_type,
)
from repro.expressions import ScalarType, parse


class TestTypesAndLiterals:
    def test_postgres_types(self):
        assert sql_type(ScalarType.INTEGER) == "BIGINT"
        assert sql_type(ScalarType.DECIMAL) == "double precision"
        assert sql_type(ScalarType.STRING) == "VARCHAR(255)"
        assert sql_type(ScalarType.DATE) == "DATE"

    def test_sqlite_types(self):
        assert sql_type(ScalarType.INTEGER, "sqlite") == "INTEGER"
        assert sql_type(ScalarType.DECIMAL, "sqlite") == "REAL"

    def test_unknown_dialect_rejected(self):
        with pytest.raises(DeploymentError):
            sql_type(ScalarType.INTEGER, "oracle")

    def test_literals(self):
        import datetime

        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"
        assert sql_literal("O'Brien") == "'O''Brien'"
        assert sql_literal(datetime.date(1995, 1, 1)) == "DATE '1995-01-01'"
        assert sql_literal(42) == "42"

    def test_identifiers(self):
        assert sql_identifier("n_name") == "n_name"
        assert sql_identifier("Part") == '"Part"'
        assert sql_identifier('we"ird') == '"we""ird"'


class TestExpressions:
    def test_comparison(self):
        sql = sql_expression(parse("n_name = 'Spain'"))
        assert sql == "(n_name = 'Spain')"

    def test_not_equal_uses_sql_spelling(self):
        assert "<>" in sql_expression(parse("a != 1"))

    def test_arithmetic_nesting(self):
        sql = sql_expression(parse("price * (1 - discount)"))
        assert sql == "(price * (1 - discount))"

    def test_in_list(self):
        sql = sql_expression(parse("x in (1, 2)"))
        assert sql == "x IN (1, 2)"

    def test_logic_and_not(self):
        sql = sql_expression(parse("not (a = 1 or b = 2)"))
        assert sql == "NOT (((a = 1) OR (b = 2)))"

    def test_functions(self):
        assert sql_expression(parse("upper(x)")) == "UPPER(x)"
        assert sql_expression(parse("coalesce(x, 0)")) == "COALESCE(x, 0)"

    def test_date_parts_postgres(self):
        assert sql_expression(parse("year(d)")) == "EXTRACT(YEAR FROM d)"

    def test_date_parts_sqlite(self):
        assert "strftime" in sql_expression(parse("year(d)"), "sqlite")
        assert "strftime" in sql_expression(parse("quarter(d)"), "sqlite")

    def test_unary_minus(self):
        assert sql_expression(parse("-x")) == "-(x)"


class TestSelect:
    def test_full_statement(self):
        sql = select_statement(
            table="fact_table_revenue",
            columns=["p_name"],
            aggregates=[("AVERAGE", "revenue", "avg_revenue")],
            where=parse("n_name = 'Spain'"),
            group_by=["p_name"],
            order_by=["p_name"],
        )
        assert sql == (
            "SELECT p_name, AVG(revenue) AS avg_revenue\n"
            "FROM fact_table_revenue\n"
            "WHERE (n_name = 'Spain')\n"
            "GROUP BY p_name\n"
            "ORDER BY p_name;"
        )

    def test_plain_select(self):
        sql = select_statement(table="t", columns=["a", "b"])
        assert sql == "SELECT a, b\nFROM t;"

    def test_select_requires_output(self):
        with pytest.raises(DeploymentError):
            select_statement(table="t", columns=[])
