"""Accommodating a DW design to changes (demo scenario 2, Figure 3).

Starts from the revenue requirement, then the business evolves:

* a second requirement (net profit per part brand) arrives — Quarry
  conforms the Part dimension and reuses the shared ETL spine,
* a third requirement (shipped quantity per ship mode and nation) adds
  a degenerate dimension,
* the first requirement changes granularity,
* the second is retired — Quarry rebuilds the design from what remains.

At every step the script prints the design status: satisfied
requirements, structural complexity of the MD schema, and the
estimated cost of the integrated ETL versus running the partial flows
separately (the demo's claimed benefit).

Run with::

    python examples/evolution.py
"""

from repro import Quarry, RequirementBuilder
from repro.sources import tpch

ROW_COUNTS = {
    "lineitem": 60000, "orders": 15000, "customer": 1500,
    "nation": 25, "region": 5, "part": 2000, "partsupp": 4000,
    "supplier": 100,
}


def revenue_requirement():
    return (
        RequirementBuilder("IR1", "average revenue per part/supplier, Spain")
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )


def netprofit_requirement():
    return (
        RequirementBuilder("IR2", "total net profit per part brand")
        .measure(
            "netprofit",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
            "- Partsupp_ps_supplycost * Lineitem_l_quantity",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )


def quantity_requirement():
    return (
        RequirementBuilder("IR3", "shipped quantity per ship mode and nation")
        .measure("quantity", "Lineitem_l_quantity", "SUM")
        .per("Lineitem_l_shipmode", "Nation_n_name")
        .build()
    )


def show(quarry, step):
    status = quarry.status()
    print(f"\n--- {step} ---")
    print(f"  requirements : {status.requirements}")
    print(f"  facts        : {status.facts}")
    print(f"  dimensions   : {status.dimensions}")
    print(f"  MD complexity: {status.complexity:.1f}")
    print(f"  ETL ops      : {status.etl_operations}  "
          f"(estimated cost {status.estimated_etl_cost:,.0f})")


def main() -> None:
    print("=== Accommodating a DW design to changes ===")
    quarry = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(),
        row_counts=ROW_COUNTS,
    )

    quarry.add_requirement(revenue_requirement())
    show(quarry, "IR1 added (initial design)")

    report = quarry.add_requirement(netprofit_requirement())
    show(quarry, "IR2 added (integrated)")
    consolidation = report.etl_consolidation
    print(f"  ETL reuse    : {len(consolidation.reused)} ops reused, "
          f"{len(consolidation.added)} added "
          f"(reuse ratio {consolidation.reuse_ratio:.0%})")
    print(f"  ETL cost     : unified {consolidation.cost_unified:,.0f} vs "
          f"separate {consolidation.cost_separate:,.0f} "
          f"(saving {consolidation.cost_saving:,.0f})")
    integration = report.md_integration
    print(f"  MD decisions :")
    for decision in integration.decisions:
        print(f"    {decision.kind:<9} {decision.partial_element:<22} "
              f"{decision.action} -> {decision.unified_element}")
    print(f"  MD complexity: {integration.complexity_after:.1f} integrated vs "
          f"{integration.complexity_naive:.1f} naive "
          f"(saving {integration.saving:.1f})")

    quarry.add_requirement(quantity_requirement())
    show(quarry, "IR3 added (degenerate ship-mode dimension)")

    changed = (
        RequirementBuilder("IR1", "revenue now per part brand only")
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )
    quarry.change_requirement(changed)
    show(quarry, "IR1 changed (coarser granularity)")

    quarry.remove_requirement("IR2")
    show(quarry, "IR2 removed (design rebuilt)")

    print("\nSatisfiability problems:",
          quarry.satisfiability_problems() or "none")


if __name__ == "__main__":
    main()
