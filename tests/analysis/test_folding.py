"""Constant folding, three-valued truth, and conjunction satisfiability."""

from repro.analysis.folding import fold, truth, unsatisfiable
from repro.expressions import ast, parse


def p(text):
    return parse(text)


class TestFold:
    def test_constant_arithmetic_folds(self):
        folded = fold(p("1 + 2 * 3"))
        assert isinstance(folded, ast.Literal)
        assert folded.value == 7

    def test_null_poisons_comparisons(self):
        folded = fold(p("x > null"))
        assert isinstance(folded, ast.Literal)
        assert folded.value is None

    def test_kleene_absorption(self):
        assert fold(p("1 = 2 and x > 1")).value is False
        assert fold(p("1 = 1 or x > 1")).value is True

    def test_kleene_identity_keeps_the_open_side(self):
        folded = fold(p("1 = 1 and x > 1"))
        assert isinstance(folded, ast.BinaryOp)
        assert folded.operator == ">"

    def test_division_by_zero_is_left_for_runtime(self):
        folded = fold(p("1 / 0"))
        assert not isinstance(folded, ast.Literal)


class TestTruth:
    def test_always_true(self):
        assert truth(p("1 = 1")) is True
        assert truth(p("true or x > 1")) is True

    def test_always_false_includes_null(self):
        assert truth(p("1 = 2")) is False
        assert truth(p("null = 1")) is False  # NULL filters the row out

    def test_unknown(self):
        assert truth(p("x > 1")) is None


class TestUnsatisfiable:
    def test_contradictory_interval(self):
        assert unsatisfiable([p("x < 0"), p("x > 0")])
        assert unsatisfiable([p("x < 0 and x > 0")])

    def test_open_interval_is_not_proven(self):
        assert not unsatisfiable([p("x > 0"), p("x > 5")])
        assert not unsatisfiable([p("x > 1")])

    def test_equality_versus_exclusion(self):
        assert unsatisfiable([p("x = 1"), p("x != 1")])
        assert unsatisfiable([p("x = 1"), p("x = 2")])
        assert not unsatisfiable([p("x = 1"), p("y = 2")])

    def test_boolean_domain_exhaustion(self):
        assert unsatisfiable([p("x != true"), p("x != false")])
        # int 1 must not leak into the boolean family
        assert not unsatisfiable([p("x != true"), p("x != 1")])

    def test_in_list_narrowing(self):
        assert unsatisfiable([p("x in (1, 2)"), p("x = 3")])
        assert not unsatisfiable([p("x in (1, 2)"), p("x = 2")])
        assert unsatisfiable([p("x in (null)")])

    def test_negated_in_with_null_never_passes(self):
        assert unsatisfiable([p("not (x in (1, null))")])

    def test_mixed_families_stay_unproven(self):
        assert not unsatisfiable([p("x = 'a'"), p("x > 5")])

    def test_strict_bound_meeting_point(self):
        assert unsatisfiable([p("x >= 5"), p("x < 5")])
        assert not unsatisfiable([p("x >= 5"), p("x <= 5")])
