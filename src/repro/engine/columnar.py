"""Columnar in-memory relations: the executor's batch representation.

A :class:`ColumnarRelation` stores one Python list per attribute instead
of one dict per row.  That buys the executor:

* **zero-copy** ``project``/``rename``/``head`` (column lists are shared,
  never copied — relations are treated as immutable),
* **batch** ``take``/``distinct``/``sorted_by`` that touch each column
  once instead of rebuilding row dicts,
* tuple-key **hash join** and **hash aggregation** that operate directly
  on column arrays (:func:`hash_join`, :func:`hash_aggregate`),
* cheap evaluation of compiled expressions with
  ``map(column_fn, *columns)`` — no per-row dict in the hot path.

The row-dict world is still the interface of ``database.py``,
``sqlexec.py``, ``olap.py`` and the deployers, so the class carries
adapters both ways: :meth:`from_relation` / :meth:`from_rows` to enter,
and a cached ``.rows`` property, ``__iter__`` and :meth:`to_relation`
to leave.  Any code that handled a :class:`repro.engine.relation.Relation`
result keeps working against a columnar one.

Semantics mirror the row implementations exactly (NULL-key behaviour in
joins, first-occurrence order in ``distinct``, NULLs-first sorting,
insertion-ordered groups) so the compiled-columnar executor is
bit-identical to the legacy row interpreter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError, ExecutionError
from repro.expressions.types import ScalarType


def unhashable_key_error(
    op_label: str, named_values, cause: Exception
) -> ExecutionError:
    """The uniform error for an unhashable key value in a hash-based op.

    ``named_values`` is an iterable of ``(attribute, values)`` pairs in
    the op's key order; the first unhashable value found names the
    attribute in the message, so both executor modes — which call this
    from their own loops — report the identical failure instead of a
    bare ``TypeError: unhashable type``.
    """
    for name, values in named_values:
        for value in values:
            try:
                hash(value)
            except TypeError:
                return ExecutionError(
                    f"{op_label}: unhashable value {value!r} for key "
                    f"attribute {name!r}"
                )
    return ExecutionError(f"{op_label}: {cause}")


def _key_iter(columns: Sequence[list], length: int):
    """Iterate per-row key tuples over the given columns.

    ``zip(*[])`` would yield nothing, but a zero-column key is ``()``
    for every row — this helper keeps that edge case correct.
    """
    if columns:
        return zip(*columns)
    return (() for _ in range(length))


class ColumnarRelation:
    """A bag of rows under an ordered attribute schema, stored by column."""

    __slots__ = ("schema", "columns", "length", "_row_cache")

    def __init__(
        self,
        schema: Dict[str, ScalarType],
        columns: Dict[str, list],
        length: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.columns = columns
        if length is None:
            if not columns:
                raise EngineError(
                    "a zero-column relation needs an explicit length"
                )
            length = len(next(iter(columns.values())))
        self.length = length
        self._row_cache: Optional[List[dict]] = None

    # -- adapters to and from the row-dict world ---------------------------

    @classmethod
    def from_rows(
        cls, schema: Dict[str, ScalarType], rows: List[dict]
    ) -> "ColumnarRelation":
        columns = {name: [row[name] for row in rows] for name in schema}
        return cls(schema, columns, length=len(rows))

    @classmethod
    def from_relation(cls, relation) -> "ColumnarRelation":
        """Convert a row :class:`~repro.engine.relation.Relation`."""
        return cls.from_rows(dict(relation.schema), relation.rows)

    @property
    def rows(self) -> List[dict]:
        """Rows as dicts (materialised once, then cached)."""
        if self._row_cache is None:
            names = list(self.schema)
            columns = [self.columns[name] for name in names]
            if columns:
                self._row_cache = [
                    dict(zip(names, values)) for values in zip(*columns)
                ]
            else:
                self._row_cache = [{} for _ in range(self.length)]
        return self._row_cache

    def to_relation(self):
        from repro.engine.relation import Relation

        return Relation(schema=dict(self.schema), rows=list(self.rows))

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    def attribute_names(self) -> List[str]:
        return list(self.schema)

    # -- structural operators (zero-copy) ----------------------------------

    def project(self, columns: List[str]) -> "ColumnarRelation":
        """Keep only the given columns, sharing their arrays."""
        missing = [column for column in columns if column not in self.schema]
        if missing:
            raise EngineError(f"cannot project unknown columns {missing}")
        return ColumnarRelation(
            schema={column: self.schema[column] for column in columns},
            columns={column: self.columns[column] for column in columns},
            length=self.length,
        )

    def rename_columns(self, mapping: Dict[str, str]) -> "ColumnarRelation":
        """Rename attributes, sharing the column arrays."""
        schema = {
            mapping.get(name, name): scalar_type
            for name, scalar_type in self.schema.items()
        }
        columns = {
            mapping.get(name, name): column
            for name, column in self.columns.items()
        }
        return ColumnarRelation(schema=schema, columns=columns, length=self.length)

    def head(self, count: int) -> "ColumnarRelation":
        return ColumnarRelation(
            schema=dict(self.schema),
            columns={name: column[:count] for name, column in self.columns.items()},
            length=len(range(self.length)[:count]),
        )

    # -- batch operators ---------------------------------------------------

    def take(self, indices: List[int]) -> "ColumnarRelation":
        """Rows at the given positions, in the given order."""
        return ColumnarRelation(
            schema=dict(self.schema),
            columns={
                name: [column[i] for i in indices]
                for name, column in self.columns.items()
            },
            length=len(indices),
        )

    def distinct(self) -> "ColumnarRelation":
        """Duplicate rows removed, first occurrence kept (order-preserving)."""
        seen = set()
        keep: List[int] = []
        key_columns = [self.columns[name] for name in self.schema]
        try:
            for index, key in enumerate(_key_iter(key_columns, self.length)):
                if key in seen:
                    continue
                seen.add(key)
                keep.append(index)
        except TypeError as exc:
            raise unhashable_key_error(
                "distinct", zip(self.schema, key_columns), exc
            ) from exc
        if len(keep) == self.length:
            return self
        return self.take(keep)

    def sorted_by(
        self, keys: List[str], descending: bool = False
    ) -> "ColumnarRelation":
        """Rows sorted by the given keys (NULLs first, stable)."""
        missing = [key for key in keys if key not in self.schema]
        if missing:
            raise EngineError(f"cannot sort by unknown columns {missing}")
        key_columns = [self.columns[key] for key in keys]

        def sort_key(index):
            return tuple(
                (column[index] is not None, column[index])
                for column in key_columns
            )

        order = sorted(range(self.length), key=sort_key, reverse=descending)
        return self.take(order)

    def concat(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Bag union with an identically-shaped relation."""
        return ColumnarRelation(
            schema=dict(self.schema),
            columns={
                name: self.columns[name] + other.columns[name]
                for name in self.schema
            },
            length=self.length + other.length,
        )


def hash_join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    left_keys: List[str],
    right_keys: List[str],
    payload: List[str],
    schema: Dict[str, ScalarType],
    left_outer: bool = False,
) -> ColumnarRelation:
    """Tuple-key hash join over column arrays.

    ``payload`` names the right-side columns carried into the output
    (the caller already resolved same-name key columns and collisions).
    Rows with a NULL key part never match; with ``left_outer`` they are
    kept with NULL payload.  Output order matches the row-at-a-time
    join: left order, matches in right insertion order.

    Single-column keys skip tuple packing entirely, and a right side
    without duplicate keys (the dimension side of every FK join) takes
    a probe path with no inner match loop.
    """
    try:
        if len(right_keys) == 1:
            left_take, right_take = _join_positions_single(
                left.columns[left_keys[0]],
                right.columns[right_keys[0]],
                left_outer,
            )
        else:
            left_take, right_take = _join_positions_multi(
                [left.columns[key] for key in left_keys],
                [right.columns[key] for key in right_keys],
                left.length,
                right.length,
                left_outer,
            )
    except TypeError as exc:
        named = [(key, left.columns[key]) for key in left_keys]
        named += [(key, right.columns[key]) for key in right_keys]
        raise unhashable_key_error("join", named, exc) from exc

    columns: Dict[str, list] = {
        name: [column[i] for i in left_take]
        for name, column in left.columns.items()
    }
    has_outer_slots = left_outer and -1 in right_take
    for name in payload:
        column = right.columns[name]
        if has_outer_slots:
            columns[name] = [
                column[j] if j >= 0 else None for j in right_take
            ]
        else:
            columns[name] = [column[j] for j in right_take]
    return ColumnarRelation(schema=schema, columns=columns, length=len(left_take))


def _join_positions_single(
    left_column: list, right_column: list, left_outer: bool
) -> Tuple[List[int], List[int]]:
    """Matched (left, right) position pairs for a one-column key."""
    unique: Dict[object, int] = {}
    duplicates: Dict[object, List[int]] = {}
    for position, key in enumerate(right_column):
        if key is None:
            continue
        if key in unique:
            duplicates.setdefault(key, [unique[key]]).append(position)
        else:
            unique[key] = position
    left_take: List[int] = []
    right_take: List[int] = []  # -1 marks an outer-join NULL slot
    if not duplicates and not left_outer:
        # The dominant case: FK probe against a unique (PK-like) side.
        get = unique.get
        for position, key in enumerate(left_column):
            if key is None:
                continue
            match = get(key)
            if match is not None:
                left_take.append(position)
                right_take.append(match)
        return left_take, right_take
    for position, key in enumerate(left_column):
        matches = None
        if key is not None:
            matches = duplicates.get(key)
            if matches is None and key in unique:
                left_take.append(position)
                right_take.append(unique[key])
                continue
        if matches:
            for match in matches:
                left_take.append(position)
                right_take.append(match)
        elif left_outer:
            left_take.append(position)
            right_take.append(-1)
    return left_take, right_take


def _join_positions_multi(
    left_key_columns: List[list],
    right_key_columns: List[list],
    left_length: int,
    right_length: int,
    left_outer: bool,
) -> Tuple[List[int], List[int]]:
    """Matched (left, right) position pairs for a tuple key."""
    index: Dict[tuple, List[int]] = {}
    for position, key in enumerate(
        _key_iter(right_key_columns, right_length)
    ):
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(position)
    left_take: List[int] = []
    right_take: List[int] = []
    for position, key in enumerate(_key_iter(left_key_columns, left_length)):
        matches = (
            index.get(key) if not any(part is None for part in key) else None
        )
        if matches:
            for match in matches:
                left_take.append(position)
                right_take.append(match)
        elif left_outer:
            left_take.append(position)
            right_take.append(-1)
    return left_take, right_take


def hash_aggregate(
    relation: ColumnarRelation,
    group_by: Tuple[str, ...],
    aggregates,
    schema: Dict[str, ScalarType],
) -> ColumnarRelation:
    """Hash aggregation over column arrays.

    Groups appear in first-seen order (matching dict insertion order of
    the row implementation); a global aggregate (empty ``group_by``)
    always yields exactly one row.
    """
    if group_by:
        group_columns = [relation.columns[name] for name in group_by]
        group_of: Dict[tuple, int] = {}
        keys_in_order: List[tuple] = []
        members: List[List[int]] = []
        try:
            for position, key in enumerate(
                _key_iter(group_columns, relation.length)
            ):
                slot = group_of.get(key)
                if slot is None:
                    group_of[key] = slot = len(members)
                    keys_in_order.append(key)
                    members.append([])
                members[slot].append(position)
        except TypeError as exc:
            raise unhashable_key_error(
                "aggregate", zip(group_by, group_columns), exc
            ) from exc
    else:
        keys_in_order = [()]
        members = [list(range(relation.length))]

    columns: Dict[str, list] = {}
    for key_position, name in enumerate(group_by):
        columns[name] = [key[key_position] for key in keys_in_order]
    for spec in aggregates:
        source = relation.columns[spec.input]
        columns[spec.output] = [
            aggregate_values(
                spec.function,
                [source[i] for i in group if source[i] is not None],
            )
            for group in members
        ]
    return ColumnarRelation(
        schema=schema, columns=columns, length=len(keys_in_order)
    )


def surrogate_keys(
    relation: ColumnarRelation, business_keys: Tuple[str, ...]
) -> List[int]:
    """Dense surrogate key per row, stable across repeated business keys."""
    key_columns = [relation.columns[name] for name in business_keys]
    assigned: Dict[tuple, int] = {}
    output: List[int] = []
    try:
        for key in _key_iter(key_columns, relation.length):
            surrogate = assigned.get(key)
            if surrogate is None:
                assigned[key] = surrogate = len(assigned) + 1
            output.append(surrogate)
    except TypeError as exc:
        raise unhashable_key_error(
            "surrogate-key", zip(business_keys, key_columns), exc
        ) from exc
    return output


def aggregate_values(function: str, values: list):
    """Aggregate non-NULL values; empty input yields NULL (COUNT: 0)."""
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVERAGE":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate function {function!r}")
