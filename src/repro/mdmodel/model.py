"""Multidimensional schema classes.

The structure follows the xMD format of the paper (Figures 3-4): an MD
schema holds *facts* (with measures) and *dimensions* (with levels and
hierarchies); fact-dimension links record the granularity at which a
fact references a dimension.  Several facts may share a dimension — a
constellation with conformed dimensions, which is exactly what the MD
Schema Integrator produces when consolidating requirements.

Provenance fields (``concept``/``property``/``requirements``) tie every
element back to the domain ontology and the requirements it serves;
integration and satisfiability checking are driven by them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import MDError
from repro.expressions.types import ScalarType


class AggregationFunction(enum.Enum):
    """Aggregation functions usable in requirements and measures."""

    SUM = "SUM"
    AVG = "AVERAGE"
    MIN = "MIN"
    MAX = "MAX"
    COUNT = "COUNT"

    @classmethod
    def parse(cls, text: str) -> "AggregationFunction":
        """Parse lenient spellings (``avg``, ``AVERAGE``, ``Sum``)."""
        upper = text.strip().upper()
        aliases = {"AVG": "AVERAGE", "MEAN": "AVERAGE"}
        upper = aliases.get(upper, upper)
        for function in cls:
            if function.value == upper:
                return function
        raise MDError(f"unknown aggregation function {text!r}")


class Additivity(enum.Enum):
    """How a measure may be summed along dimensions (cf. [9] in paper)."""

    ADDITIVE = "additive"
    SEMI_ADDITIVE = "semi-additive"
    NON_ADDITIVE = "non-additive"


class SCDPolicy(enum.Enum):
    """How a dimension level reacts to source changes over time.

    Kimball's slowly-changing-dimension taxonomy, restricted to the
    three types the generated ETL can honour (pygrametl's
    ``SlowlyChangingDimension`` is the exemplar):

    * ``TYPE0`` — the level is immutable; reloads replace it wholesale.
      This is the historical behaviour and the default everywhere.
    * ``TYPE1`` — update in place: a changed descriptor overwrites the
      stored value, no history kept.
    * ``TYPE2`` — versioned rows: a change closes the current row
      (``valid_to``/``is_current``) and opens a new one with a bumped
      version surrogate, preserving full history for point-in-time
      joins.
    """

    TYPE0 = "type0"
    TYPE1 = "type1"
    TYPE2 = "type2"

    @classmethod
    def parse(cls, text: str) -> "SCDPolicy":
        """Parse lenient spellings (``2``, ``type2``, ``TYPE2``, ``scd2``)."""
        token = text.strip().lower()
        if token.startswith("scd"):
            token = token[3:]
        if token in ("0", "1", "2"):
            token = f"type{token}"
        for policy in cls:
            if policy.value == token:
                return policy
        raise MDError(f"unknown SCD policy {text!r}")


#: Validity-window column names a TYPE2 level adds to its dimension
#: table, in table-column order.  ``version`` is the monotonically
#: increasing per-business-key surrogate; ``valid_from``/``valid_to``
#: bound the row's validity window (``valid_to`` is NULL on the open
#: row) and ``is_current`` flags the open row for current-row views.
SCD2_VERSION = "scd_version"
SCD2_VALID_FROM = "scd_valid_from"
SCD2_VALID_TO = "scd_valid_to"
SCD2_IS_CURRENT = "scd_is_current"

SCD2_COLUMNS: Dict[str, ScalarType] = {
    SCD2_VERSION: ScalarType.INTEGER,
    SCD2_VALID_FROM: ScalarType.DATE,
    SCD2_VALID_TO: ScalarType.DATE,
    SCD2_IS_CURRENT: ScalarType.BOOLEAN,
}


@dataclass(frozen=True)
class LevelAttribute:
    """A descriptor attribute of a level (e.g. ``p_name`` of Part)."""

    name: str
    type: ScalarType
    property: Optional[str] = None  # ontology datatype-property provenance


@dataclass
class Level:
    """An aggregation level of a dimension."""

    name: str
    attributes: List[LevelAttribute] = field(default_factory=list)
    key: Optional[str] = None  # identifying attribute; defaults to first
    concept: Optional[str] = None  # ontology concept provenance
    scd_policy: SCDPolicy = SCDPolicy.TYPE0

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(names) != len(set(names)):
            raise MDError(f"duplicate attribute names in level {self.name!r}")
        if self.key is None and self.attributes:
            self.key = self.attributes[0].name
        if self.key is not None and self.key not in names:
            raise MDError(
                f"key {self.key!r} is not an attribute of level {self.name!r}"
            )

    def attribute(self, name: str) -> LevelAttribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise MDError(f"level {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    def attribute_names(self) -> List[str]:
        return [attribute.name for attribute in self.attributes]

    def window_columns(self) -> Dict[str, ScalarType]:
        """SCD2 validity-window columns this level adds (empty unless TYPE2)."""
        if self.scd_policy is SCDPolicy.TYPE2:
            return dict(SCD2_COLUMNS)
        return {}


@dataclass
class Hierarchy:
    """An ordered roll-up path: ``levels[0]`` is the finest level."""

    name: str
    levels: List[str]

    def __post_init__(self) -> None:
        if not self.levels:
            raise MDError(f"hierarchy {self.name!r} has no levels")
        if len(self.levels) != len(set(self.levels)):
            raise MDError(f"hierarchy {self.name!r} repeats a level")

    @property
    def base(self) -> str:
        return self.levels[0]

    def rolls_up(self, finer: str, coarser: str) -> bool:
        """Whether ``coarser`` is above ``finer`` on this path."""
        if finer not in self.levels or coarser not in self.levels:
            return False
        return self.levels.index(finer) < self.levels.index(coarser)


@dataclass
class Dimension:
    """An analysis dimension: levels plus one or more hierarchies."""

    name: str
    levels: Dict[str, Level] = field(default_factory=dict)
    hierarchies: List[Hierarchy] = field(default_factory=list)
    requirements: Set[str] = field(default_factory=set)

    def add_level(self, level: Level) -> Level:
        if level.name in self.levels:
            raise MDError(
                f"level {level.name!r} already in dimension {self.name!r}"
            )
        self.levels[level.name] = level
        return level

    def level(self, name: str) -> Level:
        try:
            return self.levels[name]
        except KeyError:
            raise MDError(
                f"dimension {self.name!r} has no level {name!r}"
            ) from None

    def has_level(self, name: str) -> bool:
        return name in self.levels

    def add_hierarchy(self, hierarchy: Hierarchy) -> Hierarchy:
        if any(existing.name == hierarchy.name for existing in self.hierarchies):
            raise MDError(
                f"hierarchy {hierarchy.name!r} already in dimension {self.name!r}"
            )
        self.hierarchies.append(hierarchy)
        return hierarchy

    def hierarchy(self, name: str) -> Hierarchy:
        for hierarchy in self.hierarchies:
            if hierarchy.name == name:
                return hierarchy
        raise MDError(f"dimension {self.name!r} has no hierarchy {name!r}")

    def base_levels(self) -> List[str]:
        """Base (finest) levels of all hierarchies, deduplicated."""
        bases = []
        for hierarchy in self.hierarchies:
            if hierarchy.base not in bases:
                bases.append(hierarchy.base)
        return bases

    def rolls_up(self, finer: str, coarser: str) -> bool:
        """Whether any hierarchy rolls ``finer`` up to ``coarser``."""
        if finer == coarser:
            return True
        return any(h.rolls_up(finer, coarser) for h in self.hierarchies)

    def attribute_count(self) -> int:
        return sum(len(level.attributes) for level in self.levels.values())


@dataclass
class Measure:
    """A fact measure with its derivation expression and additivity."""

    name: str
    expression: str  # over ontology datatype-property ids
    type: ScalarType = ScalarType.DECIMAL
    aggregation: AggregationFunction = AggregationFunction.SUM
    additivity: Additivity = Additivity.ADDITIVE
    requirements: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class FactDimensionLink:
    """A fact's reference to a dimension at a given level granularity."""

    dimension: str
    level: str


@dataclass
class Fact:
    """A fact: measures plus links to dimensions.

    ``grain`` lists the attribute columns that define the fact's
    granularity — the grouping atoms of the requirement(s) it serves.
    The fact table carries exactly these columns (plus the measures),
    its primary key spans them, and the populating ETL aggregates by
    them.

    ``slicers`` records the selection predicates (over ontology
    datatype-property ids) baked into the fact's content by its ETL.
    Two facts with different slicers hold different data and must not
    be merged even when concept, links and grain coincide.
    """

    name: str
    measures: Dict[str, Measure] = field(default_factory=dict)
    links: List[FactDimensionLink] = field(default_factory=list)
    concept: Optional[str] = None  # ontology concept the fact is centred on
    requirements: Set[str] = field(default_factory=set)
    grain: List[str] = field(default_factory=list)
    slicers: List[str] = field(default_factory=list)

    def add_measure(self, measure: Measure) -> Measure:
        if measure.name in self.measures:
            raise MDError(
                f"measure {measure.name!r} already in fact {self.name!r}"
            )
        self.measures[measure.name] = measure
        return measure

    def measure(self, name: str) -> Measure:
        try:
            return self.measures[name]
        except KeyError:
            raise MDError(f"fact {self.name!r} has no measure {name!r}") from None

    def link_dimension(self, dimension: str, level: str) -> FactDimensionLink:
        link = FactDimensionLink(dimension, level)
        if link in self.links:
            return link
        if any(existing.dimension == dimension for existing in self.links):
            raise MDError(
                f"fact {self.name!r} already links dimension {dimension!r} "
                f"at a different level"
            )
        self.links.append(link)
        return link

    def linked_dimensions(self) -> List[str]:
        return [link.dimension for link in self.links]

    def link_for(self, dimension: str) -> Optional[FactDimensionLink]:
        for link in self.links:
            if link.dimension == dimension:
                return link
        return None


@dataclass
class MDSchema:
    """A constellation schema: facts sharing conformed dimensions."""

    name: str
    facts: Dict[str, Fact] = field(default_factory=dict)
    dimensions: Dict[str, Dimension] = field(default_factory=dict)

    def add_fact(self, fact: Fact) -> Fact:
        if fact.name in self.facts:
            raise MDError(f"fact {fact.name!r} already in schema {self.name!r}")
        self.facts[fact.name] = fact
        return fact

    def add_dimension(self, dimension: Dimension) -> Dimension:
        if dimension.name in self.dimensions:
            raise MDError(
                f"dimension {dimension.name!r} already in schema {self.name!r}"
            )
        self.dimensions[dimension.name] = dimension
        return dimension

    def fact(self, name: str) -> Fact:
        try:
            return self.facts[name]
        except KeyError:
            raise MDError(f"schema {self.name!r} has no fact {name!r}") from None

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[name]
        except KeyError:
            raise MDError(
                f"schema {self.name!r} has no dimension {name!r}"
            ) from None

    def has_fact(self, name: str) -> bool:
        return name in self.facts

    def has_dimension(self, name: str) -> bool:
        return name in self.dimensions

    def all_requirements(self) -> Set[str]:
        """Ids of all requirements any element of the schema serves."""
        requirement_ids: Set[str] = set()
        for fact in self.facts.values():
            requirement_ids |= fact.requirements
            for measure in fact.measures.values():
                requirement_ids |= measure.requirements
        for dimension in self.dimensions.values():
            requirement_ids |= dimension.requirements
        return requirement_ids

    def copy(self) -> "MDSchema":
        """Deep-enough copy for integration trials (shared immutables)."""
        clone = MDSchema(name=self.name)
        for fact in self.facts.values():
            clone.facts[fact.name] = Fact(
                name=fact.name,
                measures={
                    name: replace(measure, requirements=set(measure.requirements))
                    for name, measure in fact.measures.items()
                },
                links=list(fact.links),
                concept=fact.concept,
                requirements=set(fact.requirements),
                grain=list(fact.grain),
                slicers=list(fact.slicers),
            )
        for dimension in self.dimensions.values():
            clone.dimensions[dimension.name] = Dimension(
                name=dimension.name,
                levels={
                    name: Level(
                        name=level.name,
                        attributes=list(level.attributes),
                        key=level.key,
                        concept=level.concept,
                        scd_policy=level.scd_policy,
                    )
                    for name, level in dimension.levels.items()
                },
                hierarchies=[
                    Hierarchy(name=h.name, levels=list(h.levels))
                    for h in dimension.hierarchies
                ],
                requirements=set(dimension.requirements),
            )
        return clone

    def iter_levels(self) -> Iterator[Tuple[str, Level]]:
        """(dimension name, level) pairs across the schema."""
        for dimension in self.dimensions.values():
            for level in dimension.levels.values():
                yield dimension.name, level
