"""Shared fixtures for the benchmark suite."""

import pytest

from repro.engine import Database
from repro.sources import tpch


@pytest.fixture(scope="session")
def tpch_domain():
    return tpch.ontology(), tpch.schema(), tpch.mappings()


def make_database(scale_factor: float, seed: int = 20150323) -> Database:
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(scale_factor, seed=seed))
    return database


@pytest.fixture(scope="session")
def tpch_db():
    """A mid-size TPC-H database shared by execution benchmarks."""
    return make_database(scale_factor=0.5)
