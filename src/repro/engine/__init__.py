"""Execution engine: the deployment substrate.

The demo deploys MD schemas on PostgreSQL and runs ETL flows on Pentaho
PDI.  This package is the in-process stand-in for both: an embedded
relational store with key enforcement (:mod:`repro.engine.database`), a
compiled columnar executor for logical ETL flows with a row-at-a-time
reference mode (:mod:`repro.engine.executor`,
:mod:`repro.engine.columnar`), SQL rendering helpers
(:mod:`repro.engine.sqlgen`), and an OLAP query interface over deployed
star schemas (:mod:`repro.engine.olap`).

Running the *same logical flow* that the PDI generator serialises means
the "overall execution time" experiments exercise a real data path.
"""

from repro.engine.columnar import ColumnarRelation
from repro.engine.database import Database, TableDef
from repro.engine.executor import ExecutionStats, Executor, NodeStats
from repro.engine.olap import OlapQuery, query_star
from repro.engine.relation import Relation

__all__ = [
    "ColumnarRelation",
    "Database",
    "ExecutionStats",
    "Executor",
    "NodeStats",
    "OlapQuery",
    "Relation",
    "TableDef",
    "query_star",
]
