"""Textual EXPLAIN rendering of ETL flows.

Renders a flow as an indented operator tree per loader (the way database
EXPLAIN output reads), optionally annotated with the cost model's row
and cost estimates.  Used by examples and handy when debugging
integration results::

    LOAD fact_table_revenue  [rows=3, cost=6]
      AGG_fact_table_revenue GroupBy(p_name, s_name)  [rows=30, ...]
        DERIVE_revenue Calculator(revenue)
          SELECTION_IR1_1 FilterRows(n_name = 'SPAIN')
            JOIN_nation MergeJoin(c_nationkey=n_nationkey)
              ...
            EXTRACTION_nation SelectValues(n_name, n_nationkey)
              DATASTORE_nation TableInput(nation)

Shared subtrees (a node feeding several consumers) are expanded once and
referenced as ``^see <name>`` afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.etlmodel.cost import CostModel, FlowCostReport
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Extraction,
    Join,
    Loader,
    Operation,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
)


def explain(
    flow: EtlFlow,
    cost_model: Optional[CostModel] = None,
    row_counts: Optional[Dict[str, int]] = None,
) -> str:
    """Render the flow as indented per-loader operator trees."""
    report: Optional[FlowCostReport] = None
    if cost_model is not None:
        report = cost_model.estimate(flow, row_counts)
    lines: List[str] = [f"Flow '{flow.name}'"]
    if flow.requirements:
        lines.append(f"requirements: {', '.join(sorted(flow.requirements))}")
    expanded: set = set()
    for sink in flow.sinks():
        lines.append("")
        _render(flow, sink, 0, lines, expanded, report)
    return "\n".join(lines) + "\n"


def _render(flow, name, depth, lines, expanded, report) -> None:
    operation = flow.node(name)
    annotation = ""
    if report is not None:
        node = report.node(name)
        annotation = f"  [rows={node.output_rows:,.0f}, cost={node.cost:,.0f}]"
    pad = "  " * depth
    if name in expanded:
        lines.append(f"{pad}^see {name}")
        return
    expanded.add(name)
    lines.append(f"{pad}{name} {_describe(operation)}{annotation}")
    for source in flow.inputs(name):
        _render(flow, source, depth + 1, lines, expanded, report)


def explain_plan(plan, stats=None) -> str:
    """Render a cost-based :class:`repro.planner.rewrite.Plan`.

    Shows the rewritten operator tree annotated with the planner's
    estimated cardinalities; when the flow has been executed, pass the
    run's :class:`repro.engine.executor.ExecutionStats` to add actual
    row counts and the per-node q-error (``max(est/act, act/est)``, 1.0
    is a perfect estimate).  Planner decisions (pushdowns, join
    reorders, build-side flips, fusion vetoes) are listed after the
    tree; a fallback reason means the flow runs unrewritten.
    """
    flow = plan.flow
    actual: Dict[str, int] = {}
    q_errors: Dict[str, float] = {}
    if stats is not None:
        for node_stats in stats.nodes:
            actual[node_stats.name] = node_stats.output_rows
            if node_stats.q_error is not None:
                q_errors[node_stats.name] = node_stats.q_error
    lines: List[str] = [f"Plan for flow '{flow.name}'"]
    expanded: set = set()
    for sink in flow.sinks():
        lines.append("")
        _render_plan(flow, sink, 0, lines, expanded, plan, actual, q_errors)
    if plan.fallback is not None:
        lines.append("")
        lines.append(f"fallback (flow runs unrewritten): {plan.fallback}")
    elif plan.decisions:
        lines.append("")
        lines.append("decisions:")
        for decision in plan.decisions:
            lines.append(f"  - {decision}")
    else:
        lines.append("")
        lines.append("decisions: none (flow already in planned form)")
    return "\n".join(lines) + "\n"


def _render_plan(
    flow, name, depth, lines, expanded, plan, actual, q_errors
) -> None:
    operation = flow.node(name)
    parts = []
    estimate = plan.estimates.get(name)
    if estimate is not None:
        parts.append(f"est={estimate:,.0f}")
    if name in actual:
        parts.append(f"act={actual[name]:,}")
    if name in q_errors:
        parts.append(f"q={q_errors[name]:.2f}")
    annotation = f"  [{', '.join(parts)}]" if parts else ""
    pad = "  " * depth
    if name in expanded:
        lines.append(f"{pad}^see {name}")
        return
    expanded.add(name)
    lines.append(f"{pad}{name} {_describe(operation)}{annotation}")
    for source in flow.inputs(name):
        _render_plan(
            flow, source, depth + 1, lines, expanded, plan, actual, q_errors
        )


def _describe(operation: Operation) -> str:
    """A one-line summary of an operation's parameters."""
    if isinstance(operation, Datastore):
        return f"TableInput({operation.table})"
    if isinstance(operation, (Extraction, Projection)):
        return f"{operation.optype}({', '.join(operation.columns)})"
    if isinstance(operation, Selection):
        return f"FilterRows({operation.predicate})"
    if isinstance(operation, Join):
        pairs = ", ".join(
            f"{left}={right}"
            for left, right in zip(operation.left_keys, operation.right_keys)
        )
        kind = f", {operation.join_type}" if operation.join_type != "inner" else ""
        return f"MergeJoin({pairs}{kind})"
    if isinstance(operation, Aggregation):
        keys = ", ".join(operation.group_by) if operation.group_by else "ALL"
        outputs = ", ".join(
            f"{spec.output}={spec.function}({spec.input})"
            for spec in operation.aggregates
        )
        return f"GroupBy({keys} -> {outputs})"
    if isinstance(operation, DerivedAttribute):
        return f"Calculator({operation.output} = {operation.expression})"
    if isinstance(operation, Rename):
        renames = ", ".join(f"{old}->{new}" for old, new in operation.renaming)
        return f"Rename({renames})"
    if isinstance(operation, SurrogateKey):
        return (
            f"AddSequence({operation.output} over "
            f"{', '.join(operation.business_keys)})"
        )
    if isinstance(operation, Sort):
        return f"SortRows({', '.join(operation.keys)})"
    if isinstance(operation, Loader):
        return f"TableOutput({operation.table}, {operation.mode})"
    return operation.optype
