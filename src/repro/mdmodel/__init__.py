"""The multidimensional (MD) model.

Quarry's target design artefact on the schema side: facts with measures,
dimensions with levels organised into aggregation hierarchies, and
constellation schemas where several facts share conformed dimensions.

* :mod:`repro.mdmodel.model` — the schema classes,
* :mod:`repro.mdmodel.constraints` — MD integrity constraints and
  summarizability validation (the checks behind "Quarry automatically
  guarantees MD-compliant results", §2.3),
* :mod:`repro.mdmodel.complexity` — the structural design complexity
  cost model (the paper's example MD quality factor, §3),
* :mod:`repro.mdmodel.conformance` — dimension conformance tests and
  merge utilities used by the MD Schema Integrator.
"""

from repro.mdmodel.model import (
    AggregationFunction,
    Additivity,
    Dimension,
    Fact,
    FactDimensionLink,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)

__all__ = [
    "Additivity",
    "AggregationFunction",
    "Dimension",
    "Fact",
    "FactDimensionLink",
    "Hierarchy",
    "Level",
    "LevelAttribute",
    "MDSchema",
    "Measure",
]
