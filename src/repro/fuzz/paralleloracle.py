"""The parallel-equivalence oracle: chunked versus serial execution.

``Executor(mode="parallel")`` promises results *byte-identical* to the
serial columnar engine — chunk merges preserve row order, NULL
placement, group first-seen order and exact float bits (aggregates fold
the serial value sequences, never partial per-chunk sums).  That makes
this oracle strictly stronger than the planner one: it compares
**ordered canonical rows** per target, not quantised multisets — a
chunk merged out of order is a real bug even when the multiset matches.

Error parity is exact too (``TypeName: message``): the parallel engine
collects chunk results in chunk order so the earliest chunk's failure —
the one holding the globally-first failing row — surfaces, and
unhashable-key reporting scans full columns, so messages are
chunk-layout-independent.  Trials therefore mirror the plain flow kind
in full: division *and* unhashable injection stay enabled.

The executor runs with ``workers=3`` and ``parallel_row_threshold=2``
so even the fuzzer's tiny tables actually chunk — the default
threshold would silently test the serial path.  Every trial sweeps
**both worker pools**: the thread pool and the process pool, whose
shared-memory transport, recompile-in-worker caches and parent-side
gathers are each a fresh way to lose byte-identity.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.engine.executor import Executor
from repro.fuzz.datagen import LooseDatabase, inject_unhashable, make_tables
from repro.fuzz.flowgen import FlowTrial, build_flow
from repro.fuzz.oracle import canonical_rows

Outcome = Tuple[str, object]

#: Forced-chunking executor settings (see module docstring).
PARALLEL_WORKERS = 3
PARALLEL_ROW_THRESHOLD = 2

#: Every trial checks serial against each of these worker pools.
POOLS = ("thread", "process")


class ParallelTrial(FlowTrial):
    """A flow trial checked for parallel/serial byte-identity."""


def execute_parallel_trial(
    mode: str, trial: FlowTrial, pool: str = "thread"
) -> Outcome:
    """Run the trial on a fresh database; ordered canonical outcome."""
    database = LooseDatabase.from_specs(trial.tables)
    executor = Executor(
        database,
        mode=mode,
        workers=PARALLEL_WORKERS,
        parallel_row_threshold=PARALLEL_ROW_THRESHOLD,
        pool=pool,
    )
    try:
        with executor:
            executor.execute(trial.flow)
    except Exception as exc:  # error parity is part of the contract
        return ("error", f"{type(exc).__name__}: {exc}")
    targets = sorted(
        {node.table for node in trial.flow.nodes() if node.kind == "Loader"}
    )
    return (
        "ok",
        {
            target: canonical_rows(database.scan(target).rows)
            for target in targets
        },
    )


def check_parallel_trial(trial: FlowTrial) -> Optional[str]:
    """``None`` when serial and every parallel pool agree byte-for-byte.

    The category (text before the first colon) is
    ``parallel-divergence`` so the shrinker preserves the failure class
    while minimising.
    """
    serial = execute_parallel_trial("columnar", trial)
    for pool in POOLS:
        parallel = execute_parallel_trial("parallel", trial, pool=pool)
        report = _compare_outcomes(serial, parallel, pool)
        if report is not None:
            return report
    return None


def _compare_outcomes(
    serial: Outcome, parallel: Outcome, pool: str
) -> Optional[str]:
    if serial == parallel:
        return None
    serial_kind, serial_value = serial
    parallel_kind, parallel_value = parallel
    if serial_kind != parallel_kind or serial_kind == "error":
        return (
            f"parallel-divergence: columnar -> {serial_kind} "
            f"({serial_value!r}), parallel[{pool}] -> {parallel_kind} "
            f"({parallel_value!r})"
        )
    for target in sorted(serial_value):
        before: List[str] = serial_value[target]
        after: List[str] = parallel_value.get(target, [])
        if before != after:
            divergence = next(
                (
                    index
                    for index, pair in enumerate(zip(before, after))
                    if pair[0] != pair[1]
                ),
                min(len(before), len(after)),
            )
            return (
                f"parallel-divergence: table {target!r}: columnar "
                f"{len(before)} row(s) vs parallel[{pool}] "
                f"{len(after)}, first difference at row {divergence}: "
                f"{before[divergence:divergence + 1]!r} vs "
                f"{after[divergence:divergence + 1]!r}"
            )
    return "parallel-divergence: outcomes differ"


def build_parallel_trial(seed: int) -> ParallelTrial:
    """The deterministic parallel trial for a seed.

    Same recipe as :func:`repro.fuzz.flowgen.build_flow_trial` —
    unhashable injection and division included — on an independent RNG
    stream.
    """
    rng = random.Random(f"parallel:{seed}")
    tables = make_tables(rng)
    notes = []
    if rng.random() < 0.12 and inject_unhashable(rng, tables):
        notes.append("unhashable value injected")
    flow = build_flow(rng, tables)
    return ParallelTrial(tables=tables, flow=flow, seed=seed, notes=notes)


def shrink_parallel_trial(trial: FlowTrial, budget: int = 250) -> FlowTrial:
    from repro.fuzz.shrink import shrink_flow_trial

    return shrink_flow_trial(trial, check=check_parallel_trial, budget=budget)
