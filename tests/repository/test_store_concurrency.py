"""Regression: ``store.save`` must persist a consistent point in time.

Before :meth:`DocumentStore.snapshot`, ``save`` read each collection in
turn with no cross-collection lock: a writer appending to two related
collections between the reads produced a *torn* file — documents in the
later-read collection referencing documents missing from the
earlier-read one.  The test stretches the read window (a sleeping
``find``) and runs paired writers; the old code loses the invariant
deterministically, the snapshot-based save never does.
"""

import json
import threading

from repro.repository.documents import Collection, DocumentStore
from repro.repository.store import load, save


def _paired_writer(
    store: DocumentStore, stop: threading.Event, prefix: str
) -> None:
    """Append credit ``c-…`` then debit ``d-…`` referencing it.

    Writing the credit first makes "every debit's reference exists in
    credits" an invariant of every point in time — any snapshot that
    breaks it interleaved with a writer mid-save.
    """
    credits = store.collection("credits")
    debits = store.collection("debits")
    index = 0
    while not stop.is_set():
        credit_id = f"c-{prefix}-{index}"
        credits.insert({"_id": credit_id, "amount": 1})
        debits.insert({"_id": f"d-{prefix}-{index}", "ref": credit_id})
        index += 1


def test_save_under_concurrent_writers_is_torn_free(tmp_path, monkeypatch):
    store = DocumentStore(name="ledger")
    store.collection("credits")
    store.collection("debits").create_index("ref")

    original_find = Collection.find

    def slow_find(self, *args, **kwargs):
        # Widen the gap between the per-collection reads: an unlocked
        # save now reliably straddles many writer iterations.
        threading.Event().wait(0.05)
        return original_find(self, *args, **kwargs)

    monkeypatch.setattr(Collection, "find", slow_find)

    stop = threading.Event()
    writers = [
        threading.Thread(
            target=_paired_writer, args=(store, stop, f"w{n}"), daemon=True
        )
        for n in range(2)
    ]
    for writer in writers:
        writer.start()
    try:
        path = tmp_path / "ledger.json"
        save(store, path)
    finally:
        stop.set()
        for writer in writers:
            writer.join(timeout=10)

    payload = json.loads(path.read_text(encoding="utf-8"))
    credits = {doc["_id"] for doc in payload["collections"]["credits"]}
    debits = payload["collections"]["debits"]
    dangling = [doc["_id"] for doc in debits if doc["ref"] not in credits]
    assert not dangling, f"torn snapshot: debits without credits {dangling}"
    assert payload["indexes"] == {"debits": ["ref"]}


def test_load_restores_documents_and_indexes(tmp_path):
    store = DocumentStore(name="ledger")
    store.collection("credits").insert({"_id": "c0", "amount": 1})
    debits = store.collection("debits")
    debits.create_index("ref")
    debits.insert({"_id": "d0", "ref": "c0"})
    path = tmp_path / "ledger.json"
    save(store, path)

    loaded = load(path)
    assert loaded.name == "ledger"
    assert loaded.collection("credits").find() == [
        {"_id": "c0", "amount": 1}
    ]
    assert loaded.collection("debits").indexes() == ["ref"]
    assert loaded.collection("debits").find({"ref": "c0"}) == [
        {"_id": "d0", "ref": "c0"}
    ]


def test_snapshot_blocks_collection_creation_mid_capture():
    """A collection created while a snapshot runs lands in the *next*
    save, never half-in the current one."""
    store = DocumentStore(name="s")
    store.collection("a").insert({"_id": "1"})
    snapshot = store.snapshot()
    store.collection("b").insert({"_id": "2"})
    assert set(snapshot["collections"]) == {"a"}
    assert set(store.snapshot()["collections"]) == {"a", "b"}
