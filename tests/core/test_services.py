"""The service decomposition: bus, envelopes, sessions, facade compat."""

from pathlib import Path

import pytest

from repro import ChangeReport, DesignStatus, Quarry, QuarryError
from repro.core.services import (
    ArtifactBus,
    ArtifactEnvelope,
    DesignSession,
)
from repro.core.services.deployment import TOPIC_DEPLOYMENTS
from repro.core.services.elicitation import TOPIC_REQUIREMENTS
from repro.core.services.integration import TOPIC_UNIFIED
from repro.core.services.interpretation import TOPIC_PARTIALS
from repro.repository import MetadataRepository
from repro.sources import tpch
from repro.xformats import xlm, xmd

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "design"


@pytest.fixture
def domain():
    return tpch.ontology(), tpch.schema(), tpch.mappings()


@pytest.fixture
def session(domain):
    return DesignSession(*domain)


class TestFacadeCompatibility:
    """The old Quarry API must behave byte-for-byte as before."""

    def test_unified_artifacts_match_pinned_examples(self, domain):
        quarry = Quarry(*domain)
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        md, etl = quarry.unified_design()
        assert xmd.dumps(md) == (EXAMPLES / "unified.xmd").read_text()
        assert xlm.dumps(etl) == (EXAMPLES / "unified.xlm").read_text()

    def test_facade_and_session_produce_identical_ddl(self, domain):
        quarry = Quarry(*domain)
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        session = DesignSession(*domain)
        session.add_requirement(build_revenue_requirement())
        session.add_requirement(build_netprofit_requirement())
        via_facade = quarry.deploy("postgres").artifacts["ddl"]
        via_session = session.deploy("postgres").artifacts["ddl"]
        assert via_facade == via_session
        assert "CREATE TABLE" in via_facade

    def test_error_messages_preserved(self, domain):
        quarry = Quarry(*domain)
        quarry.add_requirement(build_revenue_requirement())
        with pytest.raises(QuarryError, match="already exists"):
            quarry.add_requirement(build_revenue_requirement())
        with pytest.raises(QuarryError, match="unknown requirement"):
            quarry.remove_requirement("IR9")
        with pytest.raises(QuarryError, match="unknown requirement"):
            quarry.partial_design("IR9")

    def test_facade_fronts_default_session(self, domain):
        quarry = Quarry(*domain)
        assert quarry.session.session == "default"
        # Default session uses the plain (unprefixed) collection names.
        assert quarry.repository.namespace == ""


class TestArtifactBus:
    def test_publish_logs_then_delivers_in_order(self):
        bus = ArtifactBus(MetadataRepository(), "default")
        seen = []
        bus.subscribe("topic", lambda e: seen.append(("first", e.sequence)))
        bus.subscribe("topic", lambda e: seen.append(("second", e.sequence)))
        bus.publish("topic", "k", {"n": 1}, producer="t")
        bus.publish("topic", "k", {"n": 2}, producer="t")
        assert seen == [
            ("first", 1), ("second", 1), ("first", 2), ("second", 2),
        ]

    def test_sequences_are_per_topic_positions_bus_wide(self):
        bus = ArtifactBus(MetadataRepository(), "default")
        a1 = bus.publish("a", "k", {}, producer="t")
        b1 = bus.publish("b", "k", {}, producer="t")
        a2 = bus.publish("a", "k", {}, producer="t")
        assert (a1.sequence, b1.sequence, a2.sequence) == (1, 1, 2)
        assert (a1.position, b1.position, a2.position) == (0, 1, 2)
        assert [e.position for e in bus.events("a")] == [0, 2]

    def test_log_is_persisted_and_resumed(self):
        repository = MetadataRepository()
        bus = ArtifactBus(repository, "default")
        bus.publish("topic", "k", {"n": 1}, producer="t")
        resumed = ArtifactBus(repository, "default")
        envelope = resumed.publish("topic", "k", {"n": 2}, producer="t")
        assert envelope.sequence == 2  # continues the persisted sequence
        assert [e.payload["n"] for e in resumed.events("topic")] == [1, 2]

    def test_rollback_drops_events_after_marker(self):
        bus = ArtifactBus(MetadataRepository(), "default")
        bus.publish("topic", "k", {"n": 1}, producer="t")
        marker = bus.marker()
        bus.publish("topic", "k", {"n": 2}, producer="t")
        bus.publish("other", "k", {"n": 3}, producer="t")
        assert bus.rollback(marker) == 2
        assert [e.payload["n"] for e in bus.events()] == [1]
        # Sequences rewind too: the next publish reuses the dropped slot.
        assert bus.publish("topic", "k", {}, producer="t").sequence == 2

    def test_replay_redelivers_logged_payloads(self):
        bus = ArtifactBus(MetadataRepository(), "default")
        bus.publish("topic", "k", {"n": 1}, producer="t", attachment=object())
        bus.publish("topic", "k", {"n": 2}, producer="t")
        replayed = []
        assert bus.replay("topic", replayed.append) == 2
        assert [e.payload["n"] for e in replayed] == [1, 2]
        assert all(e.attachment is None for e in replayed)

    def test_envelope_roundtrip_excludes_attachment(self):
        envelope = ArtifactEnvelope(
            topic="t", kind="k", session="s", sequence=1, position=0,
            producer="p", payload={"x": 1}, attachment=object(),
        )
        document = envelope.to_dict()
        assert "attachment" not in document
        restored = ArtifactEnvelope.from_dict(document)
        assert restored.kind == "k" and restored.payload == {"x": 1}
        assert restored.attachment is None


class TestDesignSession:
    def test_pipeline_publishes_on_every_topic(self, session):
        session.add_requirement(build_revenue_requirement())
        by_topic = {
            topic: len(session.bus.events(topic))
            for topic in (TOPIC_REQUIREMENTS, TOPIC_PARTIALS, TOPIC_UNIFIED)
        }
        assert by_topic == {
            TOPIC_REQUIREMENTS: 1, TOPIC_PARTIALS: 1, TOPIC_UNIFIED: 1,
        }

    def test_two_sessions_share_a_store_without_leakage(self, domain):
        repository = MetadataRepository()
        left = DesignSession(*domain, repository=repository, session="left")
        right = DesignSession(*domain, repository=repository, session="right")
        left.add_requirement(build_revenue_requirement())
        right.add_requirement(build_netprofit_requirement())
        # Same requirement id in both sessions: namespaces keep them apart.
        right.add_requirement(build_quantity_requirement("IR1"))
        assert [r.id for r in left.requirements()] == ["IR1"]
        assert [r.id for r in right.requirements()] == ["IR2", "IR1"]
        left_md, __ = left.unified_design()
        right_md, __ = right.unified_design()
        assert set(left_md.facts) == {"fact_table_revenue"}
        assert "fact_table_revenue" not in right_md.facts
        assert repository.session_names() == ["left", "right"]

    def test_session_repositories_are_namespaced_views(self, domain):
        repository = MetadataRepository()
        session = DesignSession(*domain, repository=repository, session="s1")
        session.add_requirement(build_revenue_requirement())
        assert session.repository.namespace == "s1"
        assert session.repository.requirement_ids() == ["IR1"]
        assert repository.requirement_ids() == []  # default view sees nothing
        assert "session::s1::requirements" in repository.store.collection_names()

    def test_replay_from_event_log_rebuilds_unified_design(self, session):
        session.add_requirement(build_revenue_requirement())
        session.add_requirement(build_netprofit_requirement())
        session.change_requirement(build_netprofit_requirement())
        session.remove_requirement("IR1")
        replayed_md, replayed_etl = session.replay_unified_design()
        md, etl = session.unified_design()
        assert xmd.dumps(replayed_md) == xmd.dumps(md)
        assert xlm.dumps(replayed_etl) == xlm.dumps(etl)

    def test_failed_operation_leaves_no_bus_events(self, session, domain):
        session.add_requirement(build_revenue_requirement())
        logged = session.repository.bus_event_count()
        ontology, __, __ = domain
        from repro.core.requirements import RequirementBuilder

        bogus = (
            RequirementBuilder("IRX", "refers to a property nobody has")
            .measure("m", "Lineitem_l_quantity", "SUM")
            .per("Ghost_property")
            .build()
        )
        with pytest.raises(QuarryError):
            session.add_requirement(bogus)
        assert session.repository.bus_event_count() == logged
        assert [r.id for r in session.requirements()] == ["IR1"]

    def test_deploy_publishes_deployment_envelope(self, session):
        session.add_requirement(build_revenue_requirement())
        session.deploy("postgres")
        events = session.bus.events(TOPIC_DEPLOYMENTS)
        assert len(events) == 1
        assert events[0].payload["platform"] == "postgres"
        assert "ddl" in events[0].payload["artifacts"]


class TestReports:
    def test_change_report_equality_and_repr(self, domain):
        first = Quarry(*domain)
        second = Quarry(*domain)
        left = first.add_requirement(build_revenue_requirement())
        right = second.add_requirement(build_revenue_requirement())
        assert left == right  # structural, across distinct instances
        assert left != ChangeReport(requirement_id="IR1", action="removed")
        assert repr(left) == "ChangeReport(added 'IR1', partial)"

    def test_change_report_to_dict_is_json_serialisable(self, domain):
        import json

        quarry = Quarry(*domain)
        report = quarry.add_requirement(build_revenue_requirement())
        document = json.loads(json.dumps(report.to_dict()))
        assert document["requirement_id"] == "IR1"
        assert document["action"] == "added"
        assert document["partial"]["facts"] == ["fact_table_revenue"]
        assert document["md_integration"]["decisions"]
        assert "cost_unified" in document["etl_consolidation"]

    def test_design_status_equality_and_repr(self, domain):
        first = Quarry(*domain)
        second = Quarry(*domain)
        first.add_requirement(build_revenue_requirement())
        second.add_requirement(build_revenue_requirement())
        assert first.status() == second.status()
        second.add_requirement(build_netprofit_requirement())
        assert first.status() != second.status()
        assert "fact_table_revenue" in repr(first.status())
        assert first.status().to_dict()["requirements"] == ["IR1"]
