"""Unit tests for the ETL operation taxonomy."""

import pytest

from repro.errors import EtlError
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Extraction,
    Join,
    Loader,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.etlmodel.ops import OPERATION_KINDS


class TestMetadata:
    def test_kinds_and_optypes(self):
        assert Datastore("d", table="t").kind == "Datastore"
        assert Datastore("d", table="t").optype == "TableInput"
        assert Loader("l", table="t").optype == "TableOutput"
        assert Selection("s").optype == "FilterRows"
        assert Aggregation("a").optype == "GroupBy"

    def test_arity(self):
        assert Datastore("d").arity == 0
        assert Selection("s").arity == 1
        assert Join("j").arity == 2
        assert UnionOp("u").arity == 2

    def test_operation_kind_registry_is_complete(self):
        assert set(OPERATION_KINDS) == {
            "Datastore", "Extraction", "Selection", "Projection", "Join",
            "Aggregation", "DerivedAttribute", "Rename", "Union",
            "Distinct", "SurrogateKey", "SCDUpdate", "Sort", "Loader",
        }

    def test_rename_produces_copy_with_new_name(self):
        original = Selection("a", predicate="x = 1")
        renamed = original.rename("b")
        assert renamed.name == "b"
        assert renamed.predicate == "x = 1"
        assert original.name == "a"


class TestSignatures:
    def test_signature_ignores_node_name(self):
        first = Selection("first", predicate="x = 1")
        second = Selection("second", predicate="x = 1")
        assert first.signature() == second.signature()

    def test_selection_signature_is_conjunct_order_insensitive(self):
        first = Selection("a", predicate="x = 1 and y = 2")
        second = Selection("b", predicate="y = 2 and x = 1")
        assert first.signature() == second.signature()

    def test_selection_signature_distinguishes_predicates(self):
        assert (
            Selection("a", predicate="x = 1").signature()
            != Selection("a", predicate="x = 2").signature()
        )

    def test_projection_signature_is_column_order_insensitive(self):
        assert (
            Projection("a", columns=("x", "y")).signature()
            == Projection("b", columns=("y", "x")).signature()
        )

    def test_join_signature(self):
        first = Join("a", left_keys=("x",), right_keys=("y",))
        second = Join("b", left_keys=("x",), right_keys=("y",))
        third = Join("c", left_keys=("x",), right_keys=("z",))
        assert first.signature() == second.signature()
        assert first.signature() != third.signature()

    def test_aggregation_signature(self):
        first = Aggregation(
            "a",
            group_by=("g1", "g2"),
            aggregates=(AggregationSpec("s", "SUM", "m"),),
        )
        second = Aggregation(
            "b",
            group_by=("g2", "g1"),
            aggregates=(AggregationSpec("s", "SUM", "m"),),
        )
        assert first.signature() == second.signature()

    def test_derive_signature_normalises_expression(self):
        first = DerivedAttribute("a", output="r", expression="x*(1 - d)")
        second = DerivedAttribute("b", output="r", expression="x * (1 - d)")
        assert first.signature() == second.signature()

    def test_datastore_signature_is_table(self):
        assert (
            Datastore("a", table="t").signature()
            == Datastore("b", table="t").signature()
        )

    def test_sort_signature_is_order_sensitive(self):
        assert Sort("a", keys=("x", "y")).signature() != Sort(
            "b", keys=("y", "x")
        ).signature()

    def test_surrogate_and_rename_signatures(self):
        assert (
            SurrogateKey("a", output="sk", business_keys=("x",)).signature()
            == SurrogateKey("b", output="sk", business_keys=("x",)).signature()
        )
        assert (
            Rename("a", renaming=(("x", "y"),)).signature()
            == Rename("b", renaming=(("x", "y"),)).signature()
        )

    def test_extraction_vs_projection_signatures_differ(self):
        assert Extraction("a", columns=("x",)).signature() != Projection(
            "b", columns=("x",)
        ).signature()


class TestValidation:
    def test_join_key_arity_mismatch_rejected(self):
        with pytest.raises(EtlError):
            Join("j", left_keys=("a", "b"), right_keys=("c",))

    def test_selection_conjunct_set(self):
        selection = Selection("s", predicate="x = 1 and y > 2")
        assert selection.conjunct_set() == frozenset({"x = 1", "y > 2"})
