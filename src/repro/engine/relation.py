"""In-memory relations: a typed schema plus a list of row dicts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.errors import EngineError
from repro.expressions.types import ScalarType, type_of_value


@dataclass
class Relation:
    """A bag of rows under an ordered attribute schema."""

    schema: Dict[str, ScalarType]
    rows: List[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    def attribute_names(self) -> List[str]:
        return list(self.schema)

    def append(self, row: dict) -> None:
        """Append a row after checking attributes and value types."""
        self.check_row(row)
        self.rows.append(row)

    def extend(self, rows) -> None:
        for row in rows:
            self.append(row)

    def check_row(self, row: dict) -> None:
        """Validate a row against the schema.

        Every schema attribute must be present; extra attributes and
        type mismatches (except NULL) are errors.
        """
        extra = set(row) - set(self.schema)
        if extra:
            raise EngineError(f"row has unknown attributes {sorted(extra)}")
        for name, expected in self.schema.items():
            if name not in row:
                raise EngineError(f"row is missing attribute {name!r}")
            value = row[name]
            if value is None:
                continue
            actual = type_of_value(value)
            if actual is expected:
                continue
            if expected is ScalarType.DECIMAL and actual is ScalarType.INTEGER:
                continue  # integers are acceptable decimals
            raise EngineError(
                f"attribute {name!r}: expected {expected}, got {actual} "
                f"({value!r})"
            )

    def project(self, columns: List[str]) -> "Relation":
        """A new relation with only the given columns (in given order)."""
        missing = [column for column in columns if column not in self.schema]
        if missing:
            raise EngineError(f"cannot project unknown columns {missing}")
        schema = {column: self.schema[column] for column in columns}
        rows = [{column: row[column] for column in columns} for row in self.rows]
        return Relation(schema=schema, rows=rows)

    def distinct(self) -> "Relation":
        """A new relation with duplicate rows removed (order-preserving)."""
        from repro.engine.columnar import unhashable_key_error

        seen = set()
        unique: List[dict] = []
        columns = self.attribute_names()
        try:
            for row in self.rows:
                key = tuple(row[column] for column in columns)
                if key in seen:
                    continue
                seen.add(key)
                unique.append(row)
        except TypeError as exc:
            named = [
                (column, [row[column] for row in self.rows])
                for column in columns
            ]
            raise unhashable_key_error("distinct", named, exc) from exc
        return Relation(schema=dict(self.schema), rows=unique)

    def sorted_by(self, keys: List[str], descending: bool = False) -> "Relation":
        """A new relation sorted by the given keys (NULLs first)."""
        missing = [key for key in keys if key not in self.schema]
        if missing:
            raise EngineError(f"cannot sort by unknown columns {missing}")

        def sort_key(row):
            return tuple(
                (row[key] is not None, row[key]) for key in keys
            )

        ordered = sorted(self.rows, key=sort_key, reverse=descending)
        return Relation(schema=dict(self.schema), rows=ordered)

    def head(self, count: int) -> "Relation":
        return Relation(schema=dict(self.schema), rows=self.rows[:count])
