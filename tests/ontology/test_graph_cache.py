"""Caching and invalidation behaviour of the ontology views.

The graph memoises adjacency and to-one closures per ontology
generation; the reasoner memoises the subsumption closure.  These tests
pin the two properties the design pipeline depends on:

* the cheap path is actually taken (hits counted, BFS not re-run),
* a mutation of the ontology — new concept, new property, changed
  multiplicity, re-parented concept — is never answered from stale
  caches.
"""

import pytest

from repro.expressions import ScalarType
from repro.ontology import OntologyBuilder, OntologyGraph, Reasoner
from repro.ontology.model import Concept, Multiplicity, ObjectProperty


def chain_ontology():
    """A -> B -> C to-one chain with a dangling D."""
    return (
        OntologyBuilder("chain")
        .concept("A")
        .concept("B")
        .concept("C")
        .concept("D")
        .relationship("a_b", "A", "B", "N-1")
        .relationship("b_c", "B", "C", "N-1")
        .build()
    )


def wide_ontology(branches: int = 30):
    """A hub with one short target chain and many irrelevant branches.

    ``Hub -> T1 -> T2`` plus ``branches`` to-one chains of length 2
    hanging off the hub; a full closure visits every branch, while a
    target-directed query for ``T1`` must not.
    """
    builder = OntologyBuilder("wide").concept("Hub").concept("T1").concept("T2")
    builder.relationship("hub_t1", "Hub", "T1", "N-1")
    builder.relationship("t1_t2", "T1", "T2", "N-1")
    for index in range(branches):
        builder.concept(f"B{index}a").concept(f"B{index}b")
        builder.relationship(f"hub_b{index}", "Hub", f"B{index}a", "N-1")
        builder.relationship(f"b{index}_b{index}", f"B{index}a", f"B{index}b", "N-1")
    return builder.build()


class TestClosureCache:
    def test_closure_computed_once(self):
        graph = OntologyGraph(chain_ontology())
        first = graph.to_one_closure("A")
        again = graph.to_one_closure("A")
        assert first == again
        assert graph.stats["closure_computes"] == 1
        assert graph.stats["closure_hits"] == 1

    def test_returned_dict_is_a_copy(self):
        graph = OntologyGraph(chain_ontology())
        graph.to_one_closure("A").clear()  # caller mutation ...
        assert set(graph.to_one_closure("A")) == {"B", "C"}  # ... no poison
        assert graph.stats["closure_computes"] == 1

    def test_use_cache_false_bypasses_memo(self):
        graph = OntologyGraph(chain_ontology())
        graph.to_one_closure("A")
        uncached = graph.to_one_closure("A", use_cache=False)
        assert uncached == graph.to_one_closure("A")
        assert graph.stats["closure_computes"] == 2

    def test_unknown_concept_still_raises(self):
        from repro.errors import UnknownConceptError

        graph = OntologyGraph(chain_ontology())
        with pytest.raises(UnknownConceptError):
            graph.to_one_closure("ghost")


class TestTargetDirectedPath:
    def test_path_found_without_full_closure(self):
        graph = OntologyGraph(wide_ontology())
        path = graph.to_one_path("Hub", "T1")
        assert path is not None and len(path) == 1
        # The hub's neighbours are discovered from one dequeue of the
        # source itself; a closure BFS would dequeue every branch node.
        assert graph.stats["bfs_expansions"] == 1
        assert graph.stats["closure_computes"] == 0

    def test_cached_closure_answers_path_queries(self):
        graph = OntologyGraph(chain_ontology())
        graph.to_one_closure("A")
        assert graph.to_one_path("A", "C").concepts() == ["A", "B", "C"]
        assert graph.stats["closure_hits"] == 1

    def test_unreachable_and_trivial_paths(self):
        graph = OntologyGraph(chain_ontology())
        assert graph.to_one_path("A", "D") is None
        assert len(graph.to_one_path("A", "A")) == 0


class TestGraphInvalidation:
    def test_new_property_extends_closure(self):
        ontology = chain_ontology()
        graph = OntologyGraph(ontology)
        assert set(graph.to_one_closure("A")) == {"B", "C"}
        ontology.add_object_property(
            ObjectProperty("c_d", "C", "D", Multiplicity.MANY_TO_ONE)
        )
        assert set(graph.to_one_closure("A")) == {"B", "C", "D"}

    def test_new_concept_is_visible(self):
        ontology = chain_ontology()
        graph = OntologyGraph(ontology)
        graph.to_one_closure("A")
        ontology.add_concept(Concept("E"))
        assert graph.to_one_closure("E") == {}
        assert graph.fan_in("E") == 0

    def test_multiplicity_change_drops_cached_closure(self):
        ontology = chain_ontology()
        graph = OntologyGraph(ontology)
        assert set(graph.to_one_closure("A")) == {"B", "C"}
        ontology.replace_object_property(
            ObjectProperty("b_c", "B", "C", Multiplicity.MANY_TO_MANY)
        )
        assert set(graph.to_one_closure("A")) == {"B"}
        assert graph.to_one_path("A", "C") is None

    def test_path_queries_see_mutations(self):
        ontology = chain_ontology()
        graph = OntologyGraph(ontology)
        assert graph.to_one_path("A", "D") is None
        ontology.add_object_property(
            ObjectProperty("a_d", "A", "D", Multiplicity.MANY_TO_ONE)
        )
        assert len(graph.to_one_path("A", "D")) == 1
        assert graph.shortest_path("D", "C") is not None


class TestReasonerInvalidation:
    def test_new_concept_joins_taxonomy(self):
        ontology = (
            OntologyBuilder("tax")
            .concept("Thing")
            .concept("Animal", parent="Thing")
            .build()
        )
        reasoner = Reasoner(ontology)
        assert reasoner.descendants("Thing") == ["Animal"]
        ontology.add_concept(Concept("Dog", parent="Animal"))
        assert reasoner.is_subconcept("Dog", "Thing")
        assert set(reasoner.descendants("Thing")) == {"Animal", "Dog"}

    def test_reparenting_updates_subsumption(self):
        ontology = (
            OntologyBuilder("tax")
            .concept("Thing")
            .concept("Plant", parent="Thing")
            .concept("Animal", parent="Thing")
            .concept("Dog", parent="Animal")
            .build()
        )
        reasoner = Reasoner(ontology)
        assert reasoner.is_subconcept("Dog", "Animal")
        ontology.replace_concept(Concept("Dog", parent="Plant"))
        assert not reasoner.is_subconcept("Dog", "Animal")
        assert reasoner.ancestors("Dog") == ["Plant", "Thing"]
        assert reasoner.descendants("Animal") == []

    def test_inherited_attributes_follow_mutation(self):
        ontology = (
            OntologyBuilder("tax")
            .concept("Thing")
            .concept("Animal", parent="Thing")
            .attribute("Thing_name", "Thing", ScalarType.STRING)
            .build()
        )
        reasoner = Reasoner(ontology)
        assert [p.id for p in reasoner.datatype_properties("Animal")] == [
            "Thing_name"
        ]
        ontology.replace_concept(Concept("Animal", parent=None))
        assert list(reasoner.datatype_properties("Animal")) == []
