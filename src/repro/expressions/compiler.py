"""Compilation of expression ASTs to Python closures.

The tree-walking :func:`repro.expressions.evaluate` pays its dispatch
cost (isinstance chains, per-node function calls) on *every row*.  This
module pays it once: an AST is lowered to generated Python source —
straight-line statements with explicit temporaries, preserving the
interpreter's evaluation order, short-circuiting and NULL semantics —
and compiled with :func:`compile`.  All value-level semantics (Kleene
logic, NULL propagation, arithmetic/comparison typing errors, function
dispatch) are delegated to the same helpers the interpreter uses, so a
compiled expression is observationally identical to ``evaluate(tree,
row)``, error messages included.

Every expression is compiled in two forms:

* ``row_fn(row)`` — takes a row dict, exactly like the interpreter
  (missing attributes raise the interpreter's :class:`EvaluationError`);
* ``column_fn(v0, v1, ...)`` — takes the values of the referenced
  attributes positionally (order given by ``attributes``), which lets a
  columnar engine evaluate a whole column batch with
  ``map(column_fn, *columns)`` — no per-row dicts at all.

A module-level LRU cache keyed by source text means repeated predicates
and derivations — across nodes, flows and runs — are parsed and
compiled exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.errors import EvaluationError
from repro.expressions import ast
from repro.expressions.evaluator import (
    _arithmetic,
    _as_bool,
    _compare,
    apply_function,
    attribute_value,
    in_values,
    unary_minus,
    unary_not,
)
from repro.expressions.parser import parse

#: Literal values safe to embed in generated source via ``repr`` (their
#: reprs round-trip exactly).  Anything else goes through the constant
#: pool.
_INLINE_LITERALS = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class CompiledExpression:
    """A compiled expression: source text, AST, and the two closures."""

    text: str
    tree: ast.Expression
    #: Referenced attributes in first-evaluation order; also the
    #: positional parameter order of ``column_fn``.
    attributes: Tuple[str, ...]
    row_fn: Callable
    column_fn: Callable
    row_source: str
    column_source: str

    def __call__(self, row: dict):
        return self.row_fn(row)

    def __reduce__(self):
        # Closures over exec'd code cannot pickle; ship the source text
        # and recompile on arrival.  Unpickling goes through
        # :func:`compile_expression`, so each receiving process pays the
        # compile once and its LRU serves every later arrival.
        return (compile_expression, (self.text,))


class _CodeGen:
    """Lowers one AST to the body of a Python function.

    ``access`` maps an attribute name to the expression text that reads
    it (a dict lookup in row mode, a parameter name in column mode).
    """

    def __init__(self, access) -> None:
        self._access = access
        self._lines: List[str] = []
        self._counter = 0
        self.constants: List[object] = []

    def generate(self, tree: ast.Expression, name: str, params: str) -> str:
        result = self._emit(tree, 1)
        self._lines.append(f"    return {result}")
        header = f"def {name}({params}):"
        return "\n".join([header] + self._lines)

    # -- plumbing ----------------------------------------------------------

    def _fresh(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def _line(self, depth: int, text: str) -> None:
        self._lines.append("    " * depth + text)

    def _constant(self, value) -> str:
        self.constants.append(value)
        return f"_consts[{len(self.constants) - 1}]"

    # -- node lowering -----------------------------------------------------

    def _emit(self, node: ast.Expression, depth: int) -> str:
        """Emit statements computing ``node``; returns the result atom.

        The returned text is either a bound temporary or a literal, so
        callers may mention it more than once without re-evaluation.
        """
        if isinstance(node, ast.Literal):
            if type(node.value) in _INLINE_LITERALS:
                return repr(node.value)
            return self._constant(node.value)
        if isinstance(node, ast.Attribute):
            out = self._fresh()
            self._line(depth, f"{out} = {self._access(node.name)}")
            return out
        if isinstance(node, ast.UnaryOp):
            value = self._emit(node.operand, depth)
            out = self._fresh()
            helper = "_neg" if node.operator == "-" else "_not"
            if node.operator not in ("-", "not"):
                raise EvaluationError(
                    f"unknown unary operator {node.operator!r}"
                )
            self._line(depth, f"{out} = {helper}({value})")
            return out
        if isinstance(node, ast.BinaryOp):
            return self._emit_binary(node, depth)
        if isinstance(node, ast.FunctionCall):
            values = [self._emit(arg, depth) for arg in node.arguments]
            out = self._fresh()
            self._line(
                depth, f"{out} = _call({node.name!r}, [{', '.join(values)}])"
            )
            return out
        if isinstance(node, ast.ValueList):
            items = [self._emit(item, depth) for item in node.items]
            out = self._fresh()
            self._line(depth, f"{out} = [{', '.join(items)}]")
            return out
        raise EvaluationError(f"cannot compile node {node!r}")

    def _emit_binary(self, node: ast.BinaryOp, depth: int) -> str:
        operator = node.operator
        if operator in ("and", "or"):
            return self._emit_kleene(node, depth)
        left = self._emit(node.left, depth)
        if operator == "in":
            # The interpreter evaluates the value list after the left
            # operand, before the NULL check on the left — preserved here.
            values = self._emit(node.right, depth)
            out = self._fresh()
            self._line(depth, f"{out} = _in({left}, {values})")
            return out
        right = self._emit(node.right, depth)
        out = self._fresh()
        # The common numeric case runs inline; anything else (strings,
        # booleans, zero divisors, type errors) falls back to the
        # interpreter's helper, which owns the exact semantics and
        # error messages.
        if operator in ("+", "-", "*", "/", "%"):
            helper = "_arith"
            guard = f"type({left}) in _num and type({right}) in _num"
            if operator in ("/", "%"):
                guard += f" and {right} != 0"
            fast = f"{left} {operator} {right}"
        elif operator in ("=", "!=", "<", "<=", ">", ">="):
            helper = "_cmp"
            guard = (
                f"(type({left}) is type({right}) or "
                f"(type({left}) in _num and type({right}) in _num))"
            )
            python_operator = {"=": "==", "!=": "!="}.get(operator, operator)
            fast = f"{left} {python_operator} {right}"
        else:
            raise EvaluationError(f"unknown binary operator {operator!r}")
        none_test = self._none_test(left, right)
        call = (
            f"({fast}) if {guard} else {helper}({operator!r}, {left}, {right})"
        )
        if none_test == "True":
            self._line(depth, f"{out} = None")
        elif none_test == "False":
            self._line(depth, f"{out} = {call}")
        else:
            self._line(depth, f"{out} = None if {none_test} else {call}")
        return out

    @staticmethod
    def _nullable(atom: str) -> bool:
        """Whether an atom can be NULL at runtime.

        Inline literal reprs are statically non-NULL (a NULL literal is
        rendered as ``None`` itself); only temporaries and constant-pool
        references need a runtime check.  Folding the check away also
        avoids ``is``-with-literal comparisons in generated code.
        """
        return atom.startswith("_")

    def _none_test(self, *atoms: str) -> str:
        if any(atom == "None" for atom in atoms):
            return "True"
        checks = [f"{atom} is None" for atom in atoms if self._nullable(atom)]
        if not checks:
            return "False"
        test = " or ".join(checks)
        return f"({test})" if len(checks) > 1 else test

    def _emit_kleene(self, node: ast.BinaryOp, depth: int) -> str:
        """Three-valued AND/OR with the interpreter's short-circuiting."""
        out = self._fresh()
        left = self._emit(node.left, depth)
        short, exhausted = (
            ("False", "True") if node.operator == "and" else ("True", "False")
        )
        negate = "not " if node.operator == "and" else ""

        def test(atom: str) -> str:
            if atom == "None":
                return "False"  # a NULL operand never short-circuits
            if self._nullable(atom):
                return f"{atom} is not None and {negate}_bool({atom})"
            return f"{negate}_bool({atom})"

        self._line(depth, f"if {test(left)}:")
        self._line(depth + 1, f"{out} = {short}")
        self._line(depth, "else:")
        right = self._emit(node.right, depth + 1)
        self._line(depth + 1, f"if {test(right)}:")
        self._line(depth + 2, f"{out} = {short}")
        none_test = self._none_test(left, right)
        self._line(depth + 1, f"elif {none_test}:")
        self._line(depth + 2, f"{out} = None")
        self._line(depth + 1, "else:")
        self._line(depth + 2, f"{out} = {exhausted}")
        return out


def _referenced_attributes(node: ast.Expression, seen: List[str]) -> None:
    """Collect attribute names in evaluation (depth-first, left-first)
    order, deduplicated on first use."""
    if isinstance(node, ast.Attribute):
        if node.name not in seen:
            seen.append(node.name)
    elif isinstance(node, ast.UnaryOp):
        _referenced_attributes(node.operand, seen)
    elif isinstance(node, ast.BinaryOp):
        _referenced_attributes(node.left, seen)
        _referenced_attributes(node.right, seen)
    elif isinstance(node, (ast.FunctionCall, ast.ValueList)):
        for child in getattr(node, "arguments", getattr(node, "items", ())):
            _referenced_attributes(child, seen)


def _runtime_namespace(constants: List[object]) -> Dict[str, object]:
    return {
        "_arith": _arithmetic,
        "_cmp": _compare,
        "_bool": _as_bool,
        "_neg": unary_minus,
        "_not": unary_not,
        "_call": apply_function,
        "_in": in_values,
        "_attr": attribute_value,
        "_num": frozenset({int, float}),
        "type": type,
        "_consts": tuple(constants),
        "__builtins__": {},
    }


def _compile_body(source: str, name: str, constants: List[object]) -> Callable:
    namespace = _runtime_namespace(constants)
    exec(compile(source, f"<compiled {name}>", "exec"), namespace)
    return namespace[name]


def compile_tree(tree: ast.Expression, text: str = "") -> CompiledExpression:
    """Compile a parsed expression tree to its two closures."""
    attributes: List[str] = []
    _referenced_attributes(tree, attributes)

    row_gen = _CodeGen(lambda name: f"_attr(row, {name!r})")
    row_source = row_gen.generate(tree, "_compiled_row", "row")
    row_fn = _compile_body(row_source, "_compiled_row", row_gen.constants)

    params = {name: f"_a{index}" for index, name in enumerate(attributes)}
    column_gen = _CodeGen(lambda name: params[name])
    column_source = column_gen.generate(
        tree, "_compiled_columns", ", ".join(params.values())
    )
    column_fn = _compile_body(
        column_source, "_compiled_columns", column_gen.constants
    )

    return CompiledExpression(
        text=text or str(tree),
        tree=tree,
        attributes=tuple(attributes),
        row_fn=row_fn,
        column_fn=column_fn,
        row_source=row_source,
        column_source=column_source,
    )


@lru_cache(maxsize=1024)
def compile_expression(text: str) -> CompiledExpression:
    """Parse and compile an expression, memoised on its source text.

    Parse errors propagate exactly as from :func:`parse` (and are not
    cached).  The returned object is immutable and safely shared.
    """
    return compile_tree(parse(text), text)
