"""Unit tests for the expression type system."""

import datetime

import pytest

from repro.errors import TypeCheckError
from repro.expressions import ScalarType, infer_type, parse
from repro.expressions.types import (
    comparable,
    function_result_type,
    numeric_join,
    type_of_value,
)

SCHEMA = {
    "qty": ScalarType.INTEGER,
    "price": ScalarType.DECIMAL,
    "name": ScalarType.STRING,
    "flag": ScalarType.BOOLEAN,
    "shipped": ScalarType.DATE,
}


def infer(text):
    return infer_type(parse(text), SCHEMA)


class TestValueTypes:
    def test_python_value_types(self):
        assert type_of_value(1) is ScalarType.INTEGER
        assert type_of_value(1.5) is ScalarType.DECIMAL
        assert type_of_value("x") is ScalarType.STRING
        assert type_of_value(True) is ScalarType.BOOLEAN
        assert type_of_value(datetime.date(2000, 1, 1)) is ScalarType.DATE
        assert type_of_value(None) is None

    def test_unsupported_value_raises(self):
        with pytest.raises(TypeCheckError):
            type_of_value(object())

    def test_numeric_join(self):
        assert numeric_join(ScalarType.INTEGER, ScalarType.INTEGER) is ScalarType.INTEGER
        assert numeric_join(ScalarType.INTEGER, ScalarType.DECIMAL) is ScalarType.DECIMAL

    def test_numeric_join_rejects_strings(self):
        with pytest.raises(TypeCheckError):
            numeric_join(ScalarType.STRING, ScalarType.INTEGER)

    def test_comparable(self):
        assert comparable(ScalarType.INTEGER, ScalarType.DECIMAL)
        assert comparable(ScalarType.STRING, ScalarType.STRING)
        assert not comparable(ScalarType.STRING, ScalarType.INTEGER)


class TestInference:
    def test_integer_arithmetic_stays_integer(self):
        assert infer("qty + 1") is ScalarType.INTEGER

    def test_mixed_arithmetic_widens(self):
        assert infer("qty * price") is ScalarType.DECIMAL

    def test_comparison_is_boolean(self):
        assert infer("price > 10") is ScalarType.BOOLEAN

    def test_logic_is_boolean(self):
        assert infer("flag and price > 1") is ScalarType.BOOLEAN

    def test_string_concat_via_plus(self):
        assert infer("name + 'x'") is ScalarType.STRING

    def test_in_is_boolean(self):
        assert infer("name in ('a', 'b')") is ScalarType.BOOLEAN

    def test_unary_minus_keeps_type(self):
        assert infer("-qty") is ScalarType.INTEGER

    def test_date_function(self):
        assert infer("year(shipped)") is ScalarType.INTEGER

    def test_null_literal_has_no_type(self):
        assert infer("null") is None

    def test_null_in_arithmetic_defaults_decimal(self):
        assert infer("null + 1") is ScalarType.DECIMAL


class TestInferenceErrors:
    def test_unknown_attribute(self):
        with pytest.raises(TypeCheckError):
            infer("nope + 1")

    def test_arithmetic_on_boolean(self):
        with pytest.raises(TypeCheckError):
            infer("flag + 1")

    def test_comparing_string_to_number(self):
        with pytest.raises(TypeCheckError):
            infer("name < 3")

    def test_logic_on_numbers(self):
        with pytest.raises(TypeCheckError):
            infer("qty and flag")

    def test_not_on_string(self):
        with pytest.raises(TypeCheckError):
            infer("not name")

    def test_string_plus_number(self):
        with pytest.raises(TypeCheckError):
            infer("name + qty")


class TestFunctionSignatures:
    def test_known_function(self):
        assert (
            function_result_type("upper", [ScalarType.STRING]) is ScalarType.STRING
        )

    def test_case_insensitive_name(self):
        assert (
            function_result_type("UPPER", [ScalarType.STRING]) is ScalarType.STRING
        )

    def test_unknown_function(self):
        with pytest.raises(TypeCheckError):
            function_result_type("nope", [])

    def test_wrong_arity(self):
        with pytest.raises(TypeCheckError):
            function_result_type("upper", [ScalarType.STRING, ScalarType.STRING])

    def test_wrong_argument_type(self):
        with pytest.raises(TypeCheckError):
            function_result_type("year", [ScalarType.STRING])

    def test_numeric_slot_accepts_both_numerics(self):
        assert function_result_type("abs", [ScalarType.INTEGER]) is ScalarType.INTEGER
        assert function_result_type("abs", [ScalarType.DECIMAL]) is ScalarType.DECIMAL

    def test_numeric_slot_rejects_string(self):
        with pytest.raises(TypeCheckError):
            function_result_type("abs", [ScalarType.STRING])

    def test_null_argument_satisfies_any_slot(self):
        assert function_result_type("year", [None]) is ScalarType.INTEGER

    def test_coalesce_takes_type_of_first_typed_argument(self):
        assert (
            function_result_type("coalesce", [None, ScalarType.INTEGER])
            is ScalarType.INTEGER
        )
