"""Unit tests for the ETL flow DAG."""

import pytest

from repro.errors import EtlError, FlowValidationError, UnknownOperationError
from repro.etlmodel import (
    Datastore,
    EtlFlow,
    Extraction,
    Join,
    Loader,
    Selection,
)


def linear_flow():
    flow = EtlFlow("linear")
    flow.chain(
        Datastore("src", table="t", columns=("a", "b")),
        Selection("filter", predicate="a > 1"),
        Extraction("extract", columns=("a",)),
        Loader("load", table="out"),
    )
    return flow


class TestConstruction:
    def test_duplicate_node_rejected(self):
        flow = EtlFlow("f")
        flow.add(Selection("s"))
        with pytest.raises(EtlError):
            flow.add(Selection("s"))

    def test_edge_endpoints_must_exist(self):
        flow = EtlFlow("f")
        flow.add(Selection("s"))
        with pytest.raises(UnknownOperationError):
            flow.connect("s", "missing")

    def test_duplicate_edge_rejected(self):
        flow = EtlFlow("f")
        flow.add(Selection("a"))
        flow.add(Selection("b"))
        flow.connect("a", "b")
        with pytest.raises(EtlError):
            flow.connect("a", "b")

    def test_chain_connects_linearly(self):
        flow = linear_flow()
        assert flow.inputs("filter") == ["src"]
        assert flow.inputs("extract") == ["filter"]
        assert len(flow) == 4

    def test_chain_requires_an_operation(self):
        with pytest.raises(EtlError):
            EtlFlow("f").chain()

    def test_node_lookup(self):
        flow = linear_flow()
        assert flow.node("filter").predicate == "a > 1"
        with pytest.raises(UnknownOperationError):
            flow.node("nope")
        assert flow.has_node("filter")
        assert not flow.has_node("nope")


class TestTopology:
    def test_sources_and_sinks(self, revenue_flow):
        assert set(revenue_flow.sources()) == {
            "DATASTORE_lineitem", "DATASTORE_orders",
            "DATASTORE_customer", "DATASTORE_nation",
        }
        assert revenue_flow.sinks() == ["LOAD_fact_revenue"]

    def test_topological_order_respects_edges(self, revenue_flow):
        order = revenue_flow.topological_order()
        position = {name: index for index, name in enumerate(order)}
        for edge in revenue_flow.edges():
            assert position[edge.source] < position[edge.target]

    def test_cycle_detected(self):
        flow = EtlFlow("cyclic")
        flow.add(Selection("a"))
        flow.add(Selection("b"))
        flow.connect("a", "b")
        flow.connect("b", "a")
        with pytest.raises(FlowValidationError):
            flow.topological_order()

    def test_join_input_order_is_edge_order(self, revenue_flow):
        assert revenue_flow.inputs("JOIN_lineitem_orders") == [
            "EXTRACTION_lineitem",
            "EXTRACTION_orders",
        ]

    def test_upstream_downstream(self, revenue_flow):
        upstream = revenue_flow.upstream("SELECTION_nation")
        assert "DATASTORE_lineitem" in upstream
        assert "LOAD_fact_revenue" not in upstream
        downstream = revenue_flow.downstream("EXTRACTION_nation")
        assert "LOAD_fact_revenue" in downstream
        assert "DATASTORE_orders" not in downstream

    def test_path_from_source_stops_at_join(self, revenue_flow):
        path = revenue_flow.path_from_source("LOAD_fact_revenue")
        assert path == [
            "JOIN_customer_nation",
            "SELECTION_nation",
            "DERIVE_revenue",
            "AGG_revenue",
            "LOAD_fact_revenue",
        ]


class TestSurgery:
    def test_remove_unary_node_splices(self):
        flow = linear_flow()
        flow.remove_node("filter")
        assert flow.inputs("extract") == ["src"]
        assert not flow.has_node("filter")

    def test_remove_source_drops_edges(self):
        flow = linear_flow()
        flow.remove_node("src")
        assert flow.inputs("filter") == []

    def test_replace_node_keeps_name(self):
        flow = linear_flow()
        flow.replace_node("filter", Selection("filter", predicate="b = 2"))
        assert flow.node("filter").predicate == "b = 2"
        with pytest.raises(EtlError):
            flow.replace_node("filter", Selection("renamed"))

    def test_insert_between(self):
        flow = linear_flow()
        flow.insert_between("src", "filter", Selection("early", predicate="b = 1"))
        assert flow.inputs("filter") == ["early"]
        assert flow.inputs("early") == ["src"]

    def test_insert_between_requires_edge(self):
        flow = linear_flow()
        with pytest.raises(EtlError):
            flow.insert_between("src", "load", Selection("x"))

    def test_insert_between_preserves_join_input_slot(self, revenue_flow):
        revenue_flow.insert_between(
            "EXTRACTION_orders",
            "JOIN_lineitem_orders",
            Selection("open_only", predicate="o_custkey > 0"),
        )
        assert revenue_flow.inputs("JOIN_lineitem_orders") == [
            "EXTRACTION_lineitem",
            "open_only",
        ]

    def test_swap_with_predecessor(self):
        flow = linear_flow()
        flow.swap_with_predecessor("extract")
        order = flow.topological_order()
        assert order.index("extract") < order.index("filter")
        assert flow.inputs("extract") == ["src"]
        assert flow.inputs("filter") == ["extract"]
        assert flow.inputs("load") == ["filter"]

    def test_swap_requires_unary_shape(self, revenue_flow):
        with pytest.raises(EtlError):
            revenue_flow.swap_with_predecessor("JOIN_lineitem_orders")

    def test_copy_is_independent(self, revenue_flow):
        clone = revenue_flow.copy("clone")
        clone.remove_node("SELECTION_nation")
        assert revenue_flow.has_node("SELECTION_nation")
        assert clone.name == "clone"
        assert clone.requirements == revenue_flow.requirements


class TestGraft:
    def test_graft_unifies_mapped_nodes(self):
        target = linear_flow()
        other = EtlFlow("other", requirements={"IR2"})
        other.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Selection("other_filter", predicate="b = 2"),
            Loader("other_load", table="out2"),
        )
        mapping = target.graft(other, at={"src": "src"})
        assert mapping["src"] == "src"
        assert target.has_node("other_filter")
        assert target.inputs("other_filter") == ["src"]
        assert "IR2" in target.requirements

    def test_graft_renames_collisions(self):
        target = linear_flow()
        other = EtlFlow("other")
        other.chain(
            Datastore("src2", table="t2", columns=("x",)),
            Selection("filter", predicate="x = 1"),  # collides with target
            Loader("load2", table="o"),
        )
        mapping = target.graft(other, at={})
        assert mapping["filter"] == "filter_2"
        assert target.node("filter_2").predicate == "x = 1"


class TestValidation:
    def test_valid_flow_passes(self, revenue_flow):
        assert revenue_flow.validate() == []
        revenue_flow.check()

    def test_arity_violation_detected(self):
        flow = EtlFlow("bad")
        flow.add(Datastore("src", table="t", columns=("a",)))
        flow.add(Join("join"))
        flow.add(Loader("load", table="o"))
        flow.connect("src", "join")
        flow.connect("join", "load")
        problems = flow.validate()
        assert any("expects 2 input" in problem for problem in problems)

    def test_dead_end_detected(self):
        flow = EtlFlow("bad")
        flow.add(Datastore("src", table="t", columns=("a",)))
        flow.add(Selection("s", predicate="a = 1"))
        flow.connect("src", "s")
        problems = flow.validate()
        assert any("dead end" in problem for problem in problems)

    def test_check_raises(self):
        flow = EtlFlow("bad")
        flow.add(Selection("s"))
        with pytest.raises(FlowValidationError):
            flow.check()
