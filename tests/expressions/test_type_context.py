"""TypeCheckError location context (node name + expression text)."""

import pytest

from repro.errors import TypeCheckError
from repro.expressions import parse
from repro.expressions.types import ScalarType, infer_type


def test_unknown_attribute_carries_node_and_expression():
    with pytest.raises(TypeCheckError) as excinfo:
        infer_type(parse("x + missing"), {"x": ScalarType.INTEGER}, node="derive_1")
    error = excinfo.value
    assert error.node == "derive_1"
    assert error.expression is not None and "missing" in error.expression
    assert error.bare_message == "unknown attribute: 'missing'"
    assert "(at node 'derive_1')" in str(error)


def test_unknown_function_carries_context_too():
    with pytest.raises(TypeCheckError) as excinfo:
        infer_type(parse("frobnicate(x)"), {"x": ScalarType.INTEGER}, node="n")
    assert excinfo.value.node == "n"


def test_without_node_the_error_is_bare():
    with pytest.raises(TypeCheckError) as excinfo:
        infer_type(parse("missing"), {})
    error = excinfo.value
    assert error.node is None
    assert str(error) == error.bare_message


def test_inner_context_is_not_overwritten():
    inner = TypeCheckError("boom", node="inner", expression="a + b")
    try:
        try:
            raise inner
        except TypeCheckError as exc:
            # mimics infer_type's wrapper: pre-located errors pass through
            if exc.node is not None:
                raise
            raise AssertionError("should have re-raised") from None
    except TypeCheckError as caught:
        assert caught is inner


def test_success_path_ignores_node():
    result = infer_type(parse("x + 1"), {"x": ScalarType.INTEGER}, node="n")
    assert result is ScalarType.INTEGER
