"""Business-vocabulary resolution.

"A domain ontology can be additionally enriched with the business level
vocabulary, to enable non-expert users to express their analytical
needs" (§2.1).  Labels on ontology elements *are* that vocabulary; this
module resolves free-text terms to ontology ids, reporting ambiguities
instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import RequirementError
from repro.ontology.model import Ontology


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one vocabulary term."""

    term: str
    element_id: str
    kind: str  # concept | attribute | relationship


class Vocabulary:
    """Resolves business terms against one ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology

    def resolve(self, term: str) -> Resolution:
        """Resolve a term to exactly one ontology element.

        Raises :class:`RequirementError` when the term is unknown or
        ambiguous (listing the candidates so a UI can ask the user).
        """
        matches = self._ontology.find_by_label(term)
        if not matches:
            suggestions = self.suggest(term)
            hint = f"; did you mean one of {suggestions}?" if suggestions else ""
            raise RequirementError(f"unknown term {term!r}{hint}")
        if len(matches) > 1:
            raise RequirementError(
                f"ambiguous term {term!r}: candidates {sorted(matches)}"
            )
        return Resolution(
            term=term, element_id=matches[0], kind=self._kind(matches[0])
        )

    def resolve_all(self, terms: List[str]) -> List[Resolution]:
        return [self.resolve(term) for term in terms]

    def try_resolve(self, term: str) -> Optional[Resolution]:
        """Like :meth:`resolve` but returns None instead of raising."""
        try:
            return self.resolve(term)
        except RequirementError:
            return None

    def suggest(self, term: str, limit: int = 3) -> List[str]:
        """Close-match suggestions for a misspelled term."""
        import difflib

        labels = []
        for concept in self._ontology.concepts():
            labels.append(concept.display_name)
        for prop in self._ontology.datatype_properties():
            labels.append(prop.display_name)
        return difflib.get_close_matches(term, labels, n=limit, cutoff=0.6)

    def _kind(self, element_id: str) -> str:
        if self._ontology.has_concept(element_id):
            return "concept"
        if self._ontology.has_datatype_property(element_id):
            return "attribute"
        return "relationship"
