"""Pratt parser for the expression language.

Grammar (binding powers in :data:`_INFIX_POWER`):

.. code-block:: text

    expr      := or_expr
    or_expr   := and_expr ( OR and_expr )*
    and_expr  := cmp_expr ( AND cmp_expr )*
    cmp_expr  := add_expr ( ( = | != | < | <= | > | >= ) add_expr
                           | [NOT] IN '(' literal (',' literal)* ')' )?
    add_expr  := mul_expr ( ( + | - ) mul_expr )*
    mul_expr  := unary ( ( * | / | % ) unary )*
    unary     := ( - | NOT ) unary | primary
    primary   := literal | identifier | identifier '(' args ')' | '(' expr ')'
"""

from __future__ import annotations

import datetime
from functools import lru_cache

from repro.errors import ParseError
from repro.expressions import ast
from repro.expressions.lexer import Token, TokenKind, tokenize

#: Left binding power of infix operators.
_INFIX_POWER = {
    "or": 1,
    "and": 2,
    "in": 4,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


@lru_cache(maxsize=4096)
def parse(text: str) -> ast.Expression:
    """Parse an expression string into an AST.

    Raises :class:`repro.errors.ParseError` (or ``LexError``) on
    malformed input.

    Results are memoised on the source text: AST nodes are immutable
    (frozen dataclasses), so the same predicate or derivation repeated
    across ETL nodes, flows and runs is parsed exactly once.  Errors are
    not cached.
    """
    parser = _Parser(tokenize(text), text)
    expression = parser.parse_expression(0)
    parser.expect_end()
    return expression


class _Parser:
    """Recursive Pratt parser over a token list."""

    def __init__(self, tokens: list, source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, message: str, token: Token) -> ParseError:
        return ParseError(
            f"{message} at position {token.position} in {self._source!r}"
        )

    def expect_end(self) -> None:
        token = self._peek()
        if token.kind is not TokenKind.END:
            raise self._error(f"unexpected trailing token {token.text!r}", token)

    # -- grammar -----------------------------------------------------------

    def parse_expression(self, min_power: int) -> ast.Expression:
        left = self._parse_prefix()
        while True:
            token = self._peek()
            operator = self._infix_operator(token)
            if operator is None:
                return left
            power = _INFIX_POWER[operator]
            if power <= min_power:
                return left
            self._advance()
            if operator == "in":
                left = ast.BinaryOp("in", left, self._parse_value_list())
            else:
                right = self.parse_expression(power)
                left = ast.BinaryOp(operator, left, right)

    def _infix_operator(self, token: Token):
        """Classify the next token as an infix operator, or None."""
        if token.kind is TokenKind.OPERATOR:
            return token.text
        if token.kind is TokenKind.KEYWORD and token.text in ("and", "or", "in"):
            return token.text
        return None

    def _parse_prefix(self) -> ast.Expression:
        token = self._advance()
        if token.kind is TokenKind.NUMBER:
            if "." in token.text:
                return ast.Literal(float(token.text))
            return ast.Literal(int(token.text))
        if token.kind is TokenKind.STRING:
            return ast.Literal(token.text)
        if token.kind is TokenKind.KEYWORD:
            return self._parse_keyword_prefix(token)
        if token.kind is TokenKind.IDENTIFIER:
            if self._peek().kind is TokenKind.LPAREN:
                return self._parse_call(token.text)
            return ast.Attribute(token.text)
        if token.kind is TokenKind.OPERATOR and token.text == "-":
            operand = self.parse_expression(6)
            return ast.UnaryOp("-", operand)
        if token.kind is TokenKind.LPAREN:
            inner = self.parse_expression(0)
            self._expect(TokenKind.RPAREN)
            return inner
        raise self._error(f"unexpected token {token.text!r}", token)

    def _parse_keyword_prefix(self, token: Token) -> ast.Expression:
        if token.text == "true":
            return ast.Literal(True)
        if token.text == "false":
            return ast.Literal(False)
        if token.text == "null":
            return ast.Literal(None)
        if token.text == "not":
            operand = self.parse_expression(3)
            return ast.UnaryOp("not", operand)
        if token.text == "date":
            value_token = self._expect(TokenKind.STRING)
            try:
                value = datetime.date.fromisoformat(value_token.text)
            except ValueError as exc:
                raise self._error(f"invalid date literal: {exc}", value_token) from exc
            return ast.Literal(value)
        raise self._error(f"unexpected keyword {token.text!r}", token)

    def _parse_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenKind.LPAREN)
        arguments = []
        if self._peek().kind is not TokenKind.RPAREN:
            arguments.append(self.parse_expression(0))
            while self._peek().kind is TokenKind.COMMA:
                self._advance()
                arguments.append(self.parse_expression(0))
        self._expect(TokenKind.RPAREN)
        return ast.FunctionCall(name, tuple(arguments))

    def _parse_value_list(self) -> ast.ValueList:
        self._expect(TokenKind.LPAREN)
        items = [self.parse_expression(0)]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            items.append(self.parse_expression(0))
        self._expect(TokenKind.RPAREN)
        return ast.ValueList(tuple(items))

    def _expect(self, kind: TokenKind) -> Token:
        token = self._advance()
        if token.kind is not kind:
            raise self._error(
                f"expected {kind.value}, found {token.text!r}", token
            )
        return token
