"""The diagnostics framework: findings, stable codes, and the rule registry.

Every linter finding is a :class:`Diagnostic` with a stable ``QRYnnn``
code, a severity, an optional location (flow node / MD element plus
attribute) and an optional fix hint.  Rules are registered per code in a
module-level registry, which gives the driver per-rule enable/disable
for free and keeps the code -> severity mapping in one place.

Code ranges:

* ``QRY0xx`` — structural flow checks (the old ``EtlFlow.validate``),
* ``QRY1xx`` — lineage: dead columns, unreachable subgraphs,
* ``QRY2xx`` — types and hashability,
* ``QRY3xx`` — predicate satisfiability,
* ``QRY4xx`` — MD conformance,
* ``QRY5xx`` — time and evolution (SCD policies, evolution operators).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; ERRORs block deployment."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: Render order: errors first.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str
    severity: Severity
    message: str
    node: Optional[str] = None
    attribute: Optional[str] = None
    hint: Optional[str] = None
    #: Stable, line-number-free identity for waiver matching (code rules).
    fingerprint: Optional[str] = None

    def location(self) -> str:
        if self.node is not None and self.attribute is not None:
            return f"{self.node}.{self.attribute}"
        if self.node is not None:
            return self.node
        if self.attribute is not None:
            return self.attribute
        return "<design>"

    def __str__(self) -> str:
        text = (
            f"{self.code} [{self.severity.value}] "
            f"{self.location()}: {self.message}"
        )
        if self.hint:
            text = f"{text} (hint: {self.hint})"
        return text

    def to_json(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "node": self.node,
            "attribute": self.attribute,
            "hint": self.hint,
        }
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        return payload


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: one stable code, one default severity.

    ``run`` receives the lint context (a :class:`~repro.analysis.linter.
    FlowLintContext` or :class:`~repro.analysis.linter.MDLintContext`,
    matching ``target``) and yields diagnostics.  Heavy analyses (schema
    walk, demand, taint) are cached on the context, so rules sharing a
    pass don't recompute it.
    """

    code: str
    title: str
    target: str  # "flow" | "md" | "code"
    severity: Severity
    run: Callable[[object], Iterable[Diagnostic]]


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule


def rule(code: str, title: str, target: str, severity: Severity):
    """Decorator form of :func:`register`."""

    def decorator(fn):
        register(Rule(code=code, title=title, target=target, severity=severity, run=fn))
        return fn

    return decorator


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rules_for(target: str) -> List[Rule]:
    return [r for r in all_rules() if r.target == target]


def rule_by_code(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ValueError(f"unknown rule code {code!r}") from None


def diag(
    code: str,
    message: str,
    *,
    node: Optional[str] = None,
    attribute: Optional[str] = None,
    hint: Optional[str] = None,
    severity: Optional[Severity] = None,
    fingerprint: Optional[str] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the rule registry."""
    effective = severity if severity is not None else rule_by_code(code).severity
    return Diagnostic(
        code=code,
        severity=effective,
        message=message,
        node=node,
        attribute=attribute,
        hint=hint,
        fingerprint=fingerprint,
    )


@dataclass
class LintReport:
    """All diagnostics for one lint subject (a flow or an MD schema)."""

    subject: str
    diagnostics: List[Diagnostic]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """No ERROR-severity findings (warnings/infos allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def merged_with(self, other: "LintReport") -> "LintReport":
        return LintReport(
            subject=f"{self.subject}+{other.subject}",
            diagnostics=list(self.diagnostics) + list(other.diagnostics),
        )

    def render(self) -> str:
        """Human-readable text report."""
        lines = []
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        if not self.diagnostics:
            lines.append(f"{self.subject}: clean")
        else:
            lines.append(f"{self.subject}: {counts}")
            ordered = sorted(
                self.diagnostics,
                key=lambda d: (
                    _SEVERITY_RANK[d.severity],
                    d.code,
                    d.location(),
                ),
            )
            for diagnostic in ordered:
                lines.append(f"  {diagnostic}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }
