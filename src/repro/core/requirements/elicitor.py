"""The Requirements Elicitor's suggestion engine (Figure 2).

"Requirements Elicitor also offers assistance to end-users' data
exploration tasks by analyzing the relationships in the domain ontology,
and automatically suggesting potentially interesting analytical
perspectives.  For example, a user may choose the focus of an analysis
(e.g., Lineitem), while the system then automatically suggests useful
dimensions (e.g., Supplier, Nation, Part)." (§2.1)

The engine works purely on ontology structure:

* **fact candidates** — concepts ranked by to-one fan-out (an event
  referencing many others) and by carrying numeric attributes,
* **dimension suggestions** — the to-one closure of the chosen focus;
  shorter paths and higher fan-in (shared levels) rank higher,
* **measure suggestions** — numeric datatype properties of the focus,
* **slicer suggestions** — descriptive (string/date) attributes of the
  suggested dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ontology.graph import ConceptPath, OntologyGraph
from repro.ontology.model import Ontology
from repro.expressions.types import ScalarType


@dataclass(frozen=True)
class Suggestion:
    """One suggested element with its ranking score and rationale."""

    element_id: str
    kind: str  # fact | dimension | measure | slicer
    score: float
    reason: str
    path: Optional[ConceptPath] = None

    @property
    def label(self) -> str:
        return self.element_id


class Elicitor:
    """Suggestion engine over one domain ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._graph = OntologyGraph(ontology)

    @property
    def ontology(self) -> Ontology:
        return self._ontology

    # -- fact candidates ------------------------------------------------------

    def suggest_facts(self, limit: int = 5) -> List[Suggestion]:
        """Concepts most likely to be analysis subjects."""
        suggestions = []
        for concept in self._ontology.concepts():
            fan_out = self._graph.fan_out(concept.id)
            numeric = sum(
                1
                for prop in self._ontology.datatype_properties(concept.id)
                if prop.range.is_numeric
            )
            if fan_out == 0 and numeric == 0:
                continue
            score = 2.0 * fan_out + numeric
            suggestions.append(
                Suggestion(
                    element_id=concept.id,
                    kind="fact",
                    score=score,
                    reason=(
                        f"references {fan_out} concept(s), carries "
                        f"{numeric} numeric attribute(s)"
                    ),
                )
            )
        suggestions.sort(key=lambda s: (-s.score, s.element_id))
        return suggestions[:limit]

    # -- perspectives around a focus ----------------------------------------------

    def suggest_dimensions(self, focus: str, limit: int = 10) -> List[Suggestion]:
        """Dimension concepts for a chosen focus (Figure 2's behaviour)."""
        closure = self._graph.to_one_closure(focus)
        suggestions = []
        for concept_id, path in closure.items():
            fan_in = self._graph.fan_in(concept_id)
            descriptive = sum(
                1
                for prop in self._ontology.datatype_properties(concept_id)
                if not prop.range.is_numeric
            )
            score = 10.0 / len(path) + 2.0 * fan_in + descriptive
            suggestions.append(
                Suggestion(
                    element_id=concept_id,
                    kind="dimension",
                    score=score,
                    reason=(
                        f"reachable over a {len(path)}-hop to-one path; "
                        f"{fan_in} concept(s) roll up to it"
                    ),
                    path=path,
                )
            )
        suggestions.sort(key=lambda s: (-s.score, s.element_id))
        return suggestions[:limit]

    def suggest_measures(self, focus: str, limit: int = 10) -> List[Suggestion]:
        """Numeric attributes of the focus (and of to-one neighbours)."""
        suggestions = []
        candidates = [(focus, 0)]
        candidates.extend(
            (concept_id, len(path))
            for concept_id, path in self._graph.to_one_closure(focus).items()
        )
        for concept_id, distance in candidates:
            for prop in self._ontology.datatype_properties(concept_id):
                if not prop.range.is_numeric:
                    continue
                score = 5.0 / (1 + distance)
                suggestions.append(
                    Suggestion(
                        element_id=prop.id,
                        kind="measure",
                        score=score,
                        reason=(
                            f"numeric attribute of {concept_id} "
                            f"({distance} hop(s) from focus)"
                        ),
                    )
                )
        suggestions.sort(key=lambda s: (-s.score, s.element_id))
        return suggestions[:limit]

    def suggest_slicers(self, focus: str, limit: int = 10) -> List[Suggestion]:
        """Descriptive attributes usable as slicer left-hand sides."""
        suggestions = []
        candidates = [(focus, 0)]
        candidates.extend(
            (concept_id, len(path))
            for concept_id, path in self._graph.to_one_closure(focus).items()
        )
        for concept_id, distance in candidates:
            for prop in self._ontology.datatype_properties(concept_id):
                if prop.range not in (ScalarType.STRING, ScalarType.DATE):
                    continue
                score = 3.0 / (1 + distance)
                suggestions.append(
                    Suggestion(
                        element_id=prop.id,
                        kind="slicer",
                        score=score,
                        reason=(
                            f"{prop.range.value} attribute of {concept_id}"
                        ),
                    )
                )
        suggestions.sort(key=lambda s: (-s.score, s.element_id))
        return suggestions[:limit]

    def suggest_perspective(self, focus: str) -> dict:
        """The full Figure 2 payload for one focus pick."""
        return {
            "focus": focus,
            "dimensions": self.suggest_dimensions(focus),
            "measures": self.suggest_measures(focus),
            "slicers": self.suggest_slicers(focus),
        }

    # -- requirement assembly -----------------------------------------------------

    def draft_requirement(
        self,
        requirement_id: str,
        focus: str,
        accept_measures: Optional[List[str]] = None,
        accept_dimensions: Optional[List[str]] = None,
        description: str = "",
    ):
        """Assemble a requirement from accepted suggestions.

        "The user can further accept or discard the suggestions and
        supply her information requirement" (§2.1).  ``accept_measures``
        and ``accept_dimensions`` name the accepted suggestion ids; when
        omitted, the top suggestion of each kind is taken.  Dimension
        suggestions are concepts — each contributes its top descriptive
        attribute as the analysis atom.  Returns a
        :class:`repro.core.requirements.builder.RequirementBuilder` so
        the user can still add slicers or tweak aggregation before
        ``build()``.
        """
        from repro.core.requirements.builder import RequirementBuilder

        builder = RequirementBuilder(requirement_id, description)
        measures = accept_measures
        if measures is None:
            top = self.suggest_measures(focus, limit=1)
            measures = [top[0].element_id] if top else []
        for index, property_id in enumerate(measures):
            self._ontology.datatype_property(property_id)  # validate
            builder.measure(f"m_{property_id}", property_id, "SUM")
        dimensions = accept_dimensions
        if dimensions is None:
            top = self.suggest_dimensions(focus, limit=1)
            dimensions = [top[0].element_id] if top else []
        for concept_id in dimensions:
            atom = self._dimension_atom(concept_id)
            builder.per(atom)
        return builder

    def _dimension_atom(self, concept_id: str) -> str:
        """The analysis atom a suggested dimension concept contributes."""
        if self._ontology.has_datatype_property(concept_id):
            return concept_id  # the user accepted an attribute directly
        descriptive = [
            prop.id
            for prop in self._ontology.datatype_properties(concept_id)
            if not prop.range.is_numeric
        ]
        if descriptive:
            return descriptive[0]
        any_property = list(self._ontology.datatype_properties(concept_id))
        if any_property:
            return any_property[0].id
        from repro.errors import RequirementError

        raise RequirementError(
            f"suggested dimension {concept_id!r} has no attributes to "
            f"group by"
        )

    # -- UI integration ------------------------------------------------------------

    def graph_document(self, highlight: Optional[str] = None) -> dict:
        """The D3 graph document the web front-end renders."""
        from repro.ontology.d3 import to_d3

        return to_d3(self._ontology, highlight=highlight)
