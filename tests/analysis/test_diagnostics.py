"""The diagnostics framework: codes, severities, registry, reports."""

import pytest

from repro.analysis import Severity, all_rules, rule_by_code, rules_for
from repro.analysis.diagnostics import (
    LintReport,
    Rule,
    diag,
    register,
)


class TestRegistry:
    def test_every_code_is_stable_and_sorted(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert all(code.startswith("QRY") for code in codes)
        assert len(codes) == len(set(codes))

    def test_full_catalog_is_registered(self):
        codes = {rule.code for rule in all_rules()}
        expected = (
            {f"QRY00{i}" for i in range(1, 6)}
            | {"QRY101", "QRY102"}
            | {f"QRY20{i}" for i in range(1, 5)}
            | {f"QRY30{i}" for i in range(1, 4)}
            | {f"QRY4{i:02d}" for i in range(1, 14)}
            | {f"QRY50{i}" for i in range(1, 6)}
            | {f"QRY90{i}" for i in range(1, 8)}
        )
        assert codes == expected

    def test_targets_partition_the_catalog(self):
        flow = {rule.code for rule in rules_for("flow")}
        md = {rule.code for rule in rules_for("md")}
        code = {rule.code for rule in rules_for("code")}
        assert not flow & md
        assert not (flow | md) & code
        assert flow | md | code == {rule.code for rule in all_rules()}
        assert all(c < "QRY400" for c in flow)
        assert all("QRY400" <= c < "QRY900" for c in md)
        assert all(c >= "QRY900" for c in code)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule code"):
            register(
                Rule(
                    code="QRY001",
                    title="again",
                    target="flow",
                    severity=Severity.ERROR,
                    run=lambda context: [],
                )
            )

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            rule_by_code("QRY999")


class TestDiagnostic:
    def test_severity_defaults_from_registry(self):
        finding = diag("QRY101", "dead", node="n", attribute="a")
        assert finding.severity is Severity.WARNING
        overridden = diag("QRY411", "soft", node="f", severity=Severity.WARNING)
        assert overridden.severity is Severity.WARNING

    def test_location_and_str(self):
        finding = diag("QRY202", "boom", node="join_1", attribute="k", hint="fix")
        assert finding.location() == "join_1.k"
        assert str(finding) == "QRY202 [error] join_1.k: boom (hint: fix)"
        assert diag("QRY005", "cycle").location() == "<design>"
        assert diag("QRY004", "dead end", node="s").location() == "s"

    def test_to_json_round_trips_fields(self):
        finding = diag("QRY302", "never", node="sel")
        payload = finding.to_json()
        assert payload["code"] == "QRY302"
        assert payload["severity"] == "warning"
        assert payload["node"] == "sel"
        assert payload["attribute"] is None


def _report():
    return LintReport(
        subject="flow 'f'",
        diagnostics=[
            diag("QRY101", "dead", node="d"),
            diag("QRY202", "boom", node="j", attribute="k"),
            diag("QRY412", "avg", node="fact"),
        ],
    )


class TestLintReport:
    def test_severity_buckets(self):
        report = _report()
        assert [d.code for d in report.errors] == ["QRY202"]
        assert [d.code for d in report.warnings] == ["QRY101"]
        assert [d.code for d in report.infos] == ["QRY412"]
        assert not report.ok
        assert LintReport(subject="s", diagnostics=[]).ok

    def test_codes_and_by_code(self):
        report = _report()
        assert report.codes() == ["QRY101", "QRY202", "QRY412"]
        assert len(report.by_code("QRY202")) == 1

    def test_render_orders_errors_first(self):
        lines = _report().render().splitlines()
        assert lines[0] == "flow 'f': 1 error(s), 1 warning(s), 1 info(s)"
        assert [line.split()[0] for line in lines[1:]] == [
            "QRY202", "QRY101", "QRY412",
        ]
        assert (
            LintReport(subject="flow 'f'", diagnostics=[]).render()
            == "flow 'f': clean"
        )

    def test_merged_with_concatenates(self):
        merged = _report().merged_with(
            LintReport(subject="schema 's'", diagnostics=[diag("QRY407", "x")])
        )
        assert merged.subject == "flow 'f'+schema 's'"
        assert len(merged.diagnostics) == 4
        assert not merged.ok

    def test_to_json_counts(self):
        payload = _report().to_json()
        assert payload["ok"] is False
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}
