"""save_to/load_from round-trips the *full* design state.

A reloaded store must resume incrementally: the fold checkpoints, the
requirement insertion order and the bus event log all survive the trip,
so restoring costs zero integration calls and later changes stay
sub-linear.  Stores written before session state existed still load via
the legacy re-interpretation path.
"""

import pytest

from repro import Quarry
from repro.sources import tpch
from repro.xformats import xlm, xmd

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


@pytest.fixture
def saved_store(tmp_path):
    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    # IR2 before IR1: insertion order differs from sorted order, so a
    # loader that trusted the (sorted) unified-design requirement list
    # would fold in the wrong order.
    quarry.add_requirement(build_netprofit_requirement())
    quarry.add_requirement(build_revenue_requirement())
    path = tmp_path / "store.json"
    quarry.save_to(path)
    return quarry, path


def reload(path, **kwargs):
    return Quarry.load_from(path, tpch.schema(), tpch.mappings(), **kwargs)


class TestRoundTrip:
    def test_reload_restores_identical_design(self, saved_store):
        quarry, path = saved_store
        resumed = reload(path)
        md, etl = resumed.unified_design()
        original_md, original_etl = quarry.unified_design()
        assert xmd.dumps(md) == xmd.dumps(original_md)
        assert xlm.dumps(etl) == xlm.dumps(original_etl)
        assert [r.id for r in resumed.requirements()] == ["IR2", "IR1"]

    def test_reload_is_incremental_not_reinterpreted(self, saved_store):
        __, path = saved_store
        resumed = reload(path)
        # Restoring from checkpoints costs zero integration calls ...
        assert resumed.integration_counts == {"md": 0, "etl": 0}
        # ... and the session continues incrementally from there.
        resumed.add_requirement(build_quantity_requirement())
        assert resumed.integration_counts == {"md": 1, "etl": 1}
        resumed.remove_requirement("IR3")  # newest: checkpoint restore
        assert resumed.integration_counts == {"md": 1, "etl": 1}

    def test_reload_restores_checkpoints_and_bus_log(self, saved_store):
        quarry, path = saved_store
        resumed = reload(path)
        assert resumed.repository.checkpoint_count() == 2
        assert (
            resumed.repository.bus_event_count()
            == quarry.repository.bus_event_count()
        )
        # The restored log still replays to the restored design.
        replayed_md, __ = resumed.session.replay_unified_design()
        assert xmd.dumps(replayed_md) == xmd.dumps(resumed.unified_design()[0])

    def test_removal_after_reload_refolds_correctly(self, saved_store):
        quarry, path = saved_store
        quarry.remove_requirement("IR2")
        resumed = reload(path)
        resumed.remove_requirement("IR2")
        assert xmd.dumps(resumed.unified_design()[0]) == xmd.dumps(
            quarry.unified_design()[0]
        )
        # Only the suffix after IR2 (one requirement) was re-folded.
        assert resumed.integration_counts == {"md": 1, "etl": 1}

    def test_named_session_roundtrip(self, tmp_path):
        quarry = Quarry(
            tpch.ontology(), tpch.schema(), tpch.mappings(), session="s1"
        )
        quarry.add_requirement(build_revenue_requirement())
        path = tmp_path / "store.json"
        quarry.save_to(path)
        resumed = reload(path, session="s1")
        assert resumed.integration_counts == {"md": 0, "etl": 0}
        assert [r.id for r in resumed.requirements()] == ["IR1"]
        assert resumed.repository.namespace == "s1"


class TestLegacyStores:
    def test_store_without_session_state_falls_back(self, tmp_path):
        # A legacy store only records the unified design's (sorted)
        # requirement list, so it can only have been written by code
        # whose insertion order is recoverable from it.
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        path = tmp_path / "store.json"
        quarry.save_to(path)

        # Simulate a store written before checkpoints/session state
        # existed: drop the new collections, keep the classic five.
        from repro.repository import MetadataRepository

        repository = MetadataRepository.load_from(path)
        for name in ("session_state", "checkpoints", "bus_events"):
            repository.store.drop_collection(name)
        legacy_path = tmp_path / "legacy.json"
        repository.save_to(legacy_path)

        resumed = reload(legacy_path)
        # Legacy path re-interprets, so integration work was done ...
        assert resumed.integration_counts == {"md": 2, "etl": 2}
        # ... but the design converges to the same artefacts.
        assert xmd.dumps(resumed.unified_design()[0]) == xmd.dumps(
            quarry.unified_design()[0]
        )
        assert [r.id for r in resumed.requirements()] == ["IR1", "IR2"]
