"""The regression corpus: failing trials, frozen as JSON.

Every shrunk failure the fuzzer finds can be serialised to a small JSON
document and committed under ``tests/fuzz/corpus/``; the tier-1 smoke
test replays every entry on each run, so a fixed bug stays fixed.

Six entry kinds:

* ``"flow"`` — source tables (schema + rows) and the flow as xLM text;
  replay runs the full differential flow check.
* ``"lint"`` — same payload as ``"flow"``; replay runs the
  static/dynamic agreement check (linter versus engine) instead.
* ``"planned"`` — same payload as ``"flow"``; replay runs the
  planner-equivalence check (planned versus unplanned execution).
* ``"parallel"`` — same payload as ``"flow"``; replay runs the
  parallel-equivalence check (chunked versus serial, byte-identical).
* ``"query"`` — documents, query, sort key and limit; replay runs the
  document-store check against the naive reference.
* ``"evolve"`` — SCD policy assignment plus a design script (adds,
  removals and evolution operators) over the TPC-H domain; replay
  checks incremental evolution against replay, rebuild and the four
  engine modes.

Dates are tagged ``{"$date": "YYYY-MM-DD"}`` since JSON has no date
type; everything else the generators produce is JSON-native.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro.expressions.types import ScalarType
from repro.fuzz.datagen import TableSpec
from repro.fuzz.evolveoracle import EvolveTrial, check_evolve_trial
from repro.fuzz.flowgen import FlowTrial
from repro.fuzz.lintoracle import LintTrial, check_lint_trial
from repro.fuzz.oracle import check_flow_trial, check_query_trial
from repro.fuzz.paralleloracle import ParallelTrial, check_parallel_trial
from repro.fuzz.planoracle import PlanTrial, check_plan_trial
from repro.fuzz.querygen import QueryTrial
from repro.xformats import xlm


def encode_value(value):
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value):
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return datetime.date.fromisoformat(value["$date"])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def flow_entry(trial: FlowTrial, description: str = "") -> dict:
    return {
        "kind": "flow",
        "description": description,
        "seed": trial.seed,
        "tables": [
            {
                "name": table.name,
                "schema": {
                    column: scalar_type.name
                    for column, scalar_type in table.schema.items()
                },
                "rows": [
                    {
                        column: encode_value(row[column])
                        for column in table.schema
                    }
                    for row in table.rows
                ],
            }
            for table in trial.tables
        ],
        "xlm": xlm.dumps(trial.flow),
    }


def query_entry(trial: QueryTrial, description: str = "") -> dict:
    return {
        "kind": "query",
        "description": description,
        "seed": trial.seed,
        "documents": [
            encode_value(document) for document in trial.documents
        ],
        "query": encode_value(trial.query),
        "sort_key": trial.sort_key,
        "limit": trial.limit,
        "indexes": list(trial.indexes),
        "session": trial.session,
        "decoys": {
            session: [encode_value(document) for document in documents]
            for session, documents in trial.decoys.items()
        },
    }


def lint_entry(trial, description: str = "") -> dict:
    entry = flow_entry(trial, description)
    entry["kind"] = "lint"
    return entry


def plan_entry(trial, description: str = "") -> dict:
    entry = flow_entry(trial, description)
    entry["kind"] = "planned"
    return entry


def parallel_entry(trial, description: str = "") -> dict:
    entry = flow_entry(trial, description)
    entry["kind"] = "parallel"
    return entry


def evolve_entry(trial: EvolveTrial, description: str = "") -> dict:
    return {
        "kind": "evolve",
        "description": description,
        "seed": trial.seed,
        "policies": dict(trial.policies),
        "script": [dict(op) for op in trial.script],
    }


def encode_trial(trial, description: str = "") -> dict:
    # Subclasses of FlowTrial must be tested before the base class.
    if isinstance(trial, LintTrial):
        return lint_entry(trial, description)
    if isinstance(trial, PlanTrial):
        return plan_entry(trial, description)
    if isinstance(trial, ParallelTrial):
        return parallel_entry(trial, description)
    if isinstance(trial, FlowTrial):
        return flow_entry(trial, description)
    if isinstance(trial, EvolveTrial):
        return evolve_entry(trial, description)
    return query_entry(trial, description)


def _decode_tables(entry: dict) -> List[TableSpec]:
    return [
        TableSpec(
            name=table["name"],
            schema={
                column: ScalarType[type_name]
                for column, type_name in table["schema"].items()
            },
            rows=[decode_value(row) for row in table["rows"]],
        )
        for table in entry["tables"]
    ]


def decode_entry(entry: dict):
    """An entry dict back into the trial object it froze."""
    if entry["kind"] in ("flow", "lint", "planned", "parallel"):
        trial_class = {
            "lint": LintTrial,
            "planned": PlanTrial,
            "parallel": ParallelTrial,
        }.get(entry["kind"], FlowTrial)
        return trial_class(
            tables=_decode_tables(entry),
            flow=xlm.loads(entry["xlm"]),
            seed=entry.get("seed"),
        )
    if entry["kind"] == "evolve":
        return EvolveTrial(
            policies=dict(entry.get("policies", {})),
            script=[dict(op) for op in entry["script"]],
            seed=entry.get("seed"),
        )
    if entry["kind"] == "query":
        return QueryTrial(
            documents=[
                decode_value(document) for document in entry["documents"]
            ],
            query=decode_value(entry["query"]),
            sort_key=entry.get("sort_key"),
            limit=entry.get("limit"),
            indexes=list(entry.get("indexes", [])),
            session=entry.get("session", ""),
            decoys={
                session: [decode_value(document) for document in documents]
                for session, documents in entry.get("decoys", {}).items()
            },
            seed=entry.get("seed"),
        )
    raise ValueError(f"unknown corpus entry kind {entry.get('kind')!r}")


def replay(entry: dict) -> Optional[str]:
    """Re-run an entry's differential check; ``None`` means it passes."""
    trial = decode_entry(entry)
    if isinstance(trial, LintTrial):
        return check_lint_trial(trial)
    if isinstance(trial, PlanTrial):
        return check_plan_trial(trial)
    if isinstance(trial, ParallelTrial):
        return check_parallel_trial(trial)
    if isinstance(trial, FlowTrial):
        return check_flow_trial(trial)
    if isinstance(trial, EvolveTrial):
        return check_evolve_trial(trial)
    return check_query_trial(trial)


def load_corpus(directory) -> List[Tuple[Path, dict]]:
    """All ``*.json`` entries in a corpus directory, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    entries = []
    for path in sorted(root.glob("*.json")):
        entries.append((path, json.loads(path.read_text())))
    return entries


def save_entry(path, entry: dict) -> None:
    Path(path).write_text(json.dumps(entry, indent=2, sort_keys=False) + "\n")
