"""xMD — the XML format for multidimensional schemas.

Follows the shape of the Figure 3/4 snippets (``<MDschema>`` holding
``<facts>`` and ``<dimensions>``), fleshed out with the detail the MD
integrator needs to round-trip: measures with expressions/aggregation/
additivity, levels with typed attributes and ontology provenance,
hierarchies, fact-dimension links, and requirement traceability.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import XmdFormatError
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    Additivity,
    AggregationFunction,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
    SCDPolicy,
)
from repro.xformats import xmlutil
from repro.xformats.registry import check_schema_version

#: The newest xMD schema version this build writes.  Version 1.1 added
#: the per-level ``<scd>`` policy element; documents without SCD levels
#: are still written in the legacy shape (no ``version`` attribute ==
#: version 1.0) so existing designs round-trip byte-identically.
XMD_VERSION = "1.1"


def dumps(schema: MDSchema) -> str:
    """Serialise an MD schema to xMD."""
    uses_scd = any(
        level.scd_policy is not SCDPolicy.TYPE0
        for _, level in schema.iter_levels()
    )
    attributes = {"name": schema.name}
    if uses_scd:
        attributes["version"] = XMD_VERSION
    root = ET.Element("MDschema", attributes)
    facts = xmlutil.sub(root, "facts")
    for fact in schema.facts.values():
        facts.append(_write_fact(fact))
    dimensions = xmlutil.sub(root, "dimensions")
    for dimension in schema.dimensions.values():
        dimensions.append(_write_dimension(dimension))
    return xmlutil.render(root)


def _write_requirements(parent: ET.Element, requirement_ids) -> None:
    if not requirement_ids:
        return
    wrapper = xmlutil.sub(parent, "requirements")
    for requirement_id in sorted(requirement_ids):
        xmlutil.sub(wrapper, "requirement", requirement_id)


def _write_fact(fact: Fact) -> ET.Element:
    element = ET.Element("fact")
    xmlutil.sub(element, "name", fact.name)
    if fact.concept is not None:
        xmlutil.sub(element, "concept", fact.concept)
    if fact.grain:
        grain = xmlutil.sub(element, "grain")
        for column in fact.grain:
            xmlutil.sub(grain, "column", column)
    if fact.slicers:
        slicers = xmlutil.sub(element, "slicers")
        for predicate in fact.slicers:
            xmlutil.sub(slicers, "predicate", predicate)
    _write_requirements(element, fact.requirements)
    measures = xmlutil.sub(element, "measures")
    for measure in fact.measures.values():
        measure_element = xmlutil.sub(measures, "measure")
        xmlutil.sub(measure_element, "name", measure.name)
        xmlutil.sub(measure_element, "expression", measure.expression)
        xmlutil.sub(measure_element, "type", measure.type.value)
        xmlutil.sub(measure_element, "aggregation", measure.aggregation.value)
        xmlutil.sub(measure_element, "additivity", measure.additivity.value)
        _write_requirements(measure_element, measure.requirements)
    links = xmlutil.sub(element, "links")
    for link in fact.links:
        link_element = xmlutil.sub(links, "link")
        xmlutil.sub(link_element, "dimension", link.dimension)
        xmlutil.sub(link_element, "level", link.level)
    return element


def _write_dimension(dimension: Dimension) -> ET.Element:
    element = ET.Element("dimension")
    xmlutil.sub(element, "name", dimension.name)
    _write_requirements(element, dimension.requirements)
    levels = xmlutil.sub(element, "levels")
    for level in dimension.levels.values():
        level_element = xmlutil.sub(levels, "level")
        xmlutil.sub(level_element, "name", level.name)
        if level.concept is not None:
            xmlutil.sub(level_element, "concept", level.concept)
        if level.key is not None:
            xmlutil.sub(level_element, "key", level.key)
        if level.scd_policy is not SCDPolicy.TYPE0:
            xmlutil.sub(level_element, "scd", level.scd_policy.value)
        attributes = xmlutil.sub(level_element, "attributes")
        for attribute in level.attributes:
            attribute_element = xmlutil.sub(attributes, "attribute")
            xmlutil.sub(attribute_element, "name", attribute.name)
            xmlutil.sub(attribute_element, "type", attribute.type.value)
            if attribute.property is not None:
                xmlutil.sub(attribute_element, "property", attribute.property)
    hierarchies = xmlutil.sub(element, "hierarchies")
    for hierarchy in dimension.hierarchies:
        hierarchy_element = xmlutil.sub(
            hierarchies, "hierarchy", name=hierarchy.name
        )
        for level_name in hierarchy.levels:
            xmlutil.sub(hierarchy_element, "level", level_name)
    return element


def loads(text: str) -> MDSchema:
    """Parse an xMD document back into an MD schema."""
    root = xmlutil.parse_document(text, "MDschema", XmdFormatError)
    check_schema_version("xmd", root.get("version", "1.0"), XmdFormatError)
    schema = MDSchema(name=xmlutil.attribute(root, "name", XmdFormatError))
    dimensions = root.find("dimensions")
    if dimensions is not None:
        for element in dimensions.findall("dimension"):
            schema.add_dimension(_read_dimension(element))
    facts = root.find("facts")
    if facts is not None:
        for element in facts.findall("fact"):
            schema.add_fact(_read_fact(element))
    return schema


def _read_requirements(element: ET.Element) -> set:
    wrapper = element.find("requirements")
    if wrapper is None:
        return set()
    return {node.text or "" for node in wrapper.findall("requirement")}


def _scalar(text: str) -> ScalarType:
    try:
        return ScalarType(text)
    except ValueError:
        raise XmdFormatError(f"unknown scalar type {text!r}") from None


def _read_fact(element: ET.Element) -> Fact:
    fact = Fact(
        name=xmlutil.child_text(element, "name", XmdFormatError),
        concept=xmlutil.optional_text(element, "concept"),
        requirements=_read_requirements(element),
    )
    grain_element = element.find("grain")
    if grain_element is not None:
        fact.grain = [
            node.text or "" for node in grain_element.findall("column")
        ]
    slicers_element = element.find("slicers")
    if slicers_element is not None:
        fact.slicers = [
            node.text or "" for node in slicers_element.findall("predicate")
        ]
    measures = element.find("measures")
    if measures is not None:
        for measure_element in measures.findall("measure"):
            try:
                aggregation = AggregationFunction.parse(
                    xmlutil.child_text(measure_element, "aggregation", XmdFormatError)
                )
            except Exception as exc:
                raise XmdFormatError(str(exc)) from exc
            additivity_text = xmlutil.child_text(
                measure_element, "additivity", XmdFormatError
            )
            try:
                additivity = Additivity(additivity_text)
            except ValueError:
                raise XmdFormatError(
                    f"unknown additivity {additivity_text!r}"
                ) from None
            fact.add_measure(
                Measure(
                    name=xmlutil.child_text(measure_element, "name", XmdFormatError),
                    expression=xmlutil.child_text(
                        measure_element, "expression", XmdFormatError
                    ),
                    type=_scalar(
                        xmlutil.child_text(measure_element, "type", XmdFormatError)
                    ),
                    aggregation=aggregation,
                    additivity=additivity,
                    requirements=_read_requirements(measure_element),
                )
            )
    links = element.find("links")
    if links is not None:
        for link_element in links.findall("link"):
            fact.link_dimension(
                xmlutil.child_text(link_element, "dimension", XmdFormatError),
                xmlutil.child_text(link_element, "level", XmdFormatError),
            )
    return fact


def _read_dimension(element: ET.Element) -> Dimension:
    dimension = Dimension(
        name=xmlutil.child_text(element, "name", XmdFormatError),
        requirements=_read_requirements(element),
    )
    levels = element.find("levels")
    if levels is not None:
        for level_element in levels.findall("level"):
            attributes = []
            attributes_element = level_element.find("attributes")
            if attributes_element is not None:
                for attribute_element in attributes_element.findall("attribute"):
                    attributes.append(
                        LevelAttribute(
                            name=xmlutil.child_text(
                                attribute_element, "name", XmdFormatError
                            ),
                            type=_scalar(
                                xmlutil.child_text(
                                    attribute_element, "type", XmdFormatError
                                )
                            ),
                            property=xmlutil.optional_text(
                                attribute_element, "property"
                            ),
                        )
                    )
            scd_text = xmlutil.optional_text(level_element, "scd")
            try:
                scd_policy = (
                    SCDPolicy.parse(scd_text)
                    if scd_text is not None
                    else SCDPolicy.TYPE0
                )
            except Exception as exc:
                raise XmdFormatError(str(exc)) from exc
            dimension.add_level(
                Level(
                    name=xmlutil.child_text(level_element, "name", XmdFormatError),
                    attributes=attributes,
                    key=xmlutil.optional_text(level_element, "key"),
                    concept=xmlutil.optional_text(level_element, "concept"),
                    scd_policy=scd_policy,
                )
            )
    hierarchies = element.find("hierarchies")
    if hierarchies is not None:
        for hierarchy_element in hierarchies.findall("hierarchy"):
            dimension.add_hierarchy(
                Hierarchy(
                    name=xmlutil.attribute(hierarchy_element, "name", XmdFormatError),
                    levels=[
                        node.text or ""
                        for node in hierarchy_element.findall("level")
                    ],
                )
            )
    return dimension
