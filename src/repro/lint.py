"""Lint front door: ``python -m repro.lint``.

Lints ETL flows and MD schemas with the :mod:`repro.analysis` rules and
exits non-zero when any ERROR-severity diagnostic is found:

.. code-block:: console

    $ python -m repro.lint --demo                 # the TPC-H demo design
    $ python -m repro.lint flow.xlm schema.xmd    # interchange documents
    $ python -m repro.lint tests/fuzz/corpus/     # corpus entries (.json)
    $ python -m repro.lint --json --demo          # machine-readable
    $ python -m repro.lint --list-rules           # the rule catalog

``.xlm`` files lint structurally (no source schema, so the typed and
data-aware rules stay quiet); corpus ``.json`` entries carry their
tables, so the full rule set applies to them.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import LintReport, all_rules, lint, rule_by_code
from repro.errors import QuarryError

#: File suffixes the CLI knows how to lint.
_SUFFIXES = (".xlm", ".xmd", ".json")


def _demo_reports() -> List[LintReport]:
    from repro.cli import _build_demo_requirements
    from repro.core.quarry import Quarry
    from repro.sources import tpch

    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    for requirement in _build_demo_requirements():
        quarry.add_requirement(requirement)
    return [quarry.lint()]


def _lint_path(path: Path, disable, only) -> LintReport:
    text = path.read_text()
    if path.suffix == ".xlm":
        from repro.xformats import xlm

        return lint(xlm.loads(text), disable=disable, only=only)
    if path.suffix == ".xmd":
        from repro.xformats import xmd

        return lint(xmd.loads(text), disable=disable, only=only)
    if path.suffix == ".json":
        from repro.fuzz.corpus import decode_entry

        entry = json.loads(text)
        trial = decode_entry(entry)
        if not hasattr(trial, "flow"):
            raise QuarryError(
                f"{path}: corpus entry kind {entry.get('kind')!r} has no "
                f"flow to lint"
            )
        from repro.fuzz.lintoracle import trial_lint_inputs

        source_schema, tables = trial_lint_inputs(trial)
        return lint(
            trial.flow,
            source_schema=source_schema,
            tables=tables,
            disable=disable,
            only=only,
        )
    raise QuarryError(f"{path}: cannot lint {path.suffix!r} files")


def _collect(paths: List[str]) -> List[Path]:
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(
                sorted(
                    candidate
                    for candidate in path.rglob("*")
                    if candidate.suffix in _SUFFIXES and candidate.is_file()
                )
            )
        else:
            collected.append(path)
    return collected


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.severity.value:<7}  {rule.target:<4}  {rule.title}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically analyse ETL flows and MD schemas.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".xlm / .xmd documents, corpus .json entries, or directories",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="lint the built-in TPC-H demo design (flow + MD schema)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object instead of text",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="CODE",
        help="disable a rule by code (repeatable)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="CODE",
        help="run only the given rule codes (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    for code in list(args.disable) + list(args.only or []):
        try:
            rule_by_code(code)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if not args.demo and not args.paths:
        build_parser().print_usage()
        print("nothing to lint: give paths and/or --demo", file=sys.stderr)
        return 2
    reports: List[LintReport] = []
    if args.demo:
        reports.extend(_demo_reports())
    for path in _collect(args.paths):
        try:
            reports.append(_lint_path(path, args.disable, args.only))
        except (QuarryError, OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.as_json:
        payload = {
            "ok": all(report.ok for report in reports),
            "reports": [report.to_json() for report in reports],
        }
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.render())
    return 0 if all(report.ok for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
