"""Fixture-snippet tests pinning every QRY9xx rule, positive and negative.

Each test writes a small module to ``tmp_path``, runs the analyzer
over it alone, and asserts on the diagnostics — the static rules are
exercised against code written *to* violate them, since the package
itself lints clean.
"""

import textwrap

from repro.analysis.concurrency.driver import CodeLintContext, code_lint
from repro.analysis.concurrency.extract import extract_paths


def _lint(tmp_path, source, only=None):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    context = CodeLintContext.analyze(extract_paths([path]))
    report, __, __ = code_lint(context, only=only)
    return report


def _codes(report):
    return [diagnostic.code for diagnostic in report.diagnostics]


class TestLockOrderInversion:
    def test_ab_ba_cycle_detected(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Left:
                def __init__(self, right):
                    self._lock = new_lock("Left._lock")
                    self.right = right

                def poke(self):
                    with self._lock:
                        self.right.prod()  # calls: Right.prod

            class Right:
                def __init__(self, left):
                    self._lock = new_lock("Right._lock")
                    self.left = left

                def prod(self):
                    with self._lock:
                        pass

                def reverse(self):
                    with self._lock:
                        self.left.poke()  # calls: Left.poke
            """,
            only=["QRY901"],
        )
        assert _codes(report) == ["QRY901"]
        finding = report.diagnostics[0]
        assert "Left._lock" in finding.message
        assert "Right._lock" in finding.message
        assert finding.fingerprint.startswith("QRY901:")

    def test_consistent_order_is_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Outer:
                def __init__(self, inner):
                    self._lock = new_lock("Outer._lock")
                    self.inner = inner

                def poke(self):
                    with self._lock:
                        self.inner.prod()  # calls: Inner.prod

            class Inner:
                def __init__(self):
                    self._lock = new_lock("Inner._lock")

                def prod(self):
                    with self._lock:
                        pass
            """,
            only=["QRY901"],
        )
        assert _codes(report) == []


class TestSelfDeadlock:
    def test_nested_nonreentrant_with(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
            only=["QRY902"],
        )
        assert _codes(report) == ["QRY902"]

    def test_self_call_reacquire(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
            only=["QRY902"],
        )
        assert _codes(report) == ["QRY902"]
        assert "inner" in report.diagnostics[0].message

    def test_reentrant_is_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_rlock

            class Box:
                def __init__(self):
                    self._lock = new_rlock("Box._lock")

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
            only=["QRY902"],
        )
        assert _codes(report) == []


class TestBlockingUnderLock:
    def test_pool_submit_under_lock(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Runner:
                def __init__(self, pool):
                    self._lock = new_lock("Runner._lock")
                    self._pool = pool

                def go(self, task):
                    with self._lock:
                        return self._pool.submit(task).result()
            """,
            only=["QRY903"],
        )
        codes = _codes(report)
        assert codes == ["QRY903", "QRY903"]  # submit + result
        assert all("Runner._lock" in d.message for d in report.diagnostics)

    def test_transitive_blocking_via_helper(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            import pickle
            from repro.locks import new_lock

            class Cache:
                def __init__(self):
                    self._lock = new_lock("Cache._lock")

                def _encode(self, value):
                    return pickle.dumps(value)

                def put(self, value):
                    with self._lock:
                        return self._encode(value)
            """,
            only=["QRY903"],
        )
        assert _codes(report) == ["QRY903"]
        assert "pickling" in report.diagnostics[0].message
        assert "_encode" in report.diagnostics[0].message

    def test_blocking_outside_lock_is_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Runner:
                def __init__(self, pool):
                    self._lock = new_lock("Runner._lock")
                    self._pool = pool

                def go(self, task):
                    with self._lock:
                        pending = task
                    return self._pool.submit(pending).result()
            """,
            only=["QRY903"],
        )
        assert _codes(report) == []


class TestGuardedBy:
    SOURCE = """
        from repro.locks import new_lock

        class Counter:
            def __init__(self):
                self._lock = new_lock("Counter._lock")
                self._count = 0  # guarded-by: Counter._lock

            def bump(self):
                {bump_body}

            def read(self):
                with self._lock:
                    return self._count
    """

    def test_unguarded_write_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            self.SOURCE.format(bump_body="self._count += 1"),
            only=["QRY904"],
        )
        assert _codes(report) == ["QRY904"]
        assert "Counter._count" in report.diagnostics[0].message

    def test_guarded_write_clean(self, tmp_path):
        body = "with self._lock:\n                    self._count += 1"
        report = _lint(
            tmp_path,
            self.SOURCE.format(bump_body=body),
            only=["QRY904"],
        )
        assert _codes(report) == []

    def test_private_helper_inherits_callers_lock(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Counter:
                def __init__(self):
                    self._lock = new_lock("Counter._lock")
                    self._count = 0  # guarded-by: Counter._lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self._count += 1
            """,
            only=["QRY904"],
        )
        assert _codes(report) == []

    def test_writes_only_tolerates_bare_reads(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Cache:
                def __init__(self):
                    self._lock = new_lock("Cache._lock")
                    self._value = None  # guarded-by: Cache._lock [writes]

                def get(self):
                    value = self._value
                    if value is None:
                        with self._lock:
                            value = self._value
                            if value is None:
                                value = object()
                                self._value = value
                    return value

                def racy_write(self):
                    self._value = None
            """,
            only=["QRY904"],
        )
        assert _codes(report) == ["QRY904"]
        assert "racy_write" == report.diagnostics[0].attribute.split(".")[-1]


class TestProcessKernelPurity:
    def test_module_global_mutation_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            _CACHE = {}

            def process_chunk(rows):
                _CACHE[len(rows)] = rows
                return rows
            """,
            only=["QRY905"],
        )
        assert _codes(report) == ["QRY905"]
        assert "_CACHE" in report.diagnostics[0].message

    def test_global_statement_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            total = 0

            def process_sum(rows):
                global total
                total += len(rows)
                return rows
            """,
            only=["QRY905"],
        )
        codes = _codes(report)
        assert "QRY905" in codes
        assert any("global" in d.message for d in report.diagnostics)

    def test_pure_kernel_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            def process_chunk(rows):
                out = []
                for row in rows:
                    out.append(row * 2)
                return out
            """,
            only=["QRY905"],
        )
        assert _codes(report) == []

    def test_annotation_marks_nonconventional_name(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            _SEEN = []

            def chunk_worker(rows):  # process-kernel
                _SEEN.append(rows)
                return rows
            """,
            only=["QRY905"],
        )
        assert _codes(report) == ["QRY905"]


class TestManualAcquire:
    def test_acquire_without_finally_release(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")

                def risky(self):
                    self._lock.acquire()
                    do_work()
                    self._lock.release()
            """,
            only=["QRY906"],
        )
        assert _codes(report) == ["QRY906"]

    def test_finally_release_is_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Box:
                def __init__(self):
                    self._lock = new_lock("Box._lock")

                def careful(self):
                    self._lock.acquire()
                    try:
                        do_work()
                    finally:
                        self._lock.release()
            """,
            only=["QRY906"],
        )
        assert _codes(report) == []


class TestUnresolvedAcquire:
    def test_opaque_lock_reported_info(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            def touch(thing):
                with thing.custom_lock:
                    pass
            """,
            only=["QRY907"],
        )
        assert _codes(report) == ["QRY907"]
        assert report.ok  # INFO severity: does not fail the gate

    def test_lock_annotation_resolves_it(self, tmp_path):
        report = _lint(
            tmp_path,
            """
            from repro.locks import new_lock

            class Thing:
                def __init__(self):
                    self.custom_lock = new_lock("Thing.custom_lock")

            def touch(thing):
                with thing.custom_lock:  # lock: Thing.custom_lock
                    pass
            """,
            only=["QRY907"],
        )
        assert _codes(report) == []


class TestWaivers:
    def test_waived_finding_suppressed_and_stale_reported(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            textwrap.dedent(
                """
                from repro.locks import new_lock

                class Box:
                    def __init__(self):
                        self._lock = new_lock("Box._lock")

                    def outer(self):
                        with self._lock:
                            with self._lock:
                                pass
                """
            )
        )
        context = CodeLintContext.analyze(extract_paths([path]))
        report, __, __ = code_lint(context, only=["QRY902"])
        fingerprint = report.diagnostics[0].fingerprint
        waivers = {fingerprint: object(), "QRY902:stale:gone": object()}
        report, waived, unused = code_lint(
            context, only=["QRY902"], waivers=waivers
        )
        assert report.ok and not report.diagnostics
        assert [d.fingerprint for d in waived] == [fingerprint]
        assert unused == ["QRY902:stale:gone"]
