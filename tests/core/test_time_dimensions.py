"""Tests for synthesised calendar (time) dimensions."""

import pytest

from repro import Quarry, RequirementBuilder
from repro.core.interpreter import Interpreter
from repro.core.interpreter.md_generation import (
    is_time_dimension,
    time_level_expressions,
)
from repro.engine import Database, Executor, OlapQuery, query_star
from repro.mdmodel.constraints import is_sound
from repro.sources import tpch


def orderdate_requirement(requirement_id="T1"):
    return (
        RequirementBuilder(requirement_id, "revenue per order date")
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "SUM",
        )
        .per("Orders_o_orderdate")
        .build()
    )


@pytest.fixture(scope="module")
def design():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return interpreter.interpret(orderdate_requirement())


class TestMDSide:
    def test_calendar_dimension_created(self, design):
        schema = design.md_schema
        assert "o_orderdate" in schema.dimensions
        dimension = schema.dimension("o_orderdate")
        assert is_time_dimension(dimension)
        assert set(dimension.levels) == {
            "o_orderdate", "o_orderdate_month",
            "o_orderdate_quarter", "o_orderdate_year",
        }

    def test_hierarchy_rolls_up_to_year(self, design):
        dimension = design.md_schema.dimension("o_orderdate")
        assert dimension.rolls_up("o_orderdate", "o_orderdate_year")
        assert dimension.rolls_up("o_orderdate_month", "o_orderdate_quarter")

    def test_fact_links_at_date_granularity(self, design):
        fact = design.md_schema.fact("fact_table_revenue")
        link = fact.link_for("o_orderdate")
        assert link.level == "o_orderdate"
        assert fact.grain == ["o_orderdate"]

    def test_schema_sound(self, design):
        assert is_sound(design.md_schema)

    def test_non_time_dimensions_unaffected(self, design):
        assert not is_time_dimension(
            Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
            .interpret(
                RequirementBuilder("X", "per part")
                .measure("q", "Lineitem_l_quantity", "SUM")
                .per("Part_p_name")
                .build()
            )
            .md_schema.dimension("Part")
        )

    def test_level_expressions(self):
        pairs = dict(time_level_expressions("d"))
        assert pairs["d_year"] == "year(d)"
        assert pairs["d_month"] == "year(d) * 100 + month(d)"
        assert pairs["d_quarter"] == "year(d) * 10 + quarter(d)"


class TestEtlSide:
    def test_branch_derives_calendar_keys(self, design):
        flow = design.etl_flow
        assert flow.has_node("DERIVE_o_orderdate_year")
        assert flow.inputs("LOAD_dim_o_orderdate") == ["DISTINCT_dim_o_orderdate"]
        assert flow.validate() == []

    def test_executes_with_correct_rollups(self, design):
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.15, seed=13))
        Executor(database).execute(design.etl_flow)
        rows = database.scan("dim_o_orderdate").rows
        assert rows
        for row in rows:
            date = row["o_orderdate"]
            assert row["o_orderdate_year"] == date.year
            assert row["o_orderdate_month"] == date.year * 100 + date.month
            quarter = (date.month - 1) // 3 + 1
            assert row["o_orderdate_quarter"] == date.year * 10 + quarter
        # Distinct: one row per distinct date.
        dates = [row["o_orderdate"] for row in rows]
        assert len(dates) == len(set(dates))


class TestEndToEnd:
    def test_rollup_by_year_through_quarry(self):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(orderdate_requirement())
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.15, seed=14))
        quarry.deploy("native", source_database=database)
        # Roll the daily fact up to years via the calendar dimension.
        answer = query_star(
            database,
            OlapQuery(
                fact_table="fact_table_revenue",
                group_by=["o_orderdate_year"],
                aggregates=[("SUM", "revenue", "total")],
                joins=[("dim_o_orderdate", "o_orderdate", "o_orderdate")],
            ),
        )
        got = {row["o_orderdate_year"]: row["total"] for row in answer.rows}
        # Independent recomputation.
        orders = {
            r["o_orderkey"]: r["o_orderdate"].year
            for r in database.scan("orders").rows
        }
        expected = {}
        for row in database.scan("lineitem").rows:
            year = orders[row["l_orderkey"]]
            revenue = row["l_extendedprice"] * (1 - row["l_discount"])
            expected[year] = expected.get(year, 0.0) + revenue
        assert set(got) == set(expected)
        for year in got:
            assert got[year] == pytest.approx(expected[year])

    def test_two_requirements_conform_on_calendar(self):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(orderdate_requirement("T1"))
        second = (
            RequirementBuilder("T2", "quantity per order date")
            .measure("quantity", "Lineitem_l_quantity", "SUM")
            .per("Orders_o_orderdate")
            .build()
        )
        quarry.add_requirement(second)
        md, __ = quarry.unified_design()
        calendar_dims = [d for d in md.dimensions if "o_orderdate" in d]
        assert calendar_dims == ["o_orderdate"]
        assert quarry.satisfiability_problems() == []

    def test_ddl_includes_calendar_levels(self, design):
        from repro.core.deployer import ddl

        script = ddl.generate(design.md_schema)
        assert "CREATE TABLE dim_o_orderdate (" in script
        assert "o_orderdate_year BIGINT" in script
