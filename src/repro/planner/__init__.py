"""Statistics-driven cost-based planning for the columnar engine.

The package turns the catalog statistics of :mod:`repro.engine.stats`
into execution decisions:

* :mod:`repro.planner.estimator` — a per-node cardinality estimator
  (histogram/distinct-count selectivities, containment join estimates),
* :mod:`repro.planner.rewrite` — the rewrite pipeline producing the
  annotated :class:`~repro.planner.rewrite.Plan` that
  ``Executor(mode="planned")`` runs: selection/projection pushdown,
  join-chain reordering, hash-join build-side choice and a fusion veto
  for tiny inputs.

Every rewrite is equivalence-gated by the ``planned`` fuzz trial kind
(:mod:`repro.fuzz.planoracle`) and the planner benchmark scenario in
``benchmarks/run_engine.py``.
"""

from repro.planner.estimator import NodeEstimate, estimate_flow
from repro.planner.rewrite import Plan, plan_flow

__all__ = ["NodeEstimate", "Plan", "estimate_flow", "plan_flow"]
