"""Partitioned kernels for the parallel columnar engine.

``Executor(mode="parallel")`` splits each relation into contiguous
row-range chunks and drives the per-chunk kernels below across a worker
pool.  The contract of every kernel is **byte-identical results** to
the serial columnar engine:

* Chunks are contiguous and processed results are merged *in chunk
  order*, so row order — and with it NULL placement, sort stability
  and ``distinct``/group first-occurrence order — is exactly the
  serial order.
* Join probes run against one serially-built right-side index; each
  chunk emits global row positions, so the merged output is the serial
  ``left order × right insertion order``.
* Aggregation parallelises only the grouping scan.  Chunks return
  *member position lists*, merged order-preservingly into the serial
  group layout; the aggregate functions then fold the exact serial
  value sequences, which keeps floating-point results bit-identical
  (float addition is not associative — merging partial sums would
  not be).
* Errors keep parity: chunk results are collected in chunk order and
  the earliest chunk's exception wins, which is the chunk holding the
  globally-first failing row; unhashable-key reporting scans the full
  key columns (:func:`repro.engine.columnar.unhashable_key_error`), so
  messages are independent of which chunk tripped first.

The kernels are pure functions over explicit arguments and come in two
transport shapes:

* **Thread kernels** (:func:`filter_chunk`, :func:`derive_chunk`,
  :func:`join_chunk`, :func:`group_chunk`, :func:`run_chain_chunk`)
  share column lists zero-copy across a ``ThreadPoolExecutor``; on
  CPython the GIL bounds their speedup.
* **Process kernels** (the ``process_*_chunk`` functions) run on a
  ``ProcessPoolExecutor``.  Their arguments must pickle, so they take
  *expression source text* instead of compiled closures — workers
  recompile behind :func:`repro.expressions.compiler.compile_expression`'s
  per-process LRU — and column data arrives through the shared-memory
  transport of :mod:`repro.engine.shm` (only the read-set of each
  kernel is shipped; fixed-width columns ride shared memory, object
  columns pickle per chunk).  Workers return plain positions/values;
  output gathering stays in the parent, so floats and row order never
  pass through a lossy representation.

Fused chains compile from a :class:`ChainSpec` — a frozen, picklable,
hashable description (expression *texts* plus resolved slot indices) —
via :func:`compile_chain_spec`, memoised per process, so the same chain
compiles once in the parent and once in each worker that executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.columnar import ColumnarRelation
from repro.engine.shm import SharedObjectHandle, hydrate_chunk
from repro.expressions.compiler import compile_expression
from repro.expressions.types import ScalarType

#: Default worker-pool width of ``Executor(mode="parallel")``.
DEFAULT_WORKERS = 4

#: Relations smaller than this run on the serial columnar kernels —
#: below it, chunk bookkeeping costs more than the scan itself.
DEFAULT_PARALLEL_ROW_THRESHOLD = 4096

#: The process pool's serial-fallback threshold is higher: a process
#: dispatch pays pickling, shared-memory packing and result transport
#: on top of the chunk bookkeeping, so the break-even row count is
#: roughly an order of magnitude above the thread pool's.
DEFAULT_PROCESS_ROW_THRESHOLD = 32768


def default_row_threshold(pool: str) -> int:
    """The serial-fallback row threshold for a pool kind."""
    if pool == "process":
        return DEFAULT_PROCESS_ROW_THRESHOLD
    return DEFAULT_PARALLEL_ROW_THRESHOLD


def chunk_ranges(length: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(length)`` into ``workers`` contiguous ranges.

    Sizes differ by at most one row; fewer ranges come back when there
    are fewer rows than workers.  A single range signals the caller to
    stay on the serial path.
    """
    if workers <= 1 or length <= 1:
        return [(0, length)]
    count = min(workers, length)
    base, extra = divmod(length, count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def slice_relation(
    relation: ColumnarRelation,
    start: int,
    stop: int,
    names: Optional[Sequence[str]] = None,
) -> ColumnarRelation:
    """The rows ``[start, stop)`` as a relation (column-slice copies).

    ``names`` restricts the slice to a read-set: only those columns are
    copied (and appear in the result's schema) — chunk tasks that only
    read a few columns must not pay for the rest.
    """
    selected = relation.schema if names is None else names
    return ColumnarRelation(
        schema={name: relation.schema[name] for name in selected},
        columns={
            name: relation.columns[name][start:stop] for name in selected
        },
        length=stop - start,
    )


def concat_parts(
    schema: Dict[str, object], parts: List[ColumnarRelation]
) -> ColumnarRelation:
    """Merge chunk results in chunk order (one pass per column)."""
    columns: Dict[str, list] = {name: [] for name in schema}
    length = 0
    for part in parts:
        for name in schema:
            columns[name].extend(part.columns[name])
        length += part.length
    return ColumnarRelation(
        schema=dict(schema), columns=columns, length=length
    )


# -- selection / derivation ---------------------------------------------------


def filter_chunk(
    function, argument_columns: List[list], start: int, stop: int
) -> List[int]:
    """Global positions of the chunk's rows the predicate keeps."""
    chunk = [column[start:stop] for column in argument_columns]
    return [
        start + offset
        for offset, value in enumerate(map(function, *chunk))
        if value is True
    ]


def derive_chunk(
    function, argument_columns: List[list], start: int, stop: int
) -> list:
    """The derived values of the chunk's rows, in row order."""
    chunk = [column[start:stop] for column in argument_columns]
    return list(map(function, *chunk))


def process_filter_chunk(expression: str, payload, start: int) -> List[int]:
    """Process-pool filter kernel: recompile, evaluate, global positions.

    ``payload`` transports the predicate's argument columns (rows
    ``[start, start + n)``) in ``compiled.attributes`` order.
    """
    function = compile_expression(expression).column_fn
    chunk = hydrate_chunk(payload)
    return [
        start + offset
        for offset, value in enumerate(map(function, *chunk))
        if value is True
    ]


def process_derive_chunk(expression: str, payload, start: int = 0) -> list:
    """Process-pool derive kernel: recompile and map over the chunk.

    ``start`` is unused — kept for the uniform expression-kernel
    signature ``(text, payload, start)`` the dispatcher relies on.
    """
    function = compile_expression(expression).column_fn
    chunk = hydrate_chunk(payload)
    return list(map(function, *chunk))


# -- join ---------------------------------------------------------------------


def build_join_index(right: ColumnarRelation, right_keys: List[str]):
    """The serial right-side index the probe chunks share.

    Single-column keys keep the unique/duplicates split of the serial
    kernel (so the no-duplicate fast path survives partitioning); tuple
    keys build the position-list index.  ``TypeError`` on unhashable
    keys propagates for the caller to wrap.
    """
    if len(right_keys) == 1:
        unique: Dict[object, int] = {}
        duplicates: Dict[object, List[int]] = {}
        for position, key in enumerate(right.columns[right_keys[0]]):
            if key is None:
                continue
            if key in unique:
                duplicates.setdefault(key, [unique[key]]).append(position)
            else:
                unique[key] = position
        return ("single", unique, duplicates)
    index: Dict[tuple, List[int]] = {}
    key_columns = [right.columns[key] for key in right_keys]
    for position, key in enumerate(zip(*key_columns)):
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(position)
    return ("multi", index)


def probe_positions(
    index,
    key_columns: List[list],
    left_outer: bool,
    base: int,
) -> Tuple[List[int], List[int]]:
    """Matched (left, right) position pairs for one chunk's key slices.

    ``key_columns`` hold only the chunk's rows; emitted left positions
    are global (``base`` + local offset), exactly as the serial probe
    would visit them.
    """
    left_take: List[int] = []
    right_take: List[int] = []  # -1 marks an outer-join NULL slot
    if index[0] == "single":
        __, unique, duplicates = index
        key_column = key_columns[0]
        if not duplicates and not left_outer:
            get = unique.get
            for offset, key in enumerate(key_column):
                if key is None:
                    continue
                match = get(key)
                if match is not None:
                    left_take.append(base + offset)
                    right_take.append(match)
            return left_take, right_take
        for offset, key in enumerate(key_column):
            matches = None
            if key is not None:
                matches = duplicates.get(key)
                if matches is None and key in unique:
                    left_take.append(base + offset)
                    right_take.append(unique[key])
                    continue
            if matches:
                for match in matches:
                    left_take.append(base + offset)
                    right_take.append(match)
            elif left_outer:
                left_take.append(base + offset)
                right_take.append(-1)
        return left_take, right_take
    __, mapping = index
    for offset, key in enumerate(zip(*key_columns)):
        matches = (
            mapping.get(key)
            if not any(part is None for part in key)
            else None
        )
        if matches:
            for match in matches:
                left_take.append(base + offset)
                right_take.append(match)
        elif left_outer:
            left_take.append(base + offset)
            right_take.append(-1)
    return left_take, right_take


def gather_join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    payload: List[str],
    schema: Dict[str, object],
    left_outer: bool,
    left_take: List[int],
    right_take: List[int],
) -> ColumnarRelation:
    """Materialise join output rows from matched position pairs.

    Identical to the serial ``hash_join`` gather, so chunked joins are
    byte-identical however the positions were produced.
    """
    columns: Dict[str, list] = {
        name: [column[i] for i in left_take]
        for name, column in left.columns.items()
    }
    has_outer_slots = left_outer and -1 in right_take
    for name in payload:
        column = right.columns[name]
        if has_outer_slots:
            columns[name] = [
                column[j] if j >= 0 else None for j in right_take
            ]
        else:
            columns[name] = [column[j] for j in right_take]
    return ColumnarRelation(
        schema=dict(schema), columns=columns, length=len(left_take)
    )


def join_chunk(
    index,
    left: ColumnarRelation,
    right: ColumnarRelation,
    left_keys: List[str],
    payload: List[str],
    schema: Dict[str, object],
    left_outer: bool,
    start: int,
    stop: int,
) -> ColumnarRelation:
    """Probe one left chunk and gather its slice of the join output."""
    key_columns = [left.columns[key][start:stop] for key in left_keys]
    left_take, right_take = probe_positions(
        index, key_columns, left_outer, start
    )
    return gather_join(
        left, right, payload, schema, left_outer, left_take, right_take
    )


def process_probe_chunk(
    index_handle: SharedObjectHandle,
    key_payload,
    left_outer: bool,
    start: int,
) -> Tuple[List[int], List[int]]:
    """Process-pool probe kernel: positions only, gather stays parent-side.

    The serially-built index arrives as one shared pickled blob (not a
    per-task copy); the chunk transports only the left key columns.
    """
    index = index_handle.load()
    key_columns = hydrate_chunk(key_payload)
    return probe_positions(index, key_columns, left_outer, start)


# -- aggregation --------------------------------------------------------------


def group_chunk(
    group_columns: List[list], start: int, stop: int
) -> Tuple[List[tuple], List[List[int]]]:
    """Group one chunk: local first-seen key order, global positions.

    ``TypeError`` on unhashable group keys propagates for the caller to
    wrap.
    """
    chunk_columns = [column[start:stop] for column in group_columns]
    return _group_local(chunk_columns, start)


def _group_local(
    chunk_columns: List[list], base: int
) -> Tuple[List[tuple], List[List[int]]]:
    group_of: Dict[tuple, int] = {}
    keys_in_order: List[tuple] = []
    members: List[List[int]] = []
    for offset, key in enumerate(zip(*chunk_columns)):
        slot = group_of.get(key)
        if slot is None:
            group_of[key] = slot = len(members)
            keys_in_order.append(key)
            members.append([])
        members[slot].append(base + offset)
    return keys_in_order, members


def process_group_chunk(
    key_payload, start: int
) -> Tuple[List[tuple], List[List[int]]]:
    """Process-pool grouping kernel over transported key columns."""
    return _group_local(hydrate_chunk(key_payload), start)


def merge_group_chunks(
    parts: List[Tuple[List[tuple], List[List[int]]]],
) -> Tuple[List[tuple], List[List[int]]]:
    """Fold chunk groupings into the serial group layout.

    Chunk-order iteration over chunk-local first-seen key orders yields
    the global first-seen order; extending member lists in the same
    sweep keeps every group's positions in ascending row order — the
    aggregate fold then consumes exactly the serial value sequences.
    """
    group_of: Dict[tuple, int] = {}
    keys_in_order: List[tuple] = []
    members: List[List[int]] = []
    for chunk_keys, chunk_members in parts:
        for key, positions in zip(chunk_keys, chunk_members):
            slot = group_of.get(key)
            if slot is None:
                group_of[key] = len(members)
                keys_in_order.append(key)
                members.append(positions)
            else:
                members[slot].extend(positions)
    return keys_in_order, members


# -- fused chains -------------------------------------------------------------


@dataclass(frozen=True)
class ChainSpec:
    """A picklable, hashable description of one fused unary chain.

    ``steps`` hold expression *source text* plus resolved slot indices
    — never compiled closures — so a spec crosses process boundaries
    and keys the per-process compile cache.  ``input_names`` is the
    chain's **read-set**: the input columns the steps and the output
    actually touch, not the whole input schema (chunk tasks slice and
    transport only these).
    """

    input_names: Tuple[str, ...]
    #: ("filter", text, argument_positions, counter) or
    #: ("derive", text, argument_positions, output_slot)
    steps: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    output_schema: Tuple[Tuple[str, ScalarType], ...]
    output_positions: Tuple[int, ...]
    filter_count: int


class ChainProgram:
    """A fused single-pass program over an input relation.

    ``steps`` interleave compiled filters and derivations in chain
    order; pure structural stages (projection, extraction, rename) were
    resolved at build time into the slot mapping, so they cost nothing
    at runtime.
    """

    def __init__(self, spec: ChainSpec) -> None:
        self.spec = spec
        self.input_names = list(spec.input_names)
        self.steps = [
            (kind, compile_expression(text).column_fn, positions, slot)
            for kind, text, positions, slot in spec.steps
        ]
        self.output_schema: Dict[str, ScalarType] = dict(spec.output_schema)
        self.output_positions = list(spec.output_positions)
        self.filter_count = spec.filter_count

    def run(self, relation: ColumnarRelation):
        filter_counts = [0] * self.filter_count
        if not self.steps:
            # Pure structural chain: zero-copy column re-selection.
            source = [relation.columns[name] for name in self.input_names]
            columns = {
                name: source[position]
                for name, position in zip(
                    self.output_schema, self.output_positions
                )
            }
            result = ColumnarRelation(
                schema=dict(self.output_schema),
                columns=columns,
                length=relation.length,
            )
            return result, filter_counts
        source = [relation.columns[name] for name in self.input_names]
        if source:
            row_iter = zip(*source)
        else:
            row_iter = (() for _ in range(relation.length))
        kept: List[tuple] = []
        steps = self.steps
        for values in row_iter:
            survived = True
            for step in steps:
                if step[0] == "filter":
                    __, function, positions, counter = step
                    if function(*[values[p] for p in positions]) is not True:
                        survived = False
                        break
                    filter_counts[counter] += 1
                else:
                    __, function, positions, __slot = step
                    values = (*values, function(*[values[p] for p in positions]))
            if survived:
                kept.append(values)
        columns = {
            name: [values[position] for values in kept]
            for name, position in zip(
                self.output_schema, self.output_positions
            )
        }
        result = ColumnarRelation(
            schema=dict(self.output_schema),
            columns=columns,
            length=len(kept),
        )
        return result, filter_counts


@lru_cache(maxsize=512)
def compile_chain_spec(spec: ChainSpec) -> ChainProgram:
    """Compile a chain spec, memoised per process.

    In the parent this deduplicates repeated chains across ``execute()``
    calls; in a pool worker it is the per-process cache the recompile
    story relies on — each worker compiles a given chain exactly once.
    """
    return ChainProgram(spec)


def run_chain_chunk(program, relation: ColumnarRelation, start: int, stop: int):
    """Run a fused chain program over one chunk of its input.

    Slices only the program's read-set — columns the chain neither
    reads nor outputs are not copied.
    """
    return program.run(
        slice_relation(relation, start, stop, names=program.input_names)
    )


def process_chain_chunk(spec: ChainSpec, payload, length: int):
    """Process-pool chain kernel: rebuild the program, run the chunk.

    ``payload`` transports ``spec.input_names`` (in order) for the
    chunk's rows; the compiled program comes from the worker's own
    :func:`compile_chain_spec` cache.
    """
    program = compile_chain_spec(spec)
    columns = hydrate_chunk(payload)
    relation = ColumnarRelation(
        schema={
            name: program.output_schema.get(name)
            for name in program.input_names
        },
        columns=dict(zip(program.input_names, columns)),
        length=length,
    )
    return program.run(relation)
