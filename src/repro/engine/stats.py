"""Table and column statistics for cost-based planning.

Collects, per table, what a classical optimizer keeps in its catalog:
row count, and per column the distinct count, null fraction, min/max
and a small equi-width histogram (numeric and date columns — dates are
bucketed via their ordinal).  The planner's cardinality estimator
(:mod:`repro.planner.estimator`) turns these into selectivities.

Collection is a single pass over the columnar view of each table and is
cached per table, keyed on the database's write-generation counter
(:meth:`repro.engine.database.Database.table_generation`) — the same
invalidation pattern as the ontology view caches: a write bumps the
counter, the next ``table_stats`` call recollects, unchanged tables pay
nothing.  Databases without generation counters (the fuzzer's
``LooseDatabase``) are still supported; their stats are simply
recollected on every request.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.expressions.types import ScalarType
from repro.locks import new_lock

#: Bucket count of the equi-width histograms; small on purpose — the
#: estimator only needs coarse shape, and collection stays O(rows).
HISTOGRAM_BUCKETS = 16

#: Types whose values map onto a numeric line (histogram-able).
_ORDERED_TYPES = (ScalarType.INTEGER, ScalarType.DECIMAL, ScalarType.DATE)


def _to_number(value) -> Optional[float]:
    """A value's position on the number line, or ``None``."""
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


@dataclass(frozen=True)
class Histogram:
    """Equi-width bucket counts over ``[low, high]`` (numeric line)."""

    low: float
    high: float
    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of values ``<`` (or ``<=``) ``value``.

        Linear interpolation within the bucket the value falls into —
        the standard equi-width estimate.
        """
        if self.total == 0:
            return 0.0
        if value < self.low:
            return 0.0
        if value > self.high:
            return 1.0
        if self.high == self.low:
            return 1.0 if (inclusive and value >= self.low) else 0.0
        width = (self.high - self.low) / len(self.counts)
        position = (value - self.low) / width
        bucket = min(int(position), len(self.counts) - 1)
        within = position - bucket
        covered = sum(self.counts[:bucket]) + self.counts[bucket] * within
        return min(1.0, covered / self.total)

    def fraction_between(self, low: float, high: float) -> float:
        """Estimated fraction of values in ``[low, high]``."""
        if high < low:
            return 0.0
        return max(
            0.0,
            self.fraction_below(high, inclusive=True)
            - self.fraction_below(low, inclusive=False),
        )


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column."""

    name: str
    scalar_type: ScalarType
    distinct: int
    null_fraction: float
    minimum: Optional[float] = None  # number-line position (see _to_number)
    maximum: Optional[float] = None
    histogram: Optional[Histogram] = None


@dataclass(frozen=True)
class TableStats:
    """Statistics of one table: row count plus per-column stats."""

    table: str
    rows: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def collect_column_stats(
    name: str,
    scalar_type: ScalarType,
    values: List[object],
    buckets: int = HISTOGRAM_BUCKETS,
) -> ColumnStats:
    """One-pass statistics over a column array."""
    total = len(values)
    non_null = [value for value in values if value is not None]
    try:
        distinct = len(set(non_null))
    except TypeError:  # unhashable adversarial values (fuzzing)
        distinct = len(non_null)
    null_fraction = 1.0 - len(non_null) / total if total else 0.0
    minimum = maximum = None
    histogram = None
    if scalar_type in _ORDERED_TYPES and non_null:
        numbers = [_to_number(value) for value in non_null]
        numbers = [number for number in numbers if number is not None]
        if numbers:
            minimum, maximum = min(numbers), max(numbers)
            counts = [0] * buckets
            if maximum > minimum:
                scale = buckets / (maximum - minimum)
                for number in numbers:
                    bucket = int((number - minimum) * scale)
                    counts[min(bucket, buckets - 1)] += 1
            else:
                counts[0] = len(numbers)
            histogram = Histogram(
                low=minimum, high=maximum, counts=tuple(counts)
            )
    return ColumnStats(
        name=name,
        scalar_type=scalar_type,
        distinct=distinct,
        null_fraction=null_fraction,
        minimum=minimum,
        maximum=maximum,
        histogram=histogram,
    )


def collect_table_stats(
    table: str,
    schema: Dict[str, ScalarType],
    columns: Dict[str, list],
    length: int,
    buckets: int = HISTOGRAM_BUCKETS,
) -> TableStats:
    return TableStats(
        table=table,
        rows=length,
        columns={
            name: collect_column_stats(
                name, scalar_type, columns.get(name, []), buckets
            )
            for name, scalar_type in schema.items()
        },
    )


class StatisticsCatalog:
    """Generation-cached per-table statistics over a database.

    Works against :class:`repro.engine.database.Database` (cached via
    the table generation counter) and any duck-typed stand-in offering
    ``scan_columns`` (no counter — stats recollected per request).
    """

    def __init__(self, database, buckets: int = HISTOGRAM_BUCKETS) -> None:
        self._database = database
        self._buckets = buckets
        self._cache: Dict[str, Tuple[int, TableStats]] = {}  # guarded-by: StatisticsCatalog._lock
        #: Guards the cache and fill-lock maps only — never held while
        #: collecting.  Collection runs under a per-table fill lock, so
        #: workers asking for the same table collect once while
        #: different tables collect in parallel; the old single-lock
        #: scheme serialised every table's collection behind whichever
        #: ran first *and* nested the catalog lock over the engine's
        #: per-table columnar locks.
        self._lock = new_lock("StatisticsCatalog._lock")
        self._fill_locks: Dict[str, object] = {}  # guarded-by: StatisticsCatalog._lock

    def table_stats(self, table: str) -> TableStats:
        """Statistics for a table; raises ``UnknownTableError`` like the
        underlying database when the table does not exist.

        Thread-safe: the collection pass runs under a per-table fill
        lock with a double-check, so a worker pool sharing one catalog
        never observes a half-filled entry and never collects twice for
        the same generation — and a slow collection of one table never
        blocks lookups or collections of any other.
        """
        generation = self._generation(table)
        if generation is None:
            return self._collect(table)
        with self._lock:
            cached = self._cache.get(table)
            if cached is not None and cached[0] == generation:
                return cached[1]
            if table not in self._fill_locks:
                self._fill_locks[table] = new_lock("StatisticsCatalog.fill")
            fill = self._fill_locks[table]
        with fill:
            with self._lock:
                cached = self._cache.get(table)
                if cached is not None and cached[0] == generation:
                    return cached[1]
            stats = self._collect(table)
            with self._lock:
                self._cache[table] = (generation, stats)
        return stats

    def _collect(self, table: str) -> TableStats:
        relation = self._database.scan_columns(table)  # calls: Database.scan_columns
        return collect_table_stats(
            table,
            dict(relation.schema),
            relation.columns,
            relation.length,
            self._buckets,
        )

    def has_table(self, table: str) -> bool:
        has = getattr(self._database, "has_table", None)
        if has is None:
            return True
        return has(table)

    def _generation(self, table: str) -> Optional[int]:
        table_generation = getattr(self._database, "table_generation", None)
        if table_generation is None:
            return None
        return table_generation(table)
