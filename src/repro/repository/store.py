"""JSON-file persistence for a :class:`DocumentStore`.

One JSON file per store: ``{"name": ..., "collections": {name: [docs]},
"indexes": {name: [paths]}}``.  Loading recreates collections, index
declarations and documents verbatim (files without an ``"indexes"`` key
load fine); documents must be JSON-serialisable (the metadata layer
guarantees this by converting XML artefacts through
:mod:`repro.xformats.xmljson` first).
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.errors import RepositoryError
from repro.repository.documents import DocumentStore


def save(store: DocumentStore, path) -> None:
    """Write the store atomically (write-then-rename).

    The in-memory view is captured via :meth:`DocumentStore.snapshot`,
    which holds every per-collection lock (in stable order) for the
    duration of the read — a save concurrent with writing sessions
    persists a consistent point in time, never a torn one.
    """
    snapshot = store.snapshot()
    payload = {
        "name": store.name,
        "collections": snapshot["collections"],
        "indexes": snapshot["indexes"],
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as file:
            json.dump(payload, file, indent=1, sort_keys=True)
        os.replace(temp_path, path)
    except Exception:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def load(path) -> DocumentStore:
    """Read a store back from disk."""
    try:
        with open(path, "r", encoding="utf-8") as file:
            payload = json.load(file)
    except (OSError, json.JSONDecodeError) as exc:
        raise RepositoryError(f"cannot load document store: {exc}") from exc
    if not isinstance(payload, dict) or "collections" not in payload:
        raise RepositoryError("malformed document store file")
    store = DocumentStore(name=payload.get("name", "quarry"))
    indexes = payload.get("indexes", {})
    for collection_name, documents in payload["collections"].items():
        collection = store.collection(collection_name)
        for index_path in indexes.get(collection_name, []):
            collection.create_index(index_path)
        # One lock hold per collection: a reader that grabs the store
        # mid-load sees each collection either empty or complete.
        collection.bulk_load(documents)
    return store
