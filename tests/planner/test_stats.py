"""Tests of the statistics catalog backing the cost-based planner."""

from repro.engine import Database, TableDef
from repro.engine.stats import (
    Histogram,
    StatisticsCatalog,
    collect_column_stats,
)
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


def test_histogram_fraction_below_interpolates():
    # 100 values uniform on [0, 100) in four buckets of 25.
    histogram = Histogram(low=0.0, high=100.0, counts=(25, 25, 25, 25))
    assert histogram.fraction_below(-1.0, inclusive=False) == 0.0
    assert histogram.fraction_below(1000.0, inclusive=False) == 1.0
    assert abs(histogram.fraction_below(50.0, inclusive=False) - 0.5) < 1e-9
    # Interpolation inside a bucket: 12.5 is halfway through bucket 0.
    assert abs(histogram.fraction_below(12.5, inclusive=False) - 0.125) < 1e-9


def test_histogram_fraction_between():
    histogram = Histogram(low=0.0, high=100.0, counts=(25, 25, 25, 25))
    assert abs(histogram.fraction_between(25.0, 75.0) - 0.5) < 1e-9
    assert histogram.fraction_between(75.0, 25.0) == 0.0
    assert histogram.fraction_between(-10.0, 200.0) == 1.0


def test_histogram_single_value_column():
    histogram = Histogram(low=7.0, high=7.0, counts=(5,))
    assert histogram.fraction_below(7.0, inclusive=True) == 1.0
    assert histogram.fraction_below(7.0, inclusive=False) == 0.0
    assert histogram.fraction_below(6.0, inclusive=True) == 0.0


def test_collect_column_stats_numeric():
    values = [1, 2, 2, 3, None, 4]
    stats = collect_column_stats("k", INT, values, buckets=4)
    assert stats.distinct == 4
    assert abs(stats.null_fraction - 1 / 6) < 1e-9
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.histogram is not None
    assert stats.histogram.total == 5  # nulls are not bucketed


def test_collect_column_stats_strings_have_no_histogram():
    stats = collect_column_stats("s", STR, ["a", "b", "a"])
    assert stats.distinct == 2
    assert stats.histogram is None
    assert stats.minimum is None and stats.maximum is None


def test_collect_column_stats_empty():
    stats = collect_column_stats("k", INT, [])
    assert stats.distinct == 0
    assert stats.null_fraction == 0.0
    assert stats.histogram is None


def _database():
    database = Database()
    database.create_table(TableDef("t", {"k": INT, "v": DEC}))
    database.insert_many(
        "t", [{"k": index, "v": float(index)} for index in range(10)]
    )
    return database


def test_catalog_caches_until_generation_bumps():
    database = _database()
    catalog = StatisticsCatalog(database)
    first = catalog.table_stats("t")
    assert first.rows == 10
    # No writes: the cached object itself is returned.
    assert catalog.table_stats("t") is first
    database.insert_many("t", [{"k": 10, "v": 10.0}])
    refreshed = catalog.table_stats("t")
    assert refreshed is not first
    assert refreshed.rows == 11


def test_catalog_without_generation_counter_recollects():
    """Duck-typed databases without ``table_generation`` (the fuzzer's
    LooseDatabase) still work — stats are simply never cached."""
    from repro.fuzz.datagen import LooseDatabase, TableSpec

    database = LooseDatabase.from_specs(
        [TableSpec(name="t", schema={"k": INT}, rows=[{"k": 1}, {"k": 2}])]
    )
    assert getattr(database, "table_generation", None) is None
    catalog = StatisticsCatalog(database)
    first = catalog.table_stats("t")
    assert first.rows == 2
    assert catalog.table_stats("t") is not first  # recollected, not cached
