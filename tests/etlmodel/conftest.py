"""Shared ETL fixtures: a mini-TPC-H revenue flow like the paper's Figure 3."""

import pytest

from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Extraction,
    Join,
    Loader,
    Selection,
)
from repro.sources import tpch


@pytest.fixture(scope="session")
def tpch_schema():
    return tpch.schema()


def build_revenue_flow(name="revenue", slicer="n_name = 'SPAIN'"):
    """lineitem |><| orders |><| customer |><| nation, filter, derive, agg.

    The joins take the fact side as the left input, matching what the
    ETL generator emits.
    """
    flow = EtlFlow(name=name, requirements={"IR1"})
    flow.add(Datastore("DATASTORE_lineitem", table="lineitem"))
    flow.add(Extraction(
        "EXTRACTION_lineitem",
        columns=("l_orderkey", "l_extendedprice", "l_discount"),
    ))
    flow.connect("DATASTORE_lineitem", "EXTRACTION_lineitem")
    flow.add(Datastore("DATASTORE_orders", table="orders"))
    flow.add(Extraction("EXTRACTION_orders", columns=("o_orderkey", "o_custkey")))
    flow.connect("DATASTORE_orders", "EXTRACTION_orders")
    flow.add(Join(
        "JOIN_lineitem_orders",
        left_keys=("l_orderkey",),
        right_keys=("o_orderkey",),
    ))
    flow.connect("EXTRACTION_lineitem", "JOIN_lineitem_orders")
    flow.connect("EXTRACTION_orders", "JOIN_lineitem_orders")
    flow.add(Datastore("DATASTORE_customer", table="customer"))
    flow.add(Extraction("EXTRACTION_customer", columns=("c_custkey", "c_nationkey")))
    flow.connect("DATASTORE_customer", "EXTRACTION_customer")
    flow.add(Join(
        "JOIN_orders_customer",
        left_keys=("o_custkey",),
        right_keys=("c_custkey",),
    ))
    flow.connect("JOIN_lineitem_orders", "JOIN_orders_customer")
    flow.connect("EXTRACTION_customer", "JOIN_orders_customer")
    flow.add(Datastore("DATASTORE_nation", table="nation"))
    flow.add(Extraction("EXTRACTION_nation", columns=("n_nationkey", "n_name")))
    flow.connect("DATASTORE_nation", "EXTRACTION_nation")
    flow.add(Join(
        "JOIN_customer_nation",
        left_keys=("c_nationkey",),
        right_keys=("n_nationkey",),
    ))
    flow.connect("JOIN_orders_customer", "JOIN_customer_nation")
    flow.connect("EXTRACTION_nation", "JOIN_customer_nation")
    flow.add(Selection("SELECTION_nation", predicate=slicer))
    flow.connect("JOIN_customer_nation", "SELECTION_nation")
    flow.add(DerivedAttribute(
        "DERIVE_revenue",
        output="revenue",
        expression="l_extendedprice * (1 - l_discount)",
    ))
    flow.connect("SELECTION_nation", "DERIVE_revenue")
    flow.add(Aggregation(
        "AGG_revenue",
        group_by=("n_name",),
        aggregates=(AggregationSpec("total_revenue", "SUM", "revenue"),),
    ))
    flow.connect("DERIVE_revenue", "AGG_revenue")
    flow.add(Loader("LOAD_fact_revenue", table="fact_table_revenue"))
    flow.connect("AGG_revenue", "LOAD_fact_revenue")
    return flow


@pytest.fixture
def revenue_flow():
    return build_revenue_flow()
