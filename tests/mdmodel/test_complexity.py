"""Unit tests for the structural complexity cost model."""

from repro.expressions import ScalarType
from repro.mdmodel import (
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)
from repro.mdmodel.complexity import (
    ComplexityWeights,
    analyze,
    compare,
    score,
)

STR = ScalarType.STRING


class TestCounting:
    def test_counts_on_revenue_star(self, revenue_star):
        report = analyze(revenue_star)
        assert report.facts == 1
        assert report.measures == 1
        assert report.dimensions == 2
        assert report.levels == 4
        assert report.attributes == 5
        assert report.hierarchies == 2
        assert report.links == 2

    def test_score_uses_weights(self, revenue_star):
        unit = ComplexityWeights(1, 1, 1, 1, 1, 1, 1)
        report = analyze(revenue_star, unit)
        assert report.score == 1 + 1 + 2 + 4 + 5 + 2 + 2

    def test_empty_schema_scores_zero(self):
        assert score(MDSchema("empty")) == 0.0

    def test_report_renders(self, revenue_star):
        text = str(analyze(revenue_star))
        assert "facts=1" in text and "score=" in text


class TestComparison:
    def test_shared_dimension_is_cheaper_than_duplicate(self, revenue_star):
        # Conformed: second fact reuses Part; duplicate: it gets its own copy.
        conformed = revenue_star.copy()
        fact = Fact("fact2")
        fact.add_measure(Measure("m2", expression="x"))
        fact.link_dimension("Part", "Part")
        conformed.add_fact(fact)

        duplicated = revenue_star.copy()
        clone_dim = Dimension("Part2")
        clone_dim.add_level(
            Level("Part2", attributes=[LevelAttribute("p_name", STR)])
        )
        clone_dim.add_hierarchy(Hierarchy("h", ["Part2"]))
        duplicated.add_dimension(clone_dim)
        fact = Fact("fact2")
        fact.add_measure(Measure("m2", expression="x"))
        fact.link_dimension("Part2", "Part2")
        duplicated.add_fact(fact)

        assert score(conformed) < score(duplicated)
        assert compare(conformed, duplicated) < 0

    def test_compare_is_antisymmetric(self, revenue_star):
        other = revenue_star.copy()
        other.add_dimension(_tiny_dimension("Extra"))
        assert compare(revenue_star, other) == -compare(other, revenue_star)

    def test_adding_any_element_increases_score(self, revenue_star):
        baseline = score(revenue_star)
        richer = revenue_star.copy()
        richer.dimension("Part").level("Part").attributes.append(
            LevelAttribute("p_type", STR)
        )
        assert score(richer) > baseline


def _tiny_dimension(name):
    dimension = Dimension(name)
    dimension.add_level(Level(name, attributes=[LevelAttribute("k", STR)]))
    dimension.add_hierarchy(Hierarchy("h", [name]))
    return dimension
