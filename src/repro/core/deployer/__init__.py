"""The Design Deployer (§2.4).

Turns unified design solutions into platform executables (Figure 3's
right-hand side):

* :mod:`repro.core.deployer.ddl` — ``CREATE TABLE`` scripts for the MD
  schema (PostgreSQL / SQLite dialects),
* :mod:`repro.core.deployer.pdi` — Pentaho PDI ``.ktr`` transformation
  XML for the ETL flow,
* :mod:`repro.core.deployer.sqlscript` — a pure-SQL rendering of the
  ETL flow (INSERT INTO ... SELECT) for engines without an ETL tool,
* :mod:`repro.core.deployer.registry` — the platform backend registry:
  generators register by platform name (``postgres``, ``sqlite``,
  ``pdi``, ``sql``, ``pig``); new platforms plug in without touching
  the facade,
* :mod:`repro.core.deployer.deployer` — the facade: route ``deploy``
  through the registry and *deploy natively* on the embedded engine
  (create tables, run the flow, ready the star for OLAP queries).
"""

from repro.core.deployer.deployer import Deployer, DeploymentResult
from repro.core.deployer.registry import (
    BackendRegistry,
    DeployerBackend,
    default_registry,
)

__all__ = [
    "BackendRegistry",
    "Deployer",
    "DeployerBackend",
    "DeploymentResult",
    "default_registry",
]
