"""The slowly-changing-dimension merge kernel.

One pure function, :func:`scd_merge`, shared verbatim by the legacy
row-at-a-time interpreter and the columnar engine (and therefore by the
planned and parallel modes, which reuse the columnar kernel), so all
four execution modes produce byte-identical dimension history — same
row order, same window values, same errors.

The merge follows pygrametl's ``SlowlyChangingDimension``:

* **type1** — a stored member whose descriptors changed is overwritten
  in place; unknown members are appended.  No history.
* **type2** — a changed member's current row is closed
  (``scd_valid_to`` = effective date, ``scd_is_current`` = False) and a
  new row opens with a bumped ``scd_version``; unknown members open at
  version 1.  Untouched members pass through unchanged.

Output row order is deterministic: stored rows in storage order (with
in-place updates/closures applied), then newly opened rows in incoming
order.  The effective date is an explicit operator property — never
wall clock — so repeated runs are reproducible.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Sequence, Tuple

from repro.errors import ExecutionError
from repro.engine.columnar import unhashable_key_error
from repro.etlmodel.ops import SCDType, SCDUpdate
from repro.mdmodel.model import (
    SCD2_IS_CURRENT,
    SCD2_VALID_FROM,
    SCD2_VALID_TO,
    SCD2_VERSION,
)


def effective_date_of(operation: SCDUpdate) -> datetime.date:
    """The operator's effective date as a date, or a clear error."""
    try:
        return datetime.date.fromisoformat(operation.effective_date)
    except ValueError:
        raise ExecutionError(
            f"scd update {operation.name!r}: effective date "
            f"{operation.effective_date!r} is not an ISO date"
        ) from None


def scd_merge(
    operation: SCDUpdate,
    schema: Dict[str, object],
    existing_rows: Sequence[dict],
    incoming_rows: Sequence[dict],
) -> List[dict]:
    """Merge incoming members into the stored dimension contents.

    ``schema`` is the operator's output schema (input attributes plus,
    for type2, the validity-window columns); every returned row carries
    exactly those keys in that order.  ``existing_rows`` must already
    conform to ``schema`` (callers pass ``[]`` when the stored table is
    missing or shaped differently — the downstream replace-mode loader
    rebuilds it).
    """
    keys = list(operation.business_keys)
    descriptors = [
        name
        for name in schema
        if name not in keys
        and name
        not in (SCD2_VERSION, SCD2_VALID_FROM, SCD2_VALID_TO, SCD2_IS_CURRENT)
    ]
    if operation.policy == SCDType.TYPE1:
        return _merge_type1(
            operation, schema, keys, descriptors, existing_rows, incoming_rows
        )
    return _merge_type2(
        operation, schema, keys, descriptors, existing_rows, incoming_rows
    )


def _business_key(operation, keys, row) -> Tuple:
    try:
        key = tuple(row[name] for name in keys)
        hash(key)
    except TypeError as exc:
        named = [(name, [row[name]]) for name in keys]
        raise unhashable_key_error("scd-update", named, exc) from exc
    return key


def _normalised(schema, row) -> dict:
    return {name: row.get(name) for name in schema}


def _merge_type1(
    operation, schema, keys, descriptors, existing_rows, incoming_rows
) -> List[dict]:
    merged = [_normalised(schema, row) for row in existing_rows]
    position: Dict[Tuple, int] = {}
    for index, row in enumerate(merged):
        position.setdefault(_business_key(operation, keys, row), index)
    for row in incoming_rows:
        key = _business_key(operation, keys, row)
        if key in position:
            stored = merged[position[key]]
            for name in descriptors:
                stored[name] = row.get(name)
        else:
            position[key] = len(merged)
            merged.append(_normalised(schema, row))
    return merged


def _merge_type2(
    operation, schema, keys, descriptors, existing_rows, incoming_rows
) -> List[dict]:
    effective = effective_date_of(operation)
    merged = [_normalised(schema, row) for row in existing_rows]
    # The open (current) row per business key; closed history rows are
    # never touched again.  Newly opened rows append after all stored
    # rows in incoming order, so the index stays valid for a later
    # incoming row that versions on top of one opened this run.
    current: Dict[Tuple, int] = {}
    for index, row in enumerate(merged):
        if row[SCD2_IS_CURRENT] is True:
            current[_business_key(operation, keys, row)] = index
    for row in incoming_rows:
        key = _business_key(operation, keys, row)
        index = current.get(key)
        stored = merged[index] if index is not None else None
        if stored is not None and all(
            stored[name] == row.get(name) for name in descriptors
        ):
            continue  # unchanged member: keep the open row as is
        version = 1
        if stored is not None:
            stored[SCD2_VALID_TO] = effective
            stored[SCD2_IS_CURRENT] = False
            version = stored[SCD2_VERSION] + 1
        fresh = _normalised(schema, row)
        fresh[SCD2_VERSION] = version
        fresh[SCD2_VALID_FROM] = effective
        fresh[SCD2_VALID_TO] = None
        fresh[SCD2_IS_CURRENT] = True
        merged.append(fresh)
        current[key] = len(merged) - 1
    return merged
