"""Evaluation of expression ASTs against attribute rows.

Semantics follow SQL three-valued logic where it matters for the
reproduction: any arithmetic or comparison involving NULL yields NULL,
``AND``/``OR`` use Kleene logic, and a NULL predicate filters a row out
(the engine treats it as false at the filter boundary).
"""

from __future__ import annotations

import math

from repro.errors import EvaluationError
from repro.expressions import ast


def evaluate(node: ast.Expression, row: dict):
    """Evaluate an expression against a row (attribute name -> value).

    Raises :class:`repro.errors.EvaluationError` for missing attributes,
    division by zero, or operand type mismatches discovered at runtime.
    """
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.Attribute):
        return attribute_value(row, node.name)
    if isinstance(node, ast.UnaryOp):
        return _evaluate_unary(node, row)
    if isinstance(node, ast.BinaryOp):
        return _evaluate_binary(node, row)
    if isinstance(node, ast.FunctionCall):
        return _evaluate_call(node, row)
    if isinstance(node, ast.ValueList):
        return [evaluate(item, row) for item in node.items]
    raise EvaluationError(f"cannot evaluate node {node!r}")


def attribute_value(row: dict, name: str):
    """Look up an attribute, with the standard missing-attribute error."""
    if name not in row:
        raise EvaluationError(f"row has no attribute {name!r}")
    return row[name]


def unary_minus(value):
    """Value-level unary minus with NULL propagation."""
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise EvaluationError(f"unary minus on non-number {value!r}")
    return -value


def unary_not(value):
    """Value-level NOT with NULL propagation."""
    if value is None:
        return None
    return not _as_bool(value)


def _evaluate_unary(node: ast.UnaryOp, row: dict):
    value = evaluate(node.operand, row)
    if node.operator == "-":
        return unary_minus(value)
    if node.operator == "not":
        return unary_not(value)
    raise EvaluationError(f"unknown unary operator {node.operator!r}")


def _evaluate_binary(node: ast.BinaryOp, row: dict):
    operator = node.operator
    if operator == "and":
        return _kleene_and(node, row)
    if operator == "or":
        return _kleene_or(node, row)
    left = evaluate(node.left, row)
    if operator == "in":
        return _evaluate_in(left, node.right, row)
    right = evaluate(node.right, row)
    if left is None or right is None:
        return None
    if operator in ("+", "-", "*", "/", "%"):
        return _arithmetic(operator, left, right)
    if operator in ("=", "!=", "<", "<=", ">", ">="):
        return _compare(operator, left, right)
    raise EvaluationError(f"unknown binary operator {operator!r}")


def _kleene_and(node: ast.BinaryOp, row: dict):
    left = evaluate(node.left, row)
    if left is not None and not _as_bool(left):
        return False
    right = evaluate(node.right, row)
    if right is not None and not _as_bool(right):
        return False
    if left is None or right is None:
        return None
    return True


def _kleene_or(node: ast.BinaryOp, row: dict):
    left = evaluate(node.left, row)
    if left is not None and _as_bool(left):
        return True
    right = evaluate(node.right, row)
    if right is not None and _as_bool(right):
        return True
    if left is None or right is None:
        return None
    return False


def _evaluate_in(left, right_node: ast.Expression, row: dict):
    return in_values(left, evaluate(right_node, row))


def in_values(left, values):
    """Value-level ``IN`` over already-evaluated list members."""
    if not isinstance(values, (list, tuple)):
        values = [values]
    if left is None:
        return None
    saw_null = False
    for value in values:
        if value is None:
            saw_null = True
            continue
        if _compare("=", left, value):
            return True
    return None if saw_null else False


def _arithmetic(operator: str, left, right):
    for operand in (left, right):
        if isinstance(operand, bool) or not isinstance(operand, (int, float, str)):
            raise EvaluationError(
                f"arithmetic {operator!r} on incompatible operand {operand!r}"
            )
    if operator == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if isinstance(left, str) or isinstance(right, str):
        raise EvaluationError(
            f"arithmetic {operator!r} between {type(left).__name__} "
            f"and {type(right).__name__}"
        )
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise EvaluationError("division by zero")
        result = left / right
        return result
    if operator == "%":
        if right == 0:
            raise EvaluationError("modulo by zero")
        return left % right
    raise EvaluationError(f"unknown arithmetic operator {operator!r}")


def _compare(operator: str, left, right):
    if type(left) is not type(right):
        both_numeric = isinstance(left, (int, float)) and isinstance(
            right, (int, float)
        )
        if not both_numeric or isinstance(left, bool) or isinstance(right, bool):
            raise EvaluationError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}"
            )
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise EvaluationError(f"unknown comparison operator {operator!r}")


def _as_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"expected a boolean, got {value!r}")


def _string_arg(name: str, value) -> str:
    if not isinstance(value, str):
        raise EvaluationError(f"{name} expects a string, got {value!r}")
    return value


def _number_arg(name: str, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{name} expects a number, got {value!r}")
    return value


def _date_arg(name: str, value):
    import datetime

    if not isinstance(value, datetime.date):
        raise EvaluationError(f"{name} expects a date, got {value!r}")
    return value


def _evaluate_call(node: ast.FunctionCall, row: dict):
    values = [evaluate(argument, row) for argument in node.arguments]
    return apply_function(node.name, values)


def apply_function(raw_name: str, values):
    """Apply a built-in scalar function to already-evaluated arguments."""
    name = raw_name.lower()
    if name == "coalesce":
        for value in values:
            if value is not None:
                return value
        return None
    if any(value is None for value in values):
        return None
    if name == "abs":
        return abs(_number_arg(name, values[0]))
    if name == "round":
        return round(_number_arg(name, values[0]))
    if name == "floor":
        return math.floor(_number_arg(name, values[0]))
    if name == "ceil":
        return math.ceil(_number_arg(name, values[0]))
    if name == "sqrt":
        value = _number_arg(name, values[0])
        if value < 0:
            raise EvaluationError("sqrt of a negative number")
        return math.sqrt(value)
    if name == "length":
        return len(_string_arg(name, values[0]))
    if name == "upper":
        return _string_arg(name, values[0]).upper()
    if name == "lower":
        return _string_arg(name, values[0]).lower()
    if name == "trim":
        return _string_arg(name, values[0]).strip()
    if name == "substring":
        text = _string_arg(name, values[0])
        start = int(_number_arg(name, values[1]))
        count = int(_number_arg(name, values[2]))
        if start < 1:
            raise EvaluationError("substring start index is 1-based")
        return text[start - 1 : start - 1 + count]
    if name == "concat":
        return _string_arg(name, values[0]) + _string_arg(name, values[1])
    if name == "year":
        return _date_arg(name, values[0]).year
    if name == "month":
        return _date_arg(name, values[0]).month
    if name == "day":
        return _date_arg(name, values[0]).day
    if name == "quarter":
        return (_date_arg(name, values[0]).month - 1) // 3 + 1
    raise EvaluationError(f"unknown function {raw_name!r}")
