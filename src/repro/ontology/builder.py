"""Fluent builder for defining ontologies in code.

Example:

>>> from repro.ontology import OntologyBuilder
>>> from repro.expressions import ScalarType
>>> ontology = (
...     OntologyBuilder("shop")
...     .concept("Product", label="Product")
...     .attribute("Product_name", "Product", ScalarType.STRING)
...     .concept("Sale")
...     .relationship("Sale_product", "Sale", "Product", "N-1")
...     .build()
... )
"""

from __future__ import annotations

from typing import Optional, Union

from repro.expressions.types import ScalarType
from repro.ontology.model import (
    Concept,
    DatatypeProperty,
    Multiplicity,
    ObjectProperty,
    Ontology,
)


def _coerce_multiplicity(value: Union[str, Multiplicity]) -> Multiplicity:
    if isinstance(value, Multiplicity):
        return value
    return Multiplicity(value)


def _coerce_type(value: Union[str, ScalarType]) -> ScalarType:
    if isinstance(value, ScalarType):
        return value
    return ScalarType(value)


class OntologyBuilder:
    """Accumulates ontology elements and produces an :class:`Ontology`."""

    def __init__(self, name: str, description: str = "") -> None:
        self._ontology = Ontology(name=name, description=description)

    def concept(
        self,
        concept_id: str,
        label: Optional[str] = None,
        parent: Optional[str] = None,
        description: str = "",
    ) -> "OntologyBuilder":
        """Declare a concept; ``parent`` must have been declared before."""
        self._ontology.add_concept(
            Concept(id=concept_id, label=label, parent=parent, description=description)
        )
        return self

    def attribute(
        self,
        property_id: str,
        concept_id: str,
        scalar_type: Union[str, ScalarType],
        label: Optional[str] = None,
        description: str = "",
    ) -> "OntologyBuilder":
        """Declare a datatype property on an existing concept."""
        self._ontology.add_datatype_property(
            DatatypeProperty(
                id=property_id,
                concept=concept_id,
                range=_coerce_type(scalar_type),
                label=label,
                description=description,
            )
        )
        return self

    def relationship(
        self,
        property_id: str,
        domain: str,
        range_: str,
        multiplicity: Union[str, Multiplicity] = Multiplicity.MANY_TO_ONE,
        label: Optional[str] = None,
        description: str = "",
    ) -> "OntologyBuilder":
        """Declare an object property between two existing concepts."""
        self._ontology.add_object_property(
            ObjectProperty(
                id=property_id,
                domain=domain,
                range=range_,
                multiplicity=_coerce_multiplicity(multiplicity),
                label=label,
                description=description,
            )
        )
        return self

    def build(self) -> Ontology:
        """Return the accumulated ontology."""
        return self._ontology
