"""Core fixtures: TPC-H domain and the paper's running requirements."""

import pytest

from repro.core.requirements import RequirementBuilder
from repro.sources import tpch


@pytest.fixture(scope="session")
def tpch_domain():
    """(ontology, schema, mappings) for TPC-H."""
    return tpch.ontology(), tpch.schema(), tpch.mappings()


def build_revenue_requirement(requirement_id="IR1"):
    """Figure 4: average revenue per part and supplier, Nation = Spain."""
    return (
        RequirementBuilder(
            requirement_id,
            "Analyze the average revenue per part and supplier name, "
            "for orders from Spain",
        )
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )


def build_netprofit_requirement(requirement_id="IR2"):
    """Figure 3's second requirement: net profit per part brand."""
    return (
        RequirementBuilder(
            requirement_id, "Analyze total net profit per part brand"
        )
        .measure(
            "netprofit",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
            "- Partsupp_ps_supplycost * Lineitem_l_quantity",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )


def build_quantity_requirement(requirement_id="IR3"):
    """A third requirement: shipped quantity per ship mode and nation."""
    return (
        RequirementBuilder(
            requirement_id, "Analyze shipped quantity per ship mode and nation"
        )
        .measure("quantity", "Lineitem_l_quantity", "SUM")
        .per("Lineitem_l_shipmode", "Nation_n_name")
        .build()
    )


@pytest.fixture
def revenue_requirement():
    return build_revenue_requirement()


@pytest.fixture
def netprofit_requirement():
    return build_netprofit_requirement()
