"""The lint gate in front of ``Quarry.deploy``."""

import pytest

from repro.core.quarry import Quarry
from repro.errors import LintError
from repro.etlmodel import Selection
from repro.sources import tpch

from tests.core.conftest import (
    build_netprofit_requirement,
    build_revenue_requirement,
)


@pytest.fixture()
def quarry():
    instance = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    instance.add_requirement(build_revenue_requirement())
    instance.add_requirement(build_netprofit_requirement())
    return instance


def test_unified_design_lints_clean(quarry):
    report = quarry.lint()
    assert report.errors == []
    assert report.warnings == []
    # The AVERAGE revenue measure is non-distributive: one INFO, by design.
    assert [d.code for d in report.infos] == ["QRY412"]


def test_deploy_attaches_the_lint_artifact(quarry):
    result = quarry.deploy("postgres")
    assert "lint" in result.artifacts
    assert "QRY412" in result.artifacts["lint"]


def test_errors_block_deployment(quarry):
    _md, flow = quarry.unified_design()
    flow.add(Selection("stray", predicate="1 = 1"))  # dead-end node
    with pytest.raises(LintError) as excinfo:
        quarry.deploy("postgres")
    codes = {d.code for d in excinfo.value.diagnostics}
    assert "QRY004" in codes  # non-loader sink
    assert all(d.severity.value == "error" for d in excinfo.value.diagnostics)


def test_gate_can_be_bypassed(quarry):
    _md, flow = quarry.unified_design()
    flow.add(Selection("stray", predicate="1 = 1"))
    result = quarry.deploy("postgres", lint_gate=False)
    assert "lint" not in result.artifacts


def test_disable_via_quarry_lint(quarry):
    report = quarry.lint(disable=["QRY412"])
    assert report.diagnostics == []
