"""Design self-tuning advisor — the extension slot §2.6 reserves.

"Such architecture provides the extensibility to Quarry for easily
plugging and offering new components in the future (e.g., design
self-tuning)."  This module is that component: it inspects the current
unified design (and, when available, the deployed data volumes) and
proposes physical tunings the paper leaves to "further user-preferred
tunings" (§2.4):

* **index advice** — fact grain columns (the join/group keys of every
  OLAP query) and dimension level keys,
* **materialised roll-up advice** — when a fact's grain is strictly
  finer than what several requirements group by, a pre-aggregated
  roll-up table cuts repeated aggregation work; only distributive
  measures (SUM/MIN/MAX/COUNT) are eligible (AVG does not re-aggregate,
  cf. the summarizability rules),
* **dimension slimming advice** — level attributes no requirement ever
  references (complement descriptors) that could be dropped on storage-
  constrained deployments.

Every suggestion carries an estimated benefit in the ETL cost model's
units so suggestions can be ranked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.requirements.model import InformationRequirement
from repro.etlmodel.cost import CostModel
from repro.mdmodel.model import AggregationFunction, MDSchema

#: Aggregation functions that re-aggregate correctly from partial results.
_DISTRIBUTIVE = {
    AggregationFunction.SUM,
    AggregationFunction.MIN,
    AggregationFunction.MAX,
    AggregationFunction.COUNT,
}


@dataclass(frozen=True)
class TuningSuggestion:
    """One proposed physical tuning."""

    kind: str  # index | rollup | slim
    target: str  # table the tuning applies to
    detail: str
    columns: tuple = ()
    estimated_benefit: float = 0.0

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.target}({', '.join(self.columns)}): "
            f"{self.detail} (benefit ~{self.estimated_benefit:.0f})"
        )


@dataclass
class TuningReport:
    """All suggestions for one design, ranked by estimated benefit."""

    suggestions: List[TuningSuggestion] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[TuningSuggestion]:
        return [s for s in self.suggestions if s.kind == kind]

    def top(self, count: int = 5) -> List[TuningSuggestion]:
        return self.suggestions[:count]


class TuningAdvisor:
    """Proposes physical tunings for a unified design."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        row_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._row_counts = row_counts or {}

    def advise(
        self,
        schema: MDSchema,
        requirements: Optional[List[InformationRequirement]] = None,
    ) -> TuningReport:
        """Produce a ranked tuning report for a design."""
        suggestions: List[TuningSuggestion] = []
        suggestions.extend(self._index_advice(schema))
        suggestions.extend(self._rollup_advice(schema, requirements or []))
        suggestions.extend(self._slimming_advice(schema, requirements or []))
        suggestions.sort(key=lambda s: (-s.estimated_benefit, s.target))
        return TuningReport(suggestions=suggestions)

    # -- indexes ----------------------------------------------------------

    def _index_advice(self, schema: MDSchema) -> List[TuningSuggestion]:
        suggestions = []
        for fact in schema.facts.values():
            rows = float(self._row_counts.get(fact.name, 1000))
            for column in dict.fromkeys(fact.grain):
                suggestions.append(
                    TuningSuggestion(
                        kind="index",
                        target=fact.name,
                        columns=(column,),
                        detail=(
                            "grain column: every roll-up groups or joins "
                            "through it"
                        ),
                        estimated_benefit=rows * 0.5,
                    )
                )
        for dimension in schema.dimensions.values():
            for base in dimension.base_levels():
                key = dimension.level(base).key
                if key is None:
                    continue
                suggestions.append(
                    TuningSuggestion(
                        kind="index",
                        target=f"dim_{dimension.name}",
                        columns=(key,),
                        detail="base-level key: fact-to-dimension join column",
                        estimated_benefit=float(
                            self._row_counts.get(f"dim_{dimension.name}", 100)
                        ),
                    )
                )
        return suggestions

    # -- materialised roll-ups ------------------------------------------------

    def _rollup_advice(
        self, schema: MDSchema, requirements: List[InformationRequirement]
    ) -> List[TuningSuggestion]:
        """Coarser granularities several requirements re-aggregate to."""
        suggestions = []
        for fact in schema.facts.values():
            grain = set(fact.grain)
            if not grain:
                continue
            coarser_groupings: Dict[tuple, int] = {}
            for requirement in requirements:
                if requirement.id not in fact.requirements:
                    continue
                # Which of this fact's requirements would be answerable
                # from a coarser pre-aggregate?  Any whose grouping is a
                # proper subset of the stored grain.
                atoms = tuple(sorted(self._grouping_columns(requirement, schema)))
                if atoms and set(atoms) < grain:
                    coarser_groupings[atoms] = coarser_groupings.get(atoms, 0) + 1
            eligible = all(
                measure.aggregation in _DISTRIBUTIVE
                for measure in fact.measures.values()
            )
            for atoms, uses in coarser_groupings.items():
                if not eligible:
                    continue
                rows = float(self._row_counts.get(fact.name, 1000))
                suggestions.append(
                    TuningSuggestion(
                        kind="rollup",
                        target=fact.name,
                        columns=atoms,
                        detail=(
                            f"{uses} requirement(s) aggregate to this "
                            f"coarser granularity; materialise the roll-up"
                        ),
                        estimated_benefit=rows * uses * 1.2,
                    )
                )
        return suggestions

    def _grouping_columns(self, requirement, schema: MDSchema) -> List[str]:
        """Map a requirement's dimension atoms to level attribute columns."""
        columns = []
        property_to_column = {}
        for __, level in schema.iter_levels():
            for attribute in level.attributes:
                if attribute.property is not None:
                    property_to_column[attribute.property] = attribute.name
        for dimension in requirement.dimensions:
            column = property_to_column.get(dimension.property)
            if column is not None:
                columns.append(column)
        return columns

    # -- dimension slimming --------------------------------------------------------

    def _slimming_advice(
        self, schema: MDSchema, requirements: List[InformationRequirement]
    ) -> List[TuningSuggestion]:
        """Complement attributes no requirement references."""
        referenced = set()
        for requirement in requirements:
            referenced.update(requirement.referenced_properties())
        suggestions = []
        for dimension in schema.dimensions.values():
            unused = []
            for level in dimension.levels.values():
                for attribute in level.attributes:
                    if attribute.property is None:
                        continue
                    if attribute.property not in referenced:
                        unused.append(attribute.name)
            if unused and requirements:
                suggestions.append(
                    TuningSuggestion(
                        kind="slim",
                        target=f"dim_{dimension.name}",
                        columns=tuple(unused),
                        detail=(
                            "complement descriptors unreferenced by any "
                            "requirement; drop on storage-constrained targets"
                        ),
                        estimated_benefit=float(len(unused)),
                    )
                )
        return suggestions
