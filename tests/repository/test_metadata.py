"""Unit tests for the typed metadata repository."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.repository import MetadataRepository
from repro.sources import tpch

from tests.core.conftest import build_revenue_requirement
from tests.etlmodel.conftest import build_revenue_flow
from tests.xformats.test_xmd import revenue_star


@pytest.fixture
def repo():
    return MetadataRepository()


class TestRequirements:
    def test_save_load(self, repo):
        requirement = build_revenue_requirement()
        repo.save_requirement(requirement)
        loaded = repo.load_requirement("IR1")
        assert loaded.measures == requirement.measures
        assert loaded.dimensions == requirement.dimensions

    def test_save_is_upsert(self, repo):
        repo.save_requirement(build_revenue_requirement())
        repo.save_requirement(build_revenue_requirement())
        assert repo.requirement_ids() == ["IR1"]

    def test_delete_cascades_to_partial_designs(self, repo):
        repo.save_requirement(build_revenue_requirement())
        repo.save_partial_design("IR1", revenue_star(), build_revenue_flow())
        repo.delete_requirement("IR1")
        assert repo.requirement_ids() == []
        assert repo.partial_design_ids() == []

    def test_load_missing_raises(self, repo):
        with pytest.raises(DocumentNotFoundError):
            repo.load_requirement("ghost")


class TestDesigns:
    def test_partial_design_roundtrip(self, repo):
        repo.save_partial_design("IR1", revenue_star(), build_revenue_flow())
        md, etl = repo.load_partial_design("IR1")
        assert set(md.facts) == {"fact_table_revenue"}
        assert set(etl.node_names()) == set(build_revenue_flow().node_names())
        assert repo.partial_design_ids() == ["IR1"]

    def test_unified_design_roundtrip(self, repo):
        repo.save_unified_design(
            "v1", revenue_star(), build_revenue_flow(), ["IR1", "IR2"]
        )
        md, etl, requirements = repo.load_unified_design("v1")
        assert requirements == ["IR1", "IR2"]
        assert md.has_dimension("Supplier")
        assert repo.unified_design_names() == ["v1"]


class TestOntologiesAndDeployments:
    def test_ontology_roundtrip(self, repo):
        ontology = tpch.ontology()
        repo.save_ontology(ontology)
        loaded = repo.load_ontology("tpch")
        assert loaded.size() == ontology.size()
        assert repo.ontology_names() == ["tpch"]

    def test_deployment_records(self, repo):
        repo.record_deployment("v1", "postgres", {"ddl": "CREATE ..."})
        repo.record_deployment("v1", "pdi", {"ktr": "<transformation/>"})
        deployments = repo.deployments_of("v1")
        assert {d["platform"] for d in deployments} == {"postgres", "pdi"}
        assert repo.deployments_of("other") == []


class TestPersistence:
    def test_full_repository_file_roundtrip(self, repo, tmp_path):
        repo.save_requirement(build_revenue_requirement())
        repo.save_partial_design("IR1", revenue_star(), build_revenue_flow())
        repo.save_unified_design(
            "v1", revenue_star(), build_revenue_flow(), ["IR1"]
        )
        repo.save_ontology(tpch.ontology())
        path = tmp_path / "metadata.json"
        repo.save_to(path)
        loaded = MetadataRepository.load_from(path)
        assert loaded.requirement_ids() == ["IR1"]
        md, etl = loaded.load_partial_design("IR1")
        assert md.has_fact("fact_table_revenue")
        assert loaded.load_ontology("tpch").has_concept("Lineitem")
