"""Unit tests for the column-pruning (projection pushdown) pass."""

from repro.engine import Database, Executor
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Extraction,
    Join,
    Loader,
    Projection,
    Selection,
)
from repro.etlmodel.equivalence import prune_columns
from repro.etlmodel.propagation import propagate
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING


def wide_flow():
    """A flow whose extraction is wider than its consumer needs."""
    flow = EtlFlow("wide")
    flow.chain(
        Datastore("src", table="t", columns=("a", "b", "c", "d", "e")),
        Extraction("ext", columns=("a", "b", "c", "d", "e")),
        Aggregation(
            "agg", group_by=("a",),
            aggregates=(AggregationSpec("n", "COUNT", "b"),),
        ),
        Loader("load", table="out"),
    )
    return flow


class TestSingleConsumer:
    def test_extraction_shrunk_to_needs(self):
        pruned = prune_columns(wide_flow())
        assert set(pruned.node("ext").columns) == {"a", "b"}

    def test_datastore_shrunk_too(self):
        pruned = prune_columns(wide_flow())
        assert set(pruned.node("src").columns) == {"a", "b"}

    def test_original_flow_untouched(self):
        flow = wide_flow()
        prune_columns(flow)
        assert len(flow.node("ext").columns) == 5

    def test_pruned_flow_still_valid(self):
        pruned = prune_columns(wide_flow())
        assert pruned.validate() == []
        propagate(pruned, None)

    def test_pruning_is_idempotent(self):
        once = prune_columns(wide_flow())
        twice = prune_columns(once)
        assert sorted(n.signature() for n in once.nodes()) == sorted(
            n.signature() for n in twice.nodes()
        )


class TestSharedExtraction:
    def _shared(self):
        """One wide extraction feeding a narrow and a wide consumer."""
        flow = EtlFlow("shared")
        flow.add(Datastore("src", table="t", columns=("a", "b", "c", "d")))
        flow.add(Extraction("ext", columns=("a", "b", "c", "d")))
        flow.connect("src", "ext")
        flow.add(Aggregation(
            "narrow", group_by=("a",),
            aggregates=(AggregationSpec("n", "COUNT", "a"),),
        ))
        flow.connect("ext", "narrow")
        flow.add(Loader("load_narrow", table="narrow_out"))
        flow.connect("narrow", "load_narrow")
        flow.add(Projection("wide", columns=("a", "b", "c", "d")))
        flow.connect("ext", "wide")
        flow.add(Loader("load_wide", table="wide_out"))
        flow.connect("wide", "load_wide")
        return flow

    def test_narrow_edge_gets_projection(self):
        pruned = prune_columns(self._shared())
        narrow_input = pruned.inputs("narrow")[0]
        assert narrow_input.startswith("PRUNE_")
        assert set(pruned.node(narrow_input).columns) == {"a"}

    def test_wide_edge_untouched(self):
        pruned = prune_columns(self._shared())
        assert pruned.inputs("wide") == ["ext"]

    def test_shared_extraction_keeps_union(self):
        pruned = prune_columns(self._shared())
        assert len(pruned.node("ext").columns) == 4


class TestSemanticsPreserved:
    def test_execution_unchanged_on_revenue_flow(self, tpch_schema):
        from tests.etlmodel.conftest import build_revenue_flow
        from repro.sources import tpch

        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=8))
        baseline_flow = build_revenue_flow()
        executor = Executor(database)
        executor.execute(baseline_flow, keep_intermediate=True)
        baseline = executor.relations["AGG_revenue"].rows

        pruned = prune_columns(build_revenue_flow(name="pruned"))
        pruned_executor = Executor(database)
        pruned_executor.execute(pruned, keep_intermediate=True)
        result = pruned_executor.relations["AGG_revenue"].rows
        key = lambda row: row["n_name"]
        assert sorted(baseline, key=key) == sorted(result, key=key)

    def test_distinct_input_never_pruned(self):
        from repro.etlmodel import Distinct

        flow = EtlFlow("d")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b", "c")),
            Extraction("ext", columns=("a", "b", "c")),
            Distinct("dedup"),
            Loader("load", table="out"),
        )
        pruned = prune_columns(flow)
        # Distinct semantics depend on the full row: no narrowing.
        assert set(pruned.node("ext").columns) == {"a", "b", "c"}

    def test_join_keys_survive_pruning(self):
        flow = EtlFlow("j")
        flow.add(Datastore("left", table="l", columns=("k", "x", "junk")))
        flow.add(Datastore("right", table="r", columns=("k", "y", "junk2")))
        flow.add(Extraction("le", columns=("k", "x", "junk")))
        flow.add(Extraction("re", columns=("k", "y", "junk2")))
        flow.connect("left", "le")
        flow.connect("right", "re")
        flow.add(Join("join", left_keys=("k",), right_keys=("k",)))
        flow.connect("le", "join")
        flow.connect("re", "join")
        flow.add(Aggregation(
            "agg", group_by=("x",),
            aggregates=(AggregationSpec("n", "COUNT", "y"),),
        ))
        flow.connect("join", "agg")
        flow.add(Loader("load", table="out"))
        flow.connect("agg", "load")
        pruned = prune_columns(flow)
        assert set(pruned.node("le").columns) == {"k", "x"}
        assert set(pruned.node("re").columns) == {"k", "y"}
        propagate(pruned, None)

    def test_derive_inputs_survive(self):
        flow = EtlFlow("d")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b", "unused")),
            Extraction("ext", columns=("a", "b", "unused")),
            DerivedAttribute("der", output="c", expression="a + b"),
            Aggregation(
                "agg", group_by=(),
                aggregates=(AggregationSpec("s", "COUNT", "c"),),
            ),
            Loader("load", table="out"),
        )
        pruned = prune_columns(flow)
        assert set(pruned.node("ext").columns) == {"a", "b"}

    def test_selection_predicate_attrs_survive(self):
        flow = EtlFlow("s")
        flow.chain(
            Datastore("src", table="t", columns=("a", "filter_col", "junk")),
            Extraction("ext", columns=("a", "filter_col", "junk")),
            Selection("sel", predicate="filter_col = 'x'"),
            Aggregation(
                "agg", group_by=("a",),
                aggregates=(AggregationSpec("n", "COUNT", "a"),),
            ),
            Loader("load", table="out"),
        )
        pruned = prune_columns(flow)
        assert set(pruned.node("ext").columns) == {"a", "filter_col"}
