"""Information requirements and the Requirements Elicitor.

An *information requirement* is an analytical query over the domain
vocabulary: a subject of analysis with measures, analysis dimensions and
slicers ("Analyze the revenue from the last year's sales, per products
that are ordered from Spain", §1).  This package holds:

* :mod:`repro.core.requirements.model` — the requirement classes
  (the semantics behind the xRQ format),
* :mod:`repro.core.requirements.builder` — a fluent builder,
* :mod:`repro.core.requirements.vocabulary` — business-vocabulary
  resolution (labels -> ontology ids),
* :mod:`repro.core.requirements.elicitor` — the suggestion engine
  behind the graphical Requirements Elicitor (Figure 2).
"""

from repro.core.requirements.builder import RequirementBuilder
from repro.core.requirements.elicitor import Elicitor, Suggestion
from repro.core.requirements.model import (
    InformationRequirement,
    RequirementAggregation,
    RequirementDimension,
    RequirementMeasure,
    RequirementSlicer,
)

__all__ = [
    "Elicitor",
    "InformationRequirement",
    "RequirementAggregation",
    "RequirementBuilder",
    "RequirementDimension",
    "RequirementMeasure",
    "RequirementSlicer",
    "Suggestion",
]
