"""The Design Deployer facade.

"Quarry supports the deployment of the unified design solutions over the
supported storage repositories and execution platforms [...] Quarry is
extensible in that it can link to a variety of execution platforms"
(§2.4).  Platforms here:

* ``postgres`` / ``sqlite`` — generate the DDL script (Figure 3),
* ``pdi`` — generate the Pentaho PDI ``.ktr`` transformation,
* ``sql`` — generate the pure-SQL INSERT-SELECT rendering of the flow,
* ``native`` — actually deploy: create the star's tables in the
  embedded engine, execute the ETL flow, and return a queryable
  database.

The generators are also registered into a
:class:`repro.xformats.registry.FormatRegistry`, exercising the plug-in
parser capability of the metadata layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.deployer import ddl, pdi, sqlscript
from repro.core.deployer.registry import (
    BackendRegistry,
    builtin_platforms,
    default_registry,
)
from repro.engine.database import Database, TableDef
from repro.engine.executor import ExecutionStats, Executor
from repro.errors import DeploymentError
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema
from repro.sources.schema import SourceSchema
from repro.xformats.registry import FormatRegistry

#: Kept for backward compatibility; the authoritative list is the
#: backend registry (plus the facade-level ``native`` platform).
PLATFORMS = builtin_platforms()


@dataclass
class DeploymentResult:
    """Artefacts and outcomes of one deployment."""

    design: str
    platform: str
    artifacts: Dict[str, str] = field(default_factory=dict)
    database: Optional[Database] = None
    stats: Optional[ExecutionStats] = None


class Deployer:
    """Deploys unified design solutions."""

    def __init__(
        self,
        source_schema: Optional[SourceSchema] = None,
        registry: Optional[FormatRegistry] = None,
        backends: Optional[BackendRegistry] = None,
    ) -> None:
        self._source_schema = source_schema
        self._registry = registry if registry is not None else FormatRegistry()
        self._backends = backends if backends is not None else default_registry()
        self._register_exporters()

    @property
    def registry(self) -> FormatRegistry:
        return self._registry

    @property
    def backends(self) -> BackendRegistry:
        """The platform backend registry this deployer routes through."""
        return self._backends

    def platforms(self) -> List[str]:
        return self._backends.names() + ["native"]

    def deploy(
        self,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        platform: str,
        source_database: Optional[Database] = None,
    ) -> DeploymentResult:
        """Generate artefacts for (or natively execute on) a platform."""
        if platform != "native" and not self._backends.has(platform):
            supported = tuple(self._backends.names()) + ("native",)
            raise DeploymentError(
                f"unknown platform {platform!r}; supported: {supported}"
            )
        # Deployment-time optimisation: narrow every branch to the
        # columns it uses (integration keeps flows wide for matching).
        from repro.etlmodel.equivalence import prune_columns

        etl_flow = prune_columns(etl_flow)
        if platform == "native":
            return self._deploy_native(md_schema, etl_flow, source_database)
        backend = self._backends.lookup(platform)
        return DeploymentResult(
            design=md_schema.name,
            platform=platform,
            artifacts=backend.generate(md_schema, etl_flow),
        )

    def _deploy_native(
        self,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        source_database: Optional[Database],
    ) -> DeploymentResult:
        """Create the star tables and run the ETL on the embedded engine."""
        if source_database is None:
            raise DeploymentError(
                "native deployment needs a source database to extract from"
            )
        self._create_star_tables(md_schema, source_database)
        stats = Executor(source_database).execute(etl_flow)
        return DeploymentResult(
            design=md_schema.name,
            platform="native",
            artifacts={"ddl": ddl.generate(md_schema)},
            database=source_database,
            stats=stats,
        )

    def _create_star_tables(self, md_schema: MDSchema, database: Database) -> None:
        """Pre-create dimension and fact tables with their keys.

        The ETL's loaders would auto-create untyped tables; creating
        them from the MD schema first enforces the declared types and
        the fact's primary key during loading.

        A *versioned* dimension (any SCD2 level) keeps its stored rows
        across deployments: its SCD merge folds the history forward, so
        truncating here would erase exactly what the policy preserves.
        The table is only rebuilt when its shape no longer matches the
        schema (design evolution changed the columns — fresh history).
        """
        for dimension in md_schema.dimensions.values():
            table = ddl.dimension_table_name(dimension)
            columns = ddl.dimension_columns(dimension)
            if database.has_table(table):
                if ddl.dimension_is_versioned(dimension):
                    stored = database.table_def(table)
                    if set(stored.columns) == set(columns):
                        continue  # keep history for the SCD merge
                    database.drop_table(table)
                else:
                    database.truncate(table)
                    continue
            database.create_table(TableDef(name=table, columns=columns))
        for fact in md_schema.facts.values():
            if not database.has_table(fact.name):
                database.create_table(
                    TableDef(
                        name=fact.name,
                        columns=ddl.fact_columns(md_schema, fact),
                        primary_key=tuple(dict.fromkeys(fact.grain)),
                    )
                )
            else:
                database.truncate(fact.name)

    def _register_exporters(self) -> None:
        """Plug the platform generators into the metadata-layer registry."""
        for dialect in ("postgres", "sqlite"):
            self._registry.register(
                "md_schema",
                f"ddl-{dialect}",
                "export",
                lambda schema, d=dialect: ddl.generate(schema, dialect=d),
                description=f"{dialect} CREATE TABLE script",
                replace=True,
            )
        self._registry.register(
            "etl_flow",
            "pdi",
            "export",
            pdi.generate,
            description="Pentaho PDI transformation (.ktr)",
            replace=True,
        )
        self._registry.register(
            "etl_flow",
            "sql",
            "export",
            sqlscript.generate,
            description="SQL INSERT-SELECT script",
            replace=True,
        )
        from repro.core.deployer import ddl_import, pig

        self._registry.register(
            "etl_flow",
            "piglatin",
            "export",
            pig.generate,
            description="Apache Pig Latin script",
            replace=True,
        )
        self._registry.register(
            "md_schema",
            "ddl",
            "import",
            ddl_import.loads,
            description="CREATE TABLE star-schema script",
            replace=True,
        )
