"""Regression: lazy engine caches must be safe under a worker pool.

Before the per-table lock, ``Database.scan_columns`` was a bare
check-then-set — two workers scanning the same table both paid the
row-to-column pivot and could observe each other's half-built cache.
The tests pin the fixed behaviour by counting pivots under deliberate
contention: a slowed-down pivot makes the pre-fix race a certainty, so
a regression flips these tests from deterministic-pass to
deterministic-fail.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine import stats as stats_module
from repro.engine.columnar import ColumnarRelation
from repro.engine.database import Database, TableDef
from repro.engine.stats import StatisticsCatalog
from repro.expressions.types import ScalarType

THREADS = 8


def _database(rows: int = 200) -> Database:
    database = Database()
    database.create_table(
        TableDef(
            "t", {"k": ScalarType.INTEGER, "v": ScalarType.STRING}
        )
    )
    database.insert_many(
        "t", [{"k": index, "v": f"row{index}"} for index in range(rows)]
    )
    return database


def test_scan_columns_pivots_once_under_contention(monkeypatch):
    database = _database()
    pivots = []
    original = ColumnarRelation.from_relation.__func__
    barrier = threading.Barrier(THREADS)

    def slow_pivot(cls, relation):
        # Stretch the pivot window so an unsynchronized check-then-set
        # would reliably pivot once per thread instead of once total.
        pivots.append(threading.get_ident())
        threading.Event().wait(0.05)
        return original(cls, relation)

    monkeypatch.setattr(
        ColumnarRelation, "from_relation", classmethod(slow_pivot)
    )

    def scan():
        barrier.wait(timeout=10)
        return database.scan_columns("t")

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        relations = list(pool.map(lambda _: scan(), range(THREADS)))

    assert len(pivots) == 1, f"{len(pivots)} pivots for one table"
    first = relations[0]
    assert all(relation is first for relation in relations)
    assert first.length == 200


def test_scan_columns_cache_still_invalidated_by_writes():
    database = _database(rows=3)
    before = database.scan_columns("t")
    database.insert("t", {"k": 99, "v": "new"})
    after = database.scan_columns("t")
    assert after is not before
    assert after.length == 4


def test_statistics_catalog_collects_once_under_contention(monkeypatch):
    database = _database()
    catalog = StatisticsCatalog(database)
    collections = []
    original = stats_module.collect_table_stats
    barrier = threading.Barrier(THREADS)

    def slow_collect(*args, **kwargs):
        collections.append(threading.get_ident())
        threading.Event().wait(0.05)
        return original(*args, **kwargs)

    monkeypatch.setattr(stats_module, "collect_table_stats", slow_collect)

    def table_stats():
        barrier.wait(timeout=10)
        return catalog.table_stats("t")

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(lambda _: table_stats(), range(THREADS)))

    assert len(collections) == 1, f"{len(collections)} stat collections"
    first = results[0]
    assert all(result is first for result in results)
    assert first.rows == 200


def test_statistics_catalog_recollects_after_write():
    database = _database(rows=5)
    catalog = StatisticsCatalog(database)
    assert catalog.table_stats("t").rows == 5
    database.insert("t", {"k": 5, "v": "five"})
    assert catalog.table_stats("t").rows == 6
