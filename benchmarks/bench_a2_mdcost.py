"""A2 — ablation: the structural-complexity cost model in MD integration.

"MD Schema Integrator [...] produces the optimal solution by applying
cost models that capture different quality factors (e.g., structural
design complexity)" (§2.3).  The ablation compares the default
cost-driven integrator against a *naive duplicator* (every partial
element added as new, never merged).  Expected shapes:

* cost-driven complexity < naive complexity, with the gap widening as
  requirements accumulate,
* the cost-driven schema has fewer dimensions/levels while satisfying
  the same requirement set (checked structurally via provenance).
"""

import pytest

from repro.core.integrator import MDIntegrator
from repro.core.interpreter import Interpreter
from repro.mdmodel import MDSchema
from repro.mdmodel.complexity import analyze, score
from repro.mdmodel.constraints import is_sound
from repro.sources import tpch

from benchmarks._workloads import requirement_corpus


@pytest.fixture(scope="module")
def partial_schemas():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return [
        interpreter.interpret(requirement).md_schema
        for requirement in requirement_corpus(10)
    ]


def integrate_cost_driven(partials):
    integrator = MDIntegrator()
    unified = MDSchema(name="unified")
    for partial in partials:
        unified = integrator.integrate(unified, partial).schema
    return unified


def integrate_naive(partials):
    """Naive union: copy every partial element in, renaming on clash."""
    from repro.core.integrator.md_integrator import (
        _copy_dimension,
        _fresh_name,
        _remap_fact,
        replace_fact_name,
    )

    unified = MDSchema(name="naive")
    for partial in partials:
        mapping = {}
        for dimension in partial.dimensions.values():
            new_name = _fresh_name(dimension.name, unified.dimensions)
            unified.add_dimension(_copy_dimension(dimension, new_name))
            mapping[dimension.name] = new_name
        for fact in partial.facts.values():
            remapped = _remap_fact(fact, mapping)
            unified.add_fact(
                replace_fact_name(
                    remapped, _fresh_name(remapped.name, unified.facts)
                )
            )
    return unified


@pytest.mark.parametrize("count", [2, 6, 10])
def test_shape_cost_driven_is_simpler(partial_schemas, count):
    cost_driven = integrate_cost_driven(partial_schemas[:count])
    naive = integrate_naive(partial_schemas[:count])
    assert is_sound(cost_driven)
    assert is_sound(naive)
    assert score(cost_driven) < score(naive)


def test_shape_gap_widens_with_n(partial_schemas):
    gaps = []
    for count in (2, 6, 10):
        cost_driven = integrate_cost_driven(partial_schemas[:count])
        naive = integrate_naive(partial_schemas[:count])
        gaps.append(score(naive) - score(cost_driven))
    assert gaps[0] < gaps[1] < gaps[2]


def test_shape_fewer_dimension_tables_same_requirements(partial_schemas):
    cost_driven = integrate_cost_driven(partial_schemas)
    naive = integrate_naive(partial_schemas)
    assert len(cost_driven.dimensions) < len(naive.dimensions)
    assert cost_driven.all_requirements() == naive.all_requirements()
    driven_report = analyze(cost_driven)
    naive_report = analyze(naive)
    assert driven_report.levels < naive_report.levels
    assert driven_report.attributes <= naive_report.attributes


@pytest.mark.parametrize("mode", ["cost_driven", "naive"])
def test_integration_speed(benchmark, partial_schemas, mode):
    benchmark.group = "A2 md integration"
    benchmark.name = mode
    action = (
        integrate_cost_driven if mode == "cost_driven" else integrate_naive
    )
    unified = benchmark(lambda: action(partial_schemas))
    assert unified.facts
