"""The XML interchange formats of the communication & metadata layer.

"the Communication & Metadata layer uses logical (XML-based) formats for
representing elements that are exchanged among the components.
Information requirements are represented [...] using a format called
xRQ.  An MD schema is represented using the xMD format, and an ETL
process design using the xLM format" (§2.5).

* :mod:`repro.xformats.xrq` — information requirements,
* :mod:`repro.xformats.xmd` — MD schemas,
* :mod:`repro.xformats.xlm` — ETL flows,
* :mod:`repro.xformats.xmljson` — the generic XML↔JSON converter used
  at the MongoDB-style repository boundary,
* :mod:`repro.xformats.registry` — plug-in import/export parsers for
  external notations (SQL DDL, PDI, ...).
"""

from repro.xformats import xlm, xmd, xrq
from repro.xformats.registry import FormatRegistry
from repro.xformats.xmljson import json_to_xml, xml_to_json

__all__ = [
    "FormatRegistry",
    "json_to_xml",
    "xlm",
    "xmd",
    "xml_to_json",
    "xrq",
]
