"""Source data stores and their semantic mappings.

Quarry maps information requirements onto *underlying data sources* via a
domain ontology and *source schema mappings* (§2.5).  This package
provides the relational source model, the mapping model, and two sample
domains used across examples, tests and benchmarks:

* :mod:`repro.sources.tpch` — the TPC-H schema of the paper's running
  example, with its domain ontology, mappings and a deterministic
  scale-factor data generator (a laptop-scale stand-in for dbgen),
* :mod:`repro.sources.retail` — a second, independent retail domain used
  to exercise multi-source integration.
"""

from repro.sources.mappings import ConceptMapping, PropertyMapping, SourceMappings
from repro.sources.schema import Column, ForeignKey, SourceSchema, Table

__all__ = [
    "Column",
    "ConceptMapping",
    "ForeignKey",
    "PropertyMapping",
    "SourceMappings",
    "SourceSchema",
    "Table",
]
