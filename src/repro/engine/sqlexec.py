"""Executing generated SQL against the embedded database.

Closes the loop on the textual deployment artefacts: the DDL script the
Design Deployer emits can be *applied* (``execute_ddl``), and the
single-table SELECT statements the OLAP interface renders can be
*executed* (``execute_select``), so tests can assert that the generated
SQL means what the engine computes.

The supported SQL is intentionally exactly what this system generates:

* ``CREATE DATABASE`` (ignored), ``CREATE TABLE`` with column types of
  :data:`repro.engine.sqlgen._TYPE_NAMES` and a ``PRIMARY KEY`` clause,
* ``SELECT <cols and aggregates> FROM <table> [WHERE ...]
  [GROUP BY ...] [ORDER BY ...];`` over one table.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.engine.database import Database, TableDef
from repro.engine.relation import Relation
from repro.errors import EngineError
from repro.expressions import evaluate
from repro.expressions import parse as parse_expression
from repro.expressions.types import ScalarType

def execute_ddl(database: Database, script: str) -> List[str]:
    """Apply a DDL script; returns the names of the tables created."""
    from repro.core.deployer.ddl_import import _parse_tables

    created: List[str] = []
    for statement in script.split(";"):
        statement = statement.strip()
        if not statement:
            continue
        upper = statement.upper()
        if upper.startswith("CREATE DATABASE"):
            continue
        if upper.startswith("CREATE TABLE"):
            tables = _parse_tables(statement + ";")
            for table_name, (columns, primary_key) in tables.items():
                database.create_table(
                    TableDef(
                        name=table_name,
                        columns=columns,
                        primary_key=tuple(primary_key),
                    )
                )
                created.append(table_name)
            continue
        raise EngineError(f"unsupported DDL statement: {statement[:60]!r}")
    return created


_SELECT_RE = re.compile(
    r"SELECT\s+(?P<outputs>.+?)\s+FROM\s+(?P<table>\"[^\"]+\"|\w+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>.+?))?"
    r"\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_AGGREGATE_RE = re.compile(
    r"^(?P<function>SUM|AVG|MIN|MAX|COUNT)\s*\(\s*(?P<column>\"[^\"]+\"|\w+)"
    r"\s*\)\s+AS\s+(?P<alias>\"[^\"]+\"|\w+)$",
    re.IGNORECASE,
)


def execute_select(database: Database, sql: str) -> Relation:
    """Execute a generated single-table SELECT statement."""
    match = _SELECT_RE.match(sql.strip())
    if match is None:
        raise EngineError(f"unsupported SELECT shape: {sql[:80]!r}")
    table = match.group("table").strip('"')
    source = database.scan(table)
    rows = list(source.rows)

    where_text = match.group("where")
    if where_text:
        predicate = parse_expression(_desqlify(where_text))
        rows = [row for row in rows if evaluate(predicate, row) is True]

    columns, aggregates = _parse_outputs(match.group("outputs"))
    group_columns = (
        [part.strip().strip('"') for part in match.group("group").split(",")]
        if match.group("group")
        else []
    )
    if group_columns and set(group_columns) != set(columns):
        raise EngineError("GROUP BY columns must match the selected columns")

    if aggregates:
        result = _aggregate(source, rows, columns, aggregates)
    else:
        schema = {column: source.schema[column] for column in columns}
        result = Relation(
            schema=schema,
            rows=[{column: row[column] for column in columns} for row in rows],
        )

    order_text = match.group("order")
    if order_text:
        keys = [part.strip().strip('"') for part in order_text.split(",")]
        result = result.sorted_by(keys)
    return result


def _desqlify(text: str) -> str:
    """Translate generated SQL expression spellings back to ours."""
    return text.replace("<>", "!=").strip()


def _parse_outputs(text: str) -> Tuple[List[str], List[Tuple[str, str, str]]]:
    columns: List[str] = []
    aggregates: List[Tuple[str, str, str]] = []
    for part in _split_top_level(text):
        part = part.strip()
        aggregate = _AGGREGATE_RE.match(part)
        if aggregate:
            function = aggregate.group("function").upper()
            if function == "AVG":
                function = "AVERAGE"
            aggregates.append(
                (
                    function,
                    aggregate.group("column").strip('"'),
                    aggregate.group("alias").strip('"'),
                )
            )
        else:
            columns.append(part.strip('"'))
    return columns, aggregates


def _split_top_level(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    parts.append("".join(current))
    return parts


def _aggregate(source, rows, group_columns, aggregates) -> Relation:
    from repro.engine.executor import _aggregate_values

    groups = {}
    if not group_columns:
        groups[()] = []
    for row in rows:
        key = tuple(row[column] for column in group_columns)
        groups.setdefault(key, []).append(row)
    schema = {column: source.schema[column] for column in group_columns}
    for function, column, alias in aggregates:
        if function == "COUNT":
            schema[alias] = ScalarType.INTEGER
        elif function == "AVERAGE":
            schema[alias] = ScalarType.DECIMAL
        else:
            schema[alias] = source.schema[column]
    output = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        members = groups[key]
        row = dict(zip(group_columns, key))
        for function, column, alias in aggregates:
            values = [
                member[column]
                for member in members
                if member[column] is not None
            ]
            row[alias] = _aggregate_values(function, values)
        output.append(row)
    return Relation(schema=schema, rows=output)
