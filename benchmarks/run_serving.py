"""Serving-layer load benchmark: concurrent design sessions over HTTP.

Boots the served front door in-process (threaded stdlib HTTP server
over the TPC-H domain), then drives many concurrent design sessions
through the full lifecycle — create, elicit an xRQ requirement,
status, design, deploy to the ``sql`` platform — from a pool of driver
threads.  All sessions share one metadata repository, so this is the
workload that hammers the per-table engine caches, the artifact bus
and the store snapshot from many handler threads at once.

Writes ``BENCH_serving.json`` with sessions/sec plus p50/p99 latency
per request type and per whole session.  Any non-2xx response or
transport error fails the run (exit 1): a throughput number is only
reported for a fully-correct run.

Usage::

    python -m benchmarks.run_serving [--sessions 120] [--drivers 16]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

try:
    import repro  # noqa: F401  (needs PYTHONPATH=src or an install)
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )

from repro.serve.server import QuarryServer, tpch_manager
from repro.serve.smoke import demo_xrq

DEFAULT_SESSIONS = 120
DEFAULT_DRIVERS = 16


def percentile(samples: List[float], fraction: float) -> float:
    """The nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def timed_request(
    base: str, method: str, path: str, body=None
) -> Tuple[int, float]:
    """One JSON request; returns ``(status, seconds)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    return status, time.perf_counter() - started


def drive_session(base: str, index: int, latencies, errors) -> float:
    """One full design-session lifecycle; returns its wall-clock time."""
    name = f"load{index:04d}"
    steps = [
        ("create", "POST", "/sessions", {"name": name}, 201),
        (
            "elicit",
            "POST",
            f"/sessions/{name}/requirements",
            {"xrq": demo_xrq("IR1" if index % 2 == 0 else "IR2")},
            201,
        ),
        ("status", "GET", f"/sessions/{name}/status", None, 200),
        ("design", "GET", f"/sessions/{name}/design", None, 200),
        (
            "deploy",
            "POST",
            f"/sessions/{name}/deploy",
            {"platform": "sql"},
            200,
        ),
    ]
    started = time.perf_counter()
    for label, method, path, body, expected in steps:
        try:
            status, seconds = timed_request(base, method, path, body)
        except Exception as exc:  # transport-level failure
            errors.append(f"{label} {path}: {type(exc).__name__}: {exc}")
            return time.perf_counter() - started
        latencies.setdefault(label, []).append(seconds)
        if status != expected:
            errors.append(
                f"{label} {path}: expected {expected}, got {status}"
            )
    return time.perf_counter() - started


def run_load(sessions: int, drivers: int) -> dict:
    latencies: Dict[str, List[float]] = {}
    errors: List[str] = []
    with QuarryServer(tpch_manager()) as server:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=drivers) as pool:
            session_seconds = list(
                pool.map(
                    lambda index: drive_session(
                        server.url, index, latencies, errors
                    ),
                    range(sessions),
                )
            )
        elapsed = time.perf_counter() - started
        live_sessions = server.manager.count()
    report = {
        "benchmark": "serving: concurrent design sessions over HTTP",
        "sessions": sessions,
        "drivers": drivers,
        "live_sessions_at_end": live_sessions,
        "elapsed_seconds": elapsed,
        "sessions_per_second": sessions / elapsed if elapsed else 0.0,
        "session_latency": {
            "p50_seconds": percentile(session_seconds, 0.50),
            "p99_seconds": percentile(session_seconds, 0.99),
        },
        "request_latency": {
            label: {
                "count": len(samples),
                "p50_seconds": percentile(samples, 0.50),
                "p99_seconds": percentile(samples, 0.99),
            }
            for label, samples in sorted(latencies.items())
        },
        "errors": errors,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks.run_serving")
    parser.add_argument(
        "--sessions", type=int, default=DEFAULT_SESSIONS
    )
    parser.add_argument("--drivers", type=int, default=DEFAULT_DRIVERS)
    parser.add_argument("--output", default="BENCH_serving.json")
    options = parser.parse_args(argv)

    print(
        f"serving benchmark: {options.sessions} sessions, "
        f"{options.drivers} drivers"
    )
    report = run_load(options.sessions, options.drivers)
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"{report['sessions_per_second']:.1f} sessions/sec, session p50 "
        f"{report['session_latency']['p50_seconds'] * 1000:.0f} ms, p99 "
        f"{report['session_latency']['p99_seconds'] * 1000:.0f} ms"
    )
    print(f"report written to {options.output}")
    if report["errors"]:
        for error in report["errors"][:10]:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
