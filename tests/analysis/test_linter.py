"""The lint driver: contexts, schema synthesis, rule selection."""

import datetime

import pytest

from repro.analysis import lint, schema_from_rows
from repro.etlmodel import (
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Loader,
)
from repro.expressions.types import ScalarType


class TestSchemaFromRows:
    def test_first_typeable_value_wins(self):
        schema = schema_from_rows(
            {
                "t": [
                    {"a": None, "b": [1, 2], "c": 1},
                    {"a": datetime.date(2024, 1, 1), "b": "s", "c": 2.5},
                ]
            }
        )
        types = schema.table("t").column_types()
        assert types["a"] is ScalarType.DATE
        assert types["b"] is ScalarType.STRING
        assert types["c"] is ScalarType.INTEGER

    def test_untypeable_columns_default_to_string(self):
        schema = schema_from_rows({"t": [{"a": None}, {"a": [1]}]})
        assert schema.table("t").column_types()["a"] is ScalarType.STRING


class TestRuleSelection:
    def test_only_restricts(self, acceptance):
        flow, tables = acceptance
        report = lint(flow, tables=tables, only=["QRY302"])
        assert report.codes() == ["QRY302"]

    def test_disable_drops(self, acceptance):
        flow, tables = acceptance
        report = lint(flow, tables=tables, disable=["QRY202"])
        assert report.codes() == ["QRY101", "QRY302"]
        assert report.ok  # the only ERROR was disabled

    def test_unknown_codes_rejected(self, acceptance):
        flow, _tables = acceptance
        with pytest.raises(ValueError, match="QRY999"):
            lint(flow, only=["QRY999"])
        with pytest.raises(ValueError, match="QRY888"):
            lint(flow, disable=["QRY888"])

    def test_subject_must_be_flow_or_schema(self):
        with pytest.raises(TypeError):
            lint(42)


class TestUntypedDatastores:
    def test_string_fallback_never_reaches_typed_rules(self):
        """Without a source schema the engine would *guess* STRING for
        explicit datastore columns; the linter must treat those types as
        unknown instead of reporting guess-induced mismatches."""
        flow = EtlFlow("untyped")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            DerivedAttribute("derive", output="y", expression="x + 1"),
            Loader("load", table="out"),
        )
        report = lint(flow)  # no schema, no rows
        assert report.by_code("QRY204") == []

    def test_typed_rows_do_reach_them(self):
        flow = EtlFlow("typed")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            DerivedAttribute("derive", output="y", expression="x + 1"),
            Loader("load", table="out"),
        )
        report = lint(flow, tables={"t": [{"x": "oops"}]})
        (finding,) = report.by_code("QRY204")
        assert finding.node == "derive"
