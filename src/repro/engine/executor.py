"""Executor for logical ETL flows — the Pentaho PDI stand-in.

Runs an :class:`repro.etlmodel.flow.EtlFlow` against a
:class:`repro.engine.database.Database`: datastores scan tables, loaders
create/fill target tables, everything in between is evaluated in
topological order with hash joins and hash aggregation.  The executor
reports per-node row counts and wall-clock time so the "overall
execution time" quality factor of the demo can be *measured*, not only
estimated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ExecutionError
from repro.engine.database import Database, TableDef
from repro.engine.relation import Relation
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    JoinType,
    Loader,
    Operation,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions import evaluate, parse
from repro.expressions.types import ScalarType


@dataclass
class NodeStats:
    """Row counts and elapsed time of one executed node."""

    name: str
    kind: str
    input_rows: int
    output_rows: int
    seconds: float


@dataclass
class ExecutionStats:
    """Execution report of one flow run."""

    flow: str
    nodes: List[NodeStats] = field(default_factory=list)
    seconds: float = 0.0
    loaded: Dict[str, int] = field(default_factory=dict)

    def node(self, name: str) -> NodeStats:
        for stats in self.nodes:
            if stats.name == name:
                return stats
        raise KeyError(name)

    @property
    def total_rows_processed(self) -> int:
        return sum(stats.input_rows for stats in self.nodes)


class Executor:
    """Executes ETL flows against a database."""

    def __init__(self, database: Database) -> None:
        self._database = database

    def execute(
        self, flow: EtlFlow, keep_intermediate: bool = False
    ) -> ExecutionStats:
        """Run a flow; returns stats (and keeps node outputs on demand).

        Raises :class:`ExecutionError` wrapping any evaluation problem,
        naming the failing node.
        """
        flow.check()
        stats = ExecutionStats(flow=flow.name)
        relations: Dict[str, Relation] = {}
        started = time.perf_counter()
        for name in flow.topological_order():
            operation = flow.node(name)
            inputs = [relations[source] for source in flow.inputs(name)]
            node_started = time.perf_counter()
            try:
                result = self._execute_node(operation, inputs, stats)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(f"node {name!r}: {exc}") from exc
            node_seconds = time.perf_counter() - node_started
            relations[name] = result
            stats.nodes.append(
                NodeStats(
                    name=name,
                    kind=operation.kind,
                    input_rows=sum(len(relation) for relation in inputs),
                    output_rows=len(result),
                    seconds=node_seconds,
                )
            )
            if not keep_intermediate:
                self._release_consumed(flow, name, relations)
        stats.seconds = time.perf_counter() - started
        if keep_intermediate:
            self.relations = relations
        return stats

    def _release_consumed(
        self, flow: EtlFlow, executed: str, relations: Dict[str, Relation]
    ) -> None:
        """Free inputs whose every consumer has already run."""
        order = flow.topological_order()
        done = set(order[: order.index(executed) + 1])
        for source in flow.inputs(executed):
            if set(flow.outputs(source)) <= done:
                relations.pop(source, None)

    # -- node dispatch ------------------------------------------------------

    def _execute_node(
        self, operation: Operation, inputs: List[Relation], stats: ExecutionStats
    ) -> Relation:
        if isinstance(operation, Datastore):
            return self._scan(operation)
        if isinstance(operation, (Extraction, Projection)):
            return inputs[0].project(list(operation.columns))
        if isinstance(operation, Selection):
            return self._filter(operation, inputs[0])
        if isinstance(operation, Join):
            return self._join(operation, inputs[0], inputs[1])
        if isinstance(operation, Aggregation):
            return self._aggregate(operation, inputs[0])
        if isinstance(operation, DerivedAttribute):
            return self._derive(operation, inputs[0])
        if isinstance(operation, Rename):
            return self._rename(operation, inputs[0])
        if isinstance(operation, UnionOp):
            return self._union(inputs[0], inputs[1])
        if isinstance(operation, SurrogateKey):
            return self._surrogate(operation, inputs[0])
        if isinstance(operation, Sort):
            return inputs[0].sorted_by(list(operation.keys))
        if isinstance(operation, Distinct):
            return inputs[0].distinct()
        if isinstance(operation, Loader):
            return self._load(operation, inputs[0], stats)
        raise ExecutionError(f"unsupported operation kind {operation.kind!r}")

    def _scan(self, operation: Datastore) -> Relation:
        relation = self._database.scan(operation.table)
        if operation.columns:
            return relation.project(list(operation.columns))
        return Relation(schema=dict(relation.schema), rows=list(relation.rows))

    def _filter(self, operation: Selection, relation: Relation) -> Relation:
        predicate = parse(operation.predicate)
        rows = [
            row for row in relation.rows if evaluate(predicate, row) is True
        ]
        return Relation(schema=dict(relation.schema), rows=rows)

    def _join(self, operation: Join, left: Relation, right: Relation) -> Relation:
        left_keys = list(operation.left_keys)
        right_keys = list(operation.right_keys)
        joined_same_names = {
            r for l, r in zip(left_keys, right_keys) if l == r
        }
        schema = dict(left.schema)
        right_payload = [
            name for name in right.schema if name not in joined_same_names
        ]
        for name in right_payload:
            if name in schema:
                raise ExecutionError(
                    f"join {operation.name!r}: attribute {name!r} on both sides"
                )
            schema[name] = right.schema[name]
        index: Dict[tuple, List[dict]] = {}
        for row in right.rows:
            key = tuple(row[column] for column in right_keys)
            if any(part is None for part in key):
                continue
            index.setdefault(key, []).append(row)
        rows: List[dict] = []
        for row in left.rows:
            key = tuple(row[column] for column in left_keys)
            matches = index.get(key, []) if not any(
                part is None for part in key
            ) else []
            if matches:
                for match in matches:
                    combined = dict(row)
                    for name in right_payload:
                        combined[name] = match[name]
                    rows.append(combined)
            elif operation.join_type == JoinType.LEFT:
                combined = dict(row)
                for name in right_payload:
                    combined[name] = None
                rows.append(combined)
        return Relation(schema=schema, rows=rows)

    def _aggregate(self, operation: Aggregation, relation: Relation) -> Relation:
        from repro.etlmodel.propagation import _aggregation_schema

        schema = _aggregation_schema(operation, relation.schema)
        groups: Dict[tuple, List[dict]] = {}
        if not operation.group_by:
            # SQL semantics: a global aggregate always yields one row.
            groups[()] = []
        for row in relation.rows:
            key = tuple(row[column] for column in operation.group_by)
            groups.setdefault(key, []).append(row)
        rows: List[dict] = []
        for key, members in groups.items():
            out = dict(zip(operation.group_by, key))
            for spec in operation.aggregates:
                values = [
                    member[spec.input]
                    for member in members
                    if member[spec.input] is not None
                ]
                out[spec.output] = _aggregate_values(spec.function, values)
            rows.append(out)
        return Relation(schema=schema, rows=rows)

    def _derive(self, operation: DerivedAttribute, relation: Relation) -> Relation:
        from repro.etlmodel.propagation import _derive_schema

        schema = _derive_schema(operation, relation.schema)
        expression = parse(operation.expression)
        rows = []
        for row in relation.rows:
            out = dict(row)
            out[operation.output] = evaluate(expression, row)
            rows.append(out)
        return Relation(schema=schema, rows=rows)

    def _rename(self, operation: Rename, relation: Relation) -> Relation:
        mapping = operation.mapping()
        schema = {
            mapping.get(name, name): scalar_type
            for name, scalar_type in relation.schema.items()
        }
        rows = [
            {mapping.get(name, name): value for name, value in row.items()}
            for row in relation.rows
        ]
        return Relation(schema=schema, rows=rows)

    def _union(self, left: Relation, right: Relation) -> Relation:
        if list(left.schema.items()) != list(right.schema.items()):
            raise ExecutionError("union inputs are not union-compatible")
        return Relation(
            schema=dict(left.schema), rows=list(left.rows) + list(right.rows)
        )

    def _surrogate(self, operation: SurrogateKey, relation: Relation) -> Relation:
        schema = {operation.output: ScalarType.INTEGER}
        schema.update(relation.schema)
        assigned: Dict[tuple, int] = {}
        rows = []
        for row in relation.rows:
            business = tuple(row[column] for column in operation.business_keys)
            if business not in assigned:
                assigned[business] = len(assigned) + 1
            out = {operation.output: assigned[business]}
            out.update(row)
            rows.append(out)
        return Relation(schema=schema, rows=rows)

    def _load(
        self, operation: Loader, relation: Relation, stats: ExecutionStats
    ) -> Relation:
        if not self._database.has_table(operation.table):
            self._database.create_table(
                TableDef(name=operation.table, columns=dict(relation.schema))
            )
        elif operation.mode == "replace":
            existing = self._database.table_def(operation.table)
            if set(existing.columns) != set(relation.schema):
                # A differently-shaped earlier version of the target
                # (e.g. before a dimension was widened): rebuild it.
                self._database.drop_table(operation.table)
                self._database.create_table(
                    TableDef(name=operation.table, columns=dict(relation.schema))
                )
            else:
                self._database.truncate(operation.table)
        loaded = self._database.insert_many(operation.table, relation.rows)
        stats.loaded[operation.table] = stats.loaded.get(operation.table, 0) + loaded
        return relation


def _aggregate_values(function: str, values: list):
    """Aggregate non-NULL values; empty input yields NULL (COUNT: 0)."""
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVERAGE":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate function {function!r}")
