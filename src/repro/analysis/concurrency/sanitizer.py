"""The runtime lock sanitizer: the dynamic half of the discipline.

With ``REPRO_LOCKSAN=1``, every lock built through :mod:`repro.locks`
is a :class:`SanitizedLock` reporting to the process-global
:class:`LockMonitor`, which

* keeps each thread's acquisition stack,
* maintains the **observed** lock-order graph (edges between lock
  *names*, recorded the first time one class of lock is acquired while
  another is held),
* raises :class:`LockOrderViolation` *before* a blocking acquire that
  would close a cycle in the observed graph — turning a once-in-a-blue-
  moon deadlock into a deterministic test failure,
* raises on a non-reentrant lock re-acquired by its holding thread,
* detects same-name cross-instance inversions (two threads acquiring
  two instances of the same lock class in opposite orders — exactly
  what ``DocumentStore.snapshot``'s sorted-order discipline exists to
  prevent),
* flags ``os.fork`` while the forking thread holds a sanitized lock
  (the child would inherit a lock nobody will ever release).

``verify_against_static`` closes the loop: every edge the monitor
observed must appear in the static may-acquire-under graph.  An
observed edge the analyzer missed means the model is wrong (a lock
acquired through a path resolution couldn't see); raising there keeps
the two sides honest in both directions.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple


class LockOrderViolation(RuntimeError):
    """A lock acquisition that would complete an ordering cycle."""


class LockSanitizerError(RuntimeError):
    """Misuse caught by the sanitizer (self-deadlock, fork-while-held)."""


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: List["SanitizedLock"] = []


class LockMonitor:
    """Process-global observed-order bookkeeping for sanitized locks."""

    def __init__(self) -> None:
        self._mu = threading.Lock()  # lock-internal
        self._state = _ThreadState()
        #: observed name-level edges: held name -> acquired names
        self._edges: Dict[str, Set[str]] = {}
        #: first-witness stacks, for error messages: (a, b) -> text
        self._witness: Dict[Tuple[str, str], str] = {}
        #: same-name instance pairs: name -> {(id(first), id(second))}
        self._instance_pairs: Dict[str, Set[Tuple[int, int]]] = {}
        #: non-raising findings (fork observed while other threads held)
        self.findings: List[str] = []

    # -- recording ----------------------------------------------------------

    def before_acquire(self, lock: "SanitizedLock") -> None:
        stack = self._state.stack
        for held in stack:
            if held is lock:
                if not lock.reentrant:
                    raise LockSanitizerError(
                        f"self-deadlock: non-reentrant lock "
                        f"{lock.name!r} re-acquired by its holder"
                    )
                return  # reentrant re-acquire adds no ordering edge
        held_names = [held.name for held in stack]
        with self._mu:
            for name in held_names:
                if name == lock.name:
                    continue
                if self._would_cycle(lock.name, name):
                    cycle = self._cycle_text(lock.name, name)
                    raise LockOrderViolation(
                        f"acquiring {lock.name!r} while holding "
                        f"{name!r} closes an ordering cycle: {cycle} "
                        f"(first witness: "
                        f"{self._witness.get((lock.name, name), '?')})"
                    )
            for name in held_names:
                if name == lock.name:
                    continue
                edges = self._edges.setdefault(name, set())
                if lock.name not in edges:
                    edges.add(lock.name)
                    self._witness[(name, lock.name)] = (
                        f"{threading.current_thread().name} held "
                        f"{held_names} then took {lock.name!r}"
                    )
            # Same-name cross-instance ordering (snapshot discipline).
            for held in stack:
                if held.name == lock.name and held is not lock:
                    pairs = self._instance_pairs.setdefault(
                        lock.name, set()
                    )
                    pair = (id(held), id(lock))
                    inverse = (id(lock), id(held))
                    if inverse in pairs:
                        raise LockOrderViolation(
                            f"two instances of {lock.name!r} acquired "
                            f"in opposite orders by different paths; "
                            f"same-name locks need a global order "
                            f"(e.g. sorted keys)"
                        )
                    pairs.add(pair)

    def after_acquire(self, lock: "SanitizedLock") -> None:
        self._state.stack.append(lock)

    def after_release(self, lock: "SanitizedLock") -> None:
        stack = self._state.stack
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is lock:
                del stack[position]
                return

    def on_fork(self) -> None:
        if self._state.stack:
            names = [lock.name for lock in self._state.stack]
            raise LockSanitizerError(
                f"fork while the forking thread holds {names}; the "
                f"child inherits locks nobody will release"
            )
        with self._mu:
            if any(self._edges):
                # Other threads may hold locks; fork is only safe when
                # the child execs or the pools predate lock traffic.
                self.findings.append(
                    "fork observed after sanitized lock traffic; "
                    "verify worker pools are spawned before lock use"
                )

    # -- graph --------------------------------------------------------------

    def _cycle_text(self, source: str, target: str) -> str:
        """The cycle that adding edge target->source would close, as
        ``target -> source -> ... -> target``."""
        parents: Dict[str, str] = {}
        frontier = [source]
        seen = {source}
        while frontier:
            node = frontier.pop(0)
            if node == target:
                break
            for successor in self._edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    parents[successor] = node
                    frontier.append(successor)
        path = [target]
        while path[-1] != source:
            path.append(parents.get(path[-1], source))
        path.reverse()
        return " -> ".join([target] + path)

    def _would_cycle(self, source: str, target: str) -> bool:
        """True if an edge target->source already reaches... i.e. adding
        source-held -> acquiring target would close a cycle: test
        whether source is reachable from... (see call site: acquiring
        ``lock`` while holding ``name`` adds edge name->lock; a cycle
        exists if lock already reaches name)."""
        frontier = [source]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False

    def edges(self) -> Set[Tuple[str, str]]:
        with self._mu:
            return {
                (a, b) for a, targets in self._edges.items() for b in targets
            }

    def held_names(self) -> List[str]:
        """The current thread's held lock names, outermost first."""
        return [lock.name for lock in self._state.stack]

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._witness.clear()
            self._instance_pairs.clear()
            del self.findings[:]

    def verify_against_static(
        self, static_edges: Optional[Set[Tuple[str, str]]] = None
    ) -> List[str]:
        """Observed edges missing from the static graph (both-ways check).

        Returns human-readable divergences instead of raising, so test
        fixtures can assert on them; an empty list means the runtime
        behaved within the statically predicted envelope.
        """
        if static_edges is None:
            from repro.analysis.concurrency.driver import static_lock_graph

            graph = static_lock_graph()
            static_edges = {(a, b) for a, b in graph["edges"]}
        divergences = []
        for a, b in sorted(self.edges()):
            if (a, b) not in static_edges:
                divergences.append(
                    f"observed edge {a} -> {b} missing from the static "
                    f"may-acquire-under graph (first witness: "
                    f"{self._witness.get((a, b), '?')})"
                )
        return divergences


#: The process-global monitor all sanitized locks report to.
monitor = LockMonitor()

os.register_at_fork(before=monitor.on_fork)


class SanitizedLock:
    """A named lock wrapper that reports to the global monitor.

    Supports the full context-manager and ``acquire``/``release``
    protocol of ``threading.Lock``/``RLock``, so it drops into any
    code built on :mod:`repro.locks`.
    """

    __slots__ = ("name", "reentrant", "_inner", "_monitor")

    def __init__(
        self,
        name: str,
        reentrant: bool,
        monitor: Optional[LockMonitor] = None,
    ) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        # Tests pass their own monitor so synthetic lock traffic never
        # contaminates the process-global observed graph.
        self._monitor = monitor if monitor is not None else globals()["monitor"]

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._monitor.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.after_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor.after_release(self)

    def locked(self) -> bool:
        checker = getattr(self._inner, "locked", None)
        if checker is not None:
            return checker()
        # RLock grew .locked() late; probe without touching the monitor.
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock({self.name!r}, reentrant={self.reentrant})"
