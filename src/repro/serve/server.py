"""HTTP front end over the design-session services.

Routes (all request/response bodies are JSON):

========  =====================================  ==============================
GET       /healthz                               liveness + session count
GET       /sessions                              session names
POST      /sessions                              ``{"name": ...}`` -> create
GET       /sessions/<name>/status                DesignStatus
GET       /sessions/<name>/design                unified design summary
GET       /sessions/<name>/requirements          elicited requirement ids
POST      /sessions/<name>/requirements          ``{"xrq": "<xml>"}`` -> add
DELETE    /sessions/<name>/requirements/<id>     remove one requirement
POST      /sessions/<name>/deploy                ``{"platform": ...}``;
                                                 add ``"background": true``
                                                 -> ``202`` + job id
GET       /sessions/<name>/jobs                  background job summaries
GET       /sessions/<name>/jobs/<id>             job status/result/error
========  =====================================  ==============================

Errors come back as ``{"error": message}`` with 400 (bad input), 404
(unknown session/requirement), 409 (conflict) or 500.

Concurrency model: the HTTP server is threaded (one handler thread per
connection); the :class:`SessionManager` serialises all work *within* a
session behind a per-session reentrant lock while different sessions
proceed in parallel — exactly the isolation the session-scoped
repository namespaces promise.  This front end is what exposed the
check-then-set races fixed in the engine caches, the store snapshot and
the artifact bus: hundreds of handler threads hammer those paths at
once (see ``benchmarks/run_serving.py``).

Deploys are two-phase so the session lock never covers the slow part:
the design is snapshotted *under* the lock (cheap — integration
replaces its unified objects, it never mutates them), the platform
backend builds *outside* it, and only the repository/bus bookkeeping
re-acquires it.  ``{"background": true}`` additionally moves the whole
deploy onto the session's FIFO job runner — one daemon worker thread
per session, jobs answered ``202`` immediately and polled via the
``jobs`` routes — so the front door overlaps slow deploys with
elicitation traffic.
"""

from __future__ import annotations

import json
import queue
import re
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.core.deployer import DeploymentResult

from repro.core.services.session import DesignSession
from repro.errors import QuarryError, RepositoryError
from repro.locks import new_lock, new_rlock
from repro.repository.metadata import MetadataRepository

#: Session names are path segments and repository namespace parts.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class ServeError(Exception):
    """An error with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _DeployJob:
    """One background deploy: submitted state, then result or error."""

    __slots__ = ("id", "platform", "lint_gate", "state", "result", "error")

    def __init__(self, job_id: str, platform: str, lint_gate: bool) -> None:
        self.id = job_id
        self.platform = platform
        self.lint_gate = lint_gate
        self.state = "queued"  # queued -> running -> done | error
        self.result: Optional[dict] = None
        self.error: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "job": self.id,
            "platform": self.platform,
            "state": self.state,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class _JobRunner:
    """A per-session FIFO of background deploys.

    One lazily-started daemon worker thread drains the queue, so jobs
    of one session run strictly in submission order (deploy N+1 sees
    the repository/bus state deploy N recorded) while the submitting
    handler thread answers ``202`` immediately.
    """

    def __init__(self, run, name: str) -> None:
        self._run = run  # callable(_DeployJob) -> result payload dict
        self._name = name
        self._queue: "queue.Queue[_DeployJob]" = queue.Queue()
        self._jobs: Dict[str, _DeployJob] = {}  # guarded-by: _JobRunner._lock
        self._order: List[str] = []  # guarded-by: _JobRunner._lock
        self._lock = new_lock("_JobRunner._lock")
        self._counter = 0  # guarded-by: _JobRunner._lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _JobRunner._lock

    def submit(self, platform: str, lint_gate: bool) -> str:
        with self._lock:
            self._counter += 1
            job = _DeployJob(f"job-{self._counter}", platform, lint_gate)
            self._jobs[job.id] = job
            self._order.append(job.id)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain,
                    name=f"repro-deploy-{self._name}",
                    daemon=True,
                )
                self._thread.start()
            # The enqueue must stay under the lock: two concurrent
            # submitters otherwise race between id allocation and the
            # put, and the worker drains jobs out of submission order.
            self._queue.put(job)
        return job.id

    def get(self, job_id: str) -> Optional[_DeployJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def summaries(self) -> List[dict]:
        with self._lock:
            return [
                {
                    "job": job_id,
                    "state": self._jobs[job_id].state,
                    "platform": self._jobs[job_id].platform,
                }
                for job_id in self._order
            ]

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            job.state = "running"
            try:
                job.result = self._run(job)
            except (QuarryError, RepositoryError) as exc:
                job.error = str(exc)
                job.state = "error"
            except Exception as exc:  # the runner thread must survive
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "error"
            else:
                job.state = "done"


class SessionManager:
    """Named design sessions over one shared metadata repository.

    ``create``/``get`` are guarded by the manager lock; every operation
    *on* a session must run inside ``with manager.locked(name):`` so a
    session's fold state only ever sees one mutator at a time.  Deploys
    go through :meth:`deploy` (two-phase: snapshot under the lock,
    build outside it, record under it) or :meth:`submit_deploy` (same
    phases on the session's background job runner).
    """

    def __init__(
        self,
        ontology,
        schema,
        mappings,
        repository: Optional[MetadataRepository] = None,
        source_database=None,
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._repository = (
            repository if repository is not None else MetadataRepository()
        )
        #: Optional database handed to ``deploy`` for platforms that
        #: extract (``native``); ``None`` serves design-only platforms.
        self.source_database = source_database
        self._sessions: Dict[str, DesignSession] = {}  # guarded-by: SessionManager._lock
        self._locks: Dict[str, threading.RLock] = {}  # guarded-by: SessionManager._lock
        self._jobs: Dict[str, _JobRunner] = {}  # guarded-by: SessionManager._lock
        self._lock = new_lock("SessionManager._lock")

    def create(self, name: str) -> DesignSession:
        if not _NAME_PATTERN.match(name or ""):
            raise ServeError(
                400,
                "session name must be 1-64 characters of "
                "[A-Za-z0-9_.-]",
            )
        with self._lock:
            if name in self._sessions:
                raise ServeError(409, f"session {name!r} already exists")
            session = DesignSession(
                self._ontology,
                self._schema,
                self._mappings,
                repository=self._repository,
                session=name,
            )
            self._sessions[name] = session
            self._locks[name] = new_rlock("SessionManager.session")
            self._jobs[name] = _JobRunner(
                lambda job, session_name=name: _deploy_payload(
                    self.deploy(
                        session_name, job.platform, lint_gate=job.lint_gate
                    )
                ),
                name,
            )
            return session

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @contextmanager
    def locked(self, name: str):
        """The named session, held under its per-session lock."""
        with self._lock:
            session = self._sessions.get(name)
            lock = self._locks.get(name)
        if session is None or lock is None:
            raise ServeError(404, f"unknown session {name!r}")
        with lock:
            yield session

    # -- deploys ------------------------------------------------------------

    def deploy(
        self, name: str, platform: str, lint_gate: bool = True
    ) -> DeploymentResult:
        """Two-phase deploy of one session's design.

        Snapshot under the session lock, build outside it, record
        under it again.  The snapshot is consistent without copying:
        the integration service *replaces* its unified MD/ETL objects
        on every fold, so the references taken here are immutable from
        the session's point of view and a concurrent elicitation can
        proceed — ``status``/``design`` reads no longer queue behind a
        slow platform backend.
        """
        with self.locked(name) as session:
            unified_md, unified_etl = session.unified_design()
            deployment = session.deployment
        result = deployment.build(
            unified_md,
            unified_etl,
            platform,
            source_database=self.source_database,
            lint_gate=lint_gate,
        )
        with self.locked(name):
            deployment.record(result, platform, lint_gate=lint_gate)
        return result

    def submit_deploy(
        self, name: str, platform: str, lint_gate: bool = True
    ) -> str:
        """Enqueue a background deploy; returns its job id."""
        with self._lock:
            runner = self._jobs.get(name)
        if runner is None:
            raise ServeError(404, f"unknown session {name!r}")
        return runner.submit(platform, lint_gate)

    def job(self, name: str, job_id: str) -> dict:
        with self._lock:
            runner = self._jobs.get(name)
        if runner is None:
            raise ServeError(404, f"unknown session {name!r}")
        job = runner.get(job_id)
        if job is None:
            raise ServeError(
                404, f"unknown job {job_id!r} in session {name!r}"
            )
        return job.to_dict()

    def jobs(self, name: str) -> List[dict]:
        with self._lock:
            runner = self._jobs.get(name)
        if runner is None:
            raise ServeError(404, f"unknown session {name!r}")
        return runner.summaries()


def tpch_manager(**kwargs) -> SessionManager:
    """A manager over the TPC-H demo domain (the CLI's domain)."""
    from repro.sources import tpch

    return SessionManager(
        tpch.ontology(), tpch.schema(), tpch.mappings(), **kwargs
    )


# -- request handling ---------------------------------------------------------


def _deploy_payload(result: DeploymentResult) -> dict:
    return {
        "design": result.design,
        "platform": result.platform,
        "artifacts": dict(result.artifacts),
        "loaded": dict(result.stats.loaded) if result.stats else None,
    }


def _design_summary(session: DesignSession) -> dict:
    unified_md, unified_etl = session.unified_design()
    return {
        "facts": sorted(unified_md.facts),
        "dimensions": sorted(unified_md.dimensions),
        "etl_operations": len(unified_etl),
        "operators": [
            {"name": node.name, "kind": node.kind}
            for node in unified_etl.nodes()
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the session manager (set by the server)."""

    manager: SessionManager  # injected by QuarryServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the load generator's job, not ours

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError(400, "request body must be a JSON object")
        return payload

    def _route(self, method: str) -> Tuple[int, dict]:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if method == "GET" and parts == ["healthz"]:
            return 200, {
                "status": "ok",
                "sessions": self.manager.count(),
            }
        if parts and parts[0] == "sessions":
            return self._route_sessions(method, parts[1:])
        raise ServeError(404, f"no such route: {method} {self.path}")

    def _route_sessions(
        self, method: str, parts: List[str]
    ) -> Tuple[int, dict]:
        manager: SessionManager = self.manager
        if not parts:
            if method == "GET":
                return 200, {"sessions": manager.names()}
            if method == "POST":
                name = self._body().get("name")
                if not isinstance(name, str):
                    raise ServeError(400, "body needs a 'name' string")
                manager.create(name)
                return 201, {"session": name}
            raise ServeError(404, f"no such route: {method} /sessions")
        name, rest = parts[0], parts[1:]
        if method == "GET" and rest == ["status"]:
            with manager.locked(name) as session:
                return 200, session.status().to_dict()
        if method == "GET" and rest == ["design"]:
            with manager.locked(name) as session:
                return 200, _design_summary(session)
        if method == "GET" and rest == ["requirements"]:
            with manager.locked(name) as session:
                return 200, {
                    "requirements": [
                        requirement.id
                        for requirement in session.requirements()
                    ]
                }
        if method == "POST" and rest == ["requirements"]:
            xrq_text = self._body().get("xrq")
            if not isinstance(xrq_text, str):
                raise ServeError(400, "body needs an 'xrq' string")
            with manager.locked(name) as session:
                report = session.add_requirement_xrq(xrq_text)
                return 201, report.to_dict()
        if (
            method == "DELETE"
            and len(rest) == 2
            and rest[0] == "requirements"
        ):
            with manager.locked(name) as session:
                report = session.remove_requirement(rest[1])
                return 200, report.to_dict()
        if method == "POST" and rest == ["deploy"]:
            body = self._body()
            platform = body.get("platform")
            if not isinstance(platform, str):
                raise ServeError(400, "body needs a 'platform' string")
            lint_gate = bool(body.get("lint_gate", True))
            if body.get("background"):
                job_id = manager.submit_deploy(
                    name, platform, lint_gate=lint_gate
                )
                return 202, {
                    "job": job_id,
                    "state": "queued",
                    "status_url": f"/sessions/{name}/jobs/{job_id}",
                }
            result = manager.deploy(name, platform, lint_gate=lint_gate)
            return 200, _deploy_payload(result)
        if method == "GET" and rest == ["jobs"]:
            return 200, {"jobs": manager.jobs(name)}
        if method == "GET" and len(rest) == 2 and rest[0] == "jobs":
            return 200, manager.job(name, rest[1])
        raise ServeError(
            404, f"no such route: {method} /sessions/{name}/{'/'.join(rest)}"
        )

    def _handle(self, method: str) -> None:
        try:
            status, payload = self._route(method)
        except ServeError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except KeyError as exc:
            self._reply(404, {"error": f"not found: {exc}"})
        except (QuarryError, RepositoryError) as exc:
            message = str(exc)
            status = 409 if "already exists" in message else 400
            self._reply(status, {"error": message})
        except Exception as exc:  # the server must survive any request
            self._reply(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        else:
            self._reply(status, payload)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class QuarryServer:
    """A threaded HTTP server bound to one session manager.

    ``port=0`` picks a free port (``server.port`` reports it).  Use as
    a context manager, or call :meth:`start`/:meth:`shutdown`.
    """

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"manager": manager})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.manager = manager

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QuarryServer":
        """Serve on a background thread; returns once the socket listens."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "QuarryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
