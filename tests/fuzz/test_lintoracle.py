"""The static/dynamic agreement oracle and its corpus plumbing."""

from repro.fuzz import corpus
from repro.fuzz.lintoracle import (
    LintTrial,
    build_lint_trial,
    check_lint_trial,
    lint_flow_trial,
    shrink_lint_trial,
)
from repro.xformats import xlm


def test_trials_are_deterministic():
    first, second = build_lint_trial(11), build_lint_trial(11)
    assert xlm.dumps(first.flow) == xlm.dumps(second.flow)
    assert [t.rows for t in first.tables] == [t.rows for t in second.tables]


def test_lint_seed_differs_from_flow_seed():
    """The lint generator draws from its own RNG stream, so the trials
    explore different flows than the plain differential ones."""
    from repro.fuzz.flowgen import build_flow_trial

    assert xlm.dumps(build_lint_trial(3).flow) != xlm.dumps(
        build_flow_trial(3).flow
    )


def test_oracle_agrees_over_a_seed_range():
    disagreements = [
        detail
        for seed in range(40)
        if (detail := check_lint_trial(build_lint_trial(seed))) is not None
    ]
    assert disagreements == []


def test_corpus_round_trip_preserves_the_subclass():
    trial = build_lint_trial(5)
    entry = corpus.encode_trial(trial, "round trip")
    assert entry["kind"] == "lint"
    decoded = corpus.decode_entry(entry)
    assert isinstance(decoded, LintTrial)
    assert xlm.dumps(decoded.flow) == xlm.dumps(trial.flow)


def test_shrinking_preserves_the_subclass():
    trial = build_lint_trial(9)
    shrunk = shrink_lint_trial(trial, budget=20)
    assert isinstance(shrunk, LintTrial)


def test_lint_flow_trial_returns_a_report():
    report = lint_flow_trial(build_lint_trial(2))
    assert hasattr(report, "diagnostics")


def test_seed_262_regression_is_pinned():
    """The witness-row soundness bug: an unhashable join-key value whose
    row has a NULL in a sibling key attribute never reaches the hash."""
    from pathlib import Path

    path = Path(__file__).parent / "corpus" / "seed262_lint.json"
    assert path.exists()
    import json

    entry = json.loads(path.read_text())
    assert entry["kind"] == "lint"
    assert corpus.replay(entry) is None
    # and the lint verdict is the demoted POSSIBLE, not the unsound DEFINITE
    report = lint_flow_trial(corpus.decode_entry(entry))
    assert report.by_code("QRY202") == []
    assert any(d.code == "QRY203" for d in report.diagnostics)
