"""Core ontology model: concepts, properties, multiplicities.

The model is a pragmatic subset of OWL sufficient for Quarry's needs:

* **concepts** (OWL classes) with an optional parent (subsumption),
* **datatype properties** attaching typed attributes to a concept,
* **object properties** relating two concepts with a multiplicity
  (the multiplicities drive MD reasoning: a dimension hierarchy is a
  chain of to-one relationships, and fact-to-dimension arcs must be
  many-to-one to preserve summarizability),
* free-form **labels** (the "business vocabulary" enrichment of §2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DuplicateDefinitionError,
    UnknownConceptError,
    UnknownPropertyError,
)
from repro.expressions.types import ScalarType


class Multiplicity(enum.Enum):
    """Multiplicity of an object property, read domain -> range."""

    ONE_TO_ONE = "1-1"
    MANY_TO_ONE = "N-1"
    ONE_TO_MANY = "1-N"
    MANY_TO_MANY = "N-N"

    @property
    def to_one(self) -> bool:
        """Whether each domain instance maps to at most one range instance."""
        return self in (Multiplicity.ONE_TO_ONE, Multiplicity.MANY_TO_ONE)

    @property
    def inverse(self) -> "Multiplicity":
        """The multiplicity of the property read range -> domain."""
        if self is Multiplicity.MANY_TO_ONE:
            return Multiplicity.ONE_TO_MANY
        if self is Multiplicity.ONE_TO_MANY:
            return Multiplicity.MANY_TO_ONE
        return self


@dataclass(frozen=True)
class Concept:
    """An ontology concept (OWL class).

    ``parent`` names the concept this one specialises, or ``None`` for a
    root concept.  ``label`` carries the business-vocabulary name shown
    to non-expert users by the Requirements Elicitor.
    """

    id: str
    label: Optional[str] = None
    parent: Optional[str] = None
    description: str = ""

    @property
    def display_name(self) -> str:
        return self.label if self.label else self.id


@dataclass(frozen=True)
class DatatypeProperty:
    """A typed attribute of a concept (OWL datatype property)."""

    id: str
    concept: str
    range: ScalarType
    label: Optional[str] = None
    description: str = ""

    @property
    def display_name(self) -> str:
        return self.label if self.label else self.id


@dataclass(frozen=True)
class ObjectProperty:
    """A binary relationship between two concepts (OWL object property)."""

    id: str
    domain: str
    range: str
    multiplicity: Multiplicity = Multiplicity.MANY_TO_ONE
    label: Optional[str] = None
    description: str = ""

    @property
    def display_name(self) -> str:
        return self.label if self.label else self.id


@dataclass
class Ontology:
    """A domain ontology: a named collection of concepts and properties.

    All lookups are by id.  The ontology enforces referential integrity
    on insertion (property domains/ranges and concept parents must
    exist) and uniqueness of ids across all element kinds.
    """

    name: str
    description: str = ""
    _concepts: Dict[str, Concept] = field(default_factory=dict)
    _datatype_properties: Dict[str, DatatypeProperty] = field(default_factory=dict)
    _object_properties: Dict[str, ObjectProperty] = field(default_factory=dict)
    #: Bumped on every mutation; derived views (graphs, reasoners) key
    #: their caches on it so stale closures are never served.
    _generation: int = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter for cache invalidation."""
        return self._generation

    # -- insertion ---------------------------------------------------------

    def add_concept(self, concept: Concept) -> Concept:
        """Add a concept; its parent (if any) must already exist."""
        self._check_fresh_id(concept.id)
        if concept.parent is not None and concept.parent not in self._concepts:
            raise UnknownConceptError(concept.parent)
        self._concepts[concept.id] = concept
        self._generation += 1
        return concept

    def add_datatype_property(self, prop: DatatypeProperty) -> DatatypeProperty:
        """Add a datatype property; its concept must already exist."""
        self._check_fresh_id(prop.id)
        if prop.concept not in self._concepts:
            raise UnknownConceptError(prop.concept)
        self._datatype_properties[prop.id] = prop
        self._generation += 1
        return prop

    def add_object_property(self, prop: ObjectProperty) -> ObjectProperty:
        """Add an object property; domain and range must already exist."""
        self._check_fresh_id(prop.id)
        for concept_id in (prop.domain, prop.range):
            if concept_id not in self._concepts:
                raise UnknownConceptError(concept_id)
        self._object_properties[prop.id] = prop
        self._generation += 1
        return prop

    # -- mutation ----------------------------------------------------------

    def replace_concept(self, concept: Concept) -> Concept:
        """Overwrite an existing concept (e.g. to re-parent it)."""
        if concept.id not in self._concepts:
            raise UnknownConceptError(concept.id)
        if concept.parent is not None and concept.parent not in self._concepts:
            raise UnknownConceptError(concept.parent)
        self._concepts[concept.id] = concept
        self._generation += 1
        return concept

    def replace_object_property(self, prop: ObjectProperty) -> ObjectProperty:
        """Overwrite an existing object property (e.g. to change its
        multiplicity); domain and range must exist."""
        if prop.id not in self._object_properties:
            raise UnknownPropertyError(prop.id)
        for concept_id in (prop.domain, prop.range):
            if concept_id not in self._concepts:
                raise UnknownConceptError(concept_id)
        self._object_properties[prop.id] = prop
        self._generation += 1
        return prop

    def replace_datatype_property(self, prop: DatatypeProperty) -> DatatypeProperty:
        """Overwrite an existing datatype property (e.g. to retype it)."""
        if prop.id not in self._datatype_properties:
            raise UnknownPropertyError(prop.id)
        if prop.concept not in self._concepts:
            raise UnknownConceptError(prop.concept)
        self._datatype_properties[prop.id] = prop
        self._generation += 1
        return prop

    def rename_concept(self, old_id: str, new_id: str) -> Concept:
        """Rename a concept, re-pointing every reference to it.

        Datatype properties owned by it, object properties touching it
        and child concepts parented on it all follow the rename; the
        concept keeps its label, parent and description.
        """
        if old_id not in self._concepts:
            raise UnknownConceptError(old_id)
        if new_id != old_id:
            self._check_fresh_id(new_id)
        old = self._concepts.pop(old_id)
        renamed = Concept(
            id=new_id,
            label=old.label,
            parent=old.parent,
            description=old.description,
        )
        self._concepts[new_id] = renamed
        for concept in list(self._concepts.values()):
            if concept.parent == old_id:
                self._concepts[concept.id] = Concept(
                    id=concept.id,
                    label=concept.label,
                    parent=new_id,
                    description=concept.description,
                )
        for prop in list(self._datatype_properties.values()):
            if prop.concept == old_id:
                self._datatype_properties[prop.id] = DatatypeProperty(
                    id=prop.id,
                    concept=new_id,
                    range=prop.range,
                    label=prop.label,
                    description=prop.description,
                )
        for prop in list(self._object_properties.values()):
            if prop.domain == old_id or prop.range == old_id:
                self._object_properties[prop.id] = ObjectProperty(
                    id=prop.id,
                    domain=new_id if prop.domain == old_id else prop.domain,
                    range=new_id if prop.range == old_id else prop.range,
                    multiplicity=prop.multiplicity,
                    label=prop.label,
                    description=prop.description,
                )
        self._generation += 1
        return renamed

    def move_datatype_property(
        self, property_id: str, new_concept: str
    ) -> DatatypeProperty:
        """Re-home a datatype property onto another concept."""
        if property_id not in self._datatype_properties:
            raise UnknownPropertyError(property_id)
        if new_concept not in self._concepts:
            raise UnknownConceptError(new_concept)
        prop = self._datatype_properties[property_id]
        moved = DatatypeProperty(
            id=prop.id,
            concept=new_concept,
            range=prop.range,
            label=prop.label,
            description=prop.description,
        )
        self._datatype_properties[property_id] = moved
        self._generation += 1
        return moved

    def remove_concept(self, concept_id: str) -> None:
        """Remove a concept; it must no longer be referenced by anything."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        referents = [
            prop.id
            for prop in self._datatype_properties.values()
            if prop.concept == concept_id
        ]
        referents += [
            prop.id
            for prop in self._object_properties.values()
            if prop.domain == concept_id or prop.range == concept_id
        ]
        referents += [
            concept.id
            for concept in self._concepts.values()
            if concept.parent == concept_id
        ]
        if referents:
            raise DuplicateDefinitionError(
                f"concept {concept_id!r} is still referenced by: "
                + ", ".join(sorted(referents))
            )
        del self._concepts[concept_id]
        self._generation += 1

    def remove_object_property(self, property_id: str) -> None:
        """Remove an object property."""
        if property_id not in self._object_properties:
            raise UnknownPropertyError(property_id)
        del self._object_properties[property_id]
        self._generation += 1

    # -- transactional evolution -------------------------------------------

    def snapshot(self) -> dict:
        """A restorable copy of the element tables (elements are frozen)."""
        return {
            "concepts": dict(self._concepts),
            "datatype_properties": dict(self._datatype_properties),
            "object_properties": dict(self._object_properties),
        }

    def restore(self, snapshot: dict) -> None:
        """Roll the ontology back to a :meth:`snapshot` (in place).

        The generation still advances so derived caches rebuild.
        """
        self._concepts = dict(snapshot["concepts"])
        self._datatype_properties = dict(snapshot["datatype_properties"])
        self._object_properties = dict(snapshot["object_properties"])
        self._generation += 1

    def _check_fresh_id(self, element_id: str) -> None:
        if (
            element_id in self._concepts
            or element_id in self._datatype_properties
            or element_id in self._object_properties
        ):
            raise DuplicateDefinitionError(
                f"id {element_id!r} is already defined in ontology {self.name!r}"
            )

    # -- lookup --------------------------------------------------------------

    def concept(self, concept_id: str) -> Concept:
        """Look up a concept by id; raises :class:`UnknownConceptError`."""
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def has_concept(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def datatype_property(self, property_id: str) -> DatatypeProperty:
        try:
            return self._datatype_properties[property_id]
        except KeyError:
            raise UnknownPropertyError(property_id) from None

    def has_datatype_property(self, property_id: str) -> bool:
        return property_id in self._datatype_properties

    def object_property(self, property_id: str) -> ObjectProperty:
        try:
            return self._object_properties[property_id]
        except KeyError:
            raise UnknownPropertyError(property_id) from None

    def has_object_property(self, property_id: str) -> bool:
        return property_id in self._object_properties

    def find_by_label(self, label: str) -> List[str]:
        """Ids of all elements whose label or id equals ``label``.

        Matching is case-insensitive; used to resolve business-vocabulary
        terms typed by end-users.
        """
        wanted = label.lower()
        matches = []
        all_elements = [
            *self._concepts.values(),
            *self._datatype_properties.values(),
            *self._object_properties.values(),
        ]
        for element in all_elements:
            if element.id.lower() == wanted:
                matches.append(element.id)
            elif element.label is not None and element.label.lower() == wanted:
                matches.append(element.id)
        return matches

    # -- iteration -----------------------------------------------------------

    def concepts(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def datatype_properties(
        self, concept_id: Optional[str] = None
    ) -> Iterator[DatatypeProperty]:
        """All datatype properties, optionally only those of one concept."""
        if concept_id is not None and concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        for prop in self._datatype_properties.values():
            if concept_id is None or prop.concept == concept_id:
                yield prop

    def object_properties(self) -> Iterator[ObjectProperty]:
        return iter(self._object_properties.values())

    def properties_from(self, concept_id: str) -> Iterator[ObjectProperty]:
        """Object properties whose domain is ``concept_id``."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        for prop in self._object_properties.values():
            if prop.domain == concept_id:
                yield prop

    def properties_to(self, concept_id: str) -> Iterator[ObjectProperty]:
        """Object properties whose range is ``concept_id``."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        for prop in self._object_properties.values():
            if prop.range == concept_id:
                yield prop

    # -- statistics ------------------------------------------------------------

    def size(self) -> Tuple[int, int, int]:
        """(#concepts, #datatype properties, #object properties)."""
        return (
            len(self._concepts),
            len(self._datatype_properties),
            len(self._object_properties),
        )

    def __contains__(self, element_id: str) -> bool:
        return (
            element_id in self._concepts
            or element_id in self._datatype_properties
            or element_id in self._object_properties
        )
