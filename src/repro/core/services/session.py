"""Design sessions: one named, isolated design lifecycle per session.

A :class:`DesignSession` wires the four services — elicitation,
interpretation, integration, deployment — onto one synchronous
:class:`~repro.core.services.bus.ArtifactBus` over a session-scoped
view of a (possibly shared) metadata repository.  Many sessions can
share one document store: each gets its own namespaced collections,
its own bus event log and its own fold state, so concurrent sessions
never observe each other's artefacts.

The session is also the *transaction boundary* of the lifecycle: every
mutating operation brackets the pipeline with a bus marker and rolls
the event log back if any stage raises, so the persisted log only ever
contains committed history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.deployer import BackendRegistry, Deployer, DeploymentResult
from repro.core.integrator import EtlIntegrator, MDIntegrator
from repro.core.interpreter import PartialDesign
from repro.core.requirements import Elicitor
from repro.core.requirements.model import InformationRequirement
from repro.core.requirements.vocabulary import Vocabulary
from repro.core.services import interpretation as _interpretation
from repro.core.services.bus import ArtifactBus
from repro.core.services.deployment import DeploymentService
from repro.core.services.elicitation import ElicitationService
from repro.core.services.evolution import EvolutionReport, EvolutionService
from repro.core.services.integration import (
    IntegrationService,
    retarget_loaders,
)
from repro.core.services.interpretation import InterpretationService
from repro.core.services.reports import ChangeReport, DesignStatus
from repro.engine.database import Database
from repro.errors import QuarryError
from repro.etlmodel.cost import CostModel
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.complexity import ComplexityWeights, DEFAULT_WEIGHTS, analyze
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.repository.metadata import DEFAULT_SESSION, MetadataRepository
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema
from repro.xformats import xrq


class DesignSession:
    """One named design lifecycle over a session-scoped repository."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        repository: Optional[MetadataRepository] = None,
        session: str = DEFAULT_SESSION,
        md_weights: ComplexityWeights = DEFAULT_WEIGHTS,
        cost_model: Optional[CostModel] = None,
        align_etl: bool = True,
        complement: bool = True,
        row_counts: Optional[Dict[str, int]] = None,
        backends: Optional[BackendRegistry] = None,
        scd_policies: Optional[Dict[str, object]] = None,
        scd_effective_date: str = "1970-01-01",
    ) -> None:
        base = repository if repository is not None else MetadataRepository()
        self._session = session
        self._repository = base.for_session(session)
        base.register_session(session)
        self._repository.save_ontology(ontology)
        self._align_etl = align_etl
        self._complement = complement
        self._row_counts = row_counts
        self._scd_policies = dict(scd_policies or {})
        self._scd_effective_date = scd_effective_date
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._bus = ArtifactBus(self._repository, session)
        self._elicitation = ElicitationService(ontology, self._bus)
        self._interpretation = InterpretationService(
            ontology,
            schema,
            mappings,
            self._bus,
            complement=complement,
            scd_policies=scd_policies,
            scd_effective_date=scd_effective_date,
        )
        self._integration = IntegrationService(
            self._repository,
            self._bus,
            md_weights=md_weights,
            cost_model=cost_model,
            align_etl=align_etl,
            row_counts=row_counts,
        )
        self._deployment = DeploymentService(
            ontology, schema, self._repository, self._bus, backends=backends
        )
        self._evolution = EvolutionService(
            ontology,
            schema,
            mappings,
            self._interpretation,
            self._integration,
            self._bus,
        )

    # -- component access --------------------------------------------------

    @property
    def session(self) -> str:
        return self._session

    @property
    def repository(self) -> MetadataRepository:
        """The session-scoped metadata repository view."""
        return self._repository

    @property
    def bus(self) -> ArtifactBus:
        return self._bus

    @property
    def elicitation(self) -> ElicitationService:
        return self._elicitation

    @property
    def interpretation(self) -> InterpretationService:
        return self._interpretation

    @property
    def integration(self) -> IntegrationService:
        return self._integration

    @property
    def deployment(self) -> DeploymentService:
        return self._deployment

    @property
    def deployer(self) -> Deployer:
        return self._deployment.deployer

    @property
    def integration_counts(self) -> Dict[str, int]:
        return self._integration.integration_counts

    def elicitor(self) -> Elicitor:
        """The Requirements Elicitor backend over this domain."""
        return self._elicitation.elicitor()

    def vocabulary(self) -> Vocabulary:
        """Business-vocabulary resolution over this domain."""
        return self._elicitation.vocabulary()

    # -- lifecycle ---------------------------------------------------------

    def add_requirement(
        self, requirement: InformationRequirement
    ) -> ChangeReport:
        """Run one new requirement through the full service pipeline."""
        if self._integration.has(requirement.id):
            raise QuarryError(
                f"requirement {requirement.id!r} already exists; use "
                f"change_requirement"
            )
        return self._pipeline(
            lambda: self._elicitation.submit(requirement), action="added"
        )

    def add_requirement_xrq(self, xrq_text: str) -> ChangeReport:
        """Add a requirement delivered as an xRQ document."""
        return self.add_requirement(xrq.loads(xrq_text))

    def add_partial_design(
        self,
        requirement: InformationRequirement,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> ChangeReport:
        """Integrate a partial design produced by an *external* tool.

        The interpretation service re-validates the §2.2 soundness
        assumptions on the submitted design instead of generating one.
        """
        if self._integration.has(requirement.id):
            raise QuarryError(
                f"requirement {requirement.id!r} already exists; use "
                f"change_requirement"
            )
        return self._pipeline(
            lambda: self._elicitation.submit_external(
                requirement, md_schema, etl_flow
            ),
            action="added",
        )

    def change_requirement(
        self, requirement: InformationRequirement
    ) -> ChangeReport:
        """Replace an existing requirement and rebuild the design."""
        if not self._integration.has(requirement.id):
            raise QuarryError(f"unknown requirement {requirement.id!r}")
        self.remove_requirement(requirement.id)
        report = self.add_requirement(requirement)
        return ChangeReport(
            requirement_id=requirement.id,
            action="changed",
            partial=report.partial,
            md_integration=report.md_integration,
            etl_consolidation=report.etl_consolidation,
        )

    def remove_requirement(self, requirement_id: str) -> ChangeReport:
        """Drop a requirement; only the fold suffix is re-integrated."""
        marker = self._bus.marker()
        try:
            self._integration.remove(requirement_id)
        except Exception:
            self._bus.rollback(marker)
            raise
        self._integration.take_last_commit()
        return ChangeReport(requirement_id=requirement_id, action="removed")

    def rebuild(self) -> None:
        """Re-integrate every partial design from scratch."""
        self._integration.rebuild()
        self._integration.take_last_commit()

    # -- design evolution --------------------------------------------------

    @property
    def evolution(self) -> EvolutionService:
        return self._evolution

    def rename_concept(self, old_id: str, new_id: str) -> EvolutionReport:
        """Rename an ontology concept; affected designs follow."""
        return self._evolution.rename_concept(old_id, new_id)

    def split_concept(
        self,
        concept: str,
        new_concept: str,
        properties,
        relationship: Optional[str] = None,
    ) -> EvolutionReport:
        """Carve a new concept (same source table) out of an existing one."""
        return self._evolution.split_concept(
            concept, new_concept, properties, relationship=relationship
        )

    def merge_concepts(self, source: str, target: str) -> EvolutionReport:
        """Fold one concept into another (same source table)."""
        return self._evolution.merge_concepts(source, target)

    def retype_property(self, property_id: str, new_type) -> EvolutionReport:
        """Change a datatype property's range type."""
        return self._evolution.retype_property(property_id, new_type)

    def _pipeline(self, publish, action: str) -> ChangeReport:
        """Run one elicitation through the bus; roll the log back on error.

        Delivery is synchronous, so by the time ``publish`` returns the
        interpretation and integration services have committed.  If any
        stage raises, the events of the failed operation are dropped
        from the log (in-memory fold state is the integration service's
        concern and follows pre-service semantics).
        """
        marker = self._bus.marker()
        try:
            publish()
        except Exception:
            self._bus.rollback(marker)
            raise
        commit = self._integration.take_last_commit()
        if commit is None:  # no subscriber committed — nothing to report
            raise QuarryError("pipeline produced no committed design")
        partial, md_result, etl_result = commit
        return ChangeReport(
            requirement_id=partial.requirement.id,
            action=action,
            partial=partial,
            md_integration=md_result,
            etl_consolidation=etl_result,
        )

    # -- views -------------------------------------------------------------

    def unified_design(self) -> Tuple[MDSchema, EtlFlow]:
        """The current unified MD schema and ETL flow."""
        return self._integration.unified_design()

    def requirements(self) -> List[InformationRequirement]:
        return self._integration.requirements()

    def partial_design(self, requirement_id: str) -> PartialDesign:
        return self._integration.partial_design(requirement_id)

    def satisfiability_problems(self) -> List[str]:
        return self._integration.satisfiability_problems()

    def status(self) -> DesignStatus:
        """Summary metrics of the current unified design."""
        unified_md, unified_etl = self._integration.unified_design()
        report = analyze(unified_md, self._integration.md_weights)
        return DesignStatus(
            requirements=self._integration.order(),
            facts=list(unified_md.facts),
            dimensions=list(unified_md.dimensions),
            complexity=report.score,
            etl_operations=len(unified_etl),
            estimated_etl_cost=self._integration.cost_model.total(
                unified_etl, self._row_counts
            ),
        )

    # -- static analysis ---------------------------------------------------

    def lint(self, *, disable=(), only=None):
        """Lint the unified design: ETL flow plus MD schema."""
        unified_md, unified_etl = self._integration.unified_design()
        return self._deployment.lint(
            unified_md, unified_etl, disable=disable, only=only
        )

    # -- deployment --------------------------------------------------------

    def deploy(
        self,
        platform: str,
        source_database: Optional[Database] = None,
        lint_gate: bool = True,
    ) -> DeploymentResult:
        """Deploy the unified design; records the artefacts in the repo."""
        unified_md, unified_etl = self._integration.unified_design()
        return self._deployment.deploy(
            unified_md,
            unified_etl,
            platform,
            source_database=source_database,
            lint_gate=lint_gate,
        )

    # -- persistence and replay --------------------------------------------

    def restore(self) -> bool:
        """Resume the fold state a previous session persisted.

        Returns ``False`` on stores that predate persisted session
        state (the caller falls back to re-adding requirements).
        """
        return self._integration.restore_from_repository()

    def replay_unified_design(self) -> Tuple[MDSchema, EtlFlow]:
        """Re-derive the unified design purely from the bus event log.

        Folds the logged ``partials``-topic envelopes (creations minus
        removals, in publication order) through fresh integrators —
        proof that the event log alone carries the whole design.
        """
        partials: Dict[str, Tuple[MDSchema, EtlFlow]] = {}
        for envelope in self._bus.events(_interpretation.TOPIC_PARTIALS):
            requirement_id = envelope.payload["requirement"]
            if envelope.kind == _interpretation.KIND_CREATED:
                partials.pop(requirement_id, None)
                partials[requirement_id] = (
                    InterpretationService.decode_partial(envelope)
                )
            elif envelope.kind == _interpretation.KIND_REPLACED:
                # Evolution swaps a partial *in place*: overwrite without
                # disturbing the fold position (dict order is kept when
                # assigning to an existing key).
                partials[requirement_id] = (
                    InterpretationService.decode_partial(envelope)
                )
            elif envelope.kind == _interpretation.KIND_REMOVED:
                partials.pop(requirement_id, None)
        md_integrator = MDIntegrator(weights=self._integration.md_weights)
        etl_integrator = EtlIntegrator(
            cost_model=self._integration.cost_model, align=self._align_etl
        )
        unified_md = MDSchema(name="unified")
        unified_etl = EtlFlow(name="unified")
        for partial_md, partial_etl in partials.values():
            md_result = md_integrator.integrate(unified_md, partial_md)
            etl_result = etl_integrator.consolidate(
                unified_etl,
                retarget_loaders(partial_etl, md_result),
                row_counts=self._row_counts,
            )
            unified_md = md_result.schema
            unified_etl = etl_result.flow
        return unified_md, unified_etl
