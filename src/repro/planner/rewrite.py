"""The cost-based rewrite pipeline: flow in, annotated plan out.

``plan_flow`` copies the flow and applies, in order:

1. **Selection pushdown** — filters move towards the sources (through
   unary operators and to the covering join input).  Unlike the
   integration normal form (:mod:`repro.etlmodel.equivalence`) this is
   *value-strict*: a selection never moves past a ``SurrogateKey``
   (assigned ids depend on pre-filter row order) and never past an
   expression that can raise on data (``/`` or ``%``) — the planned
   mode must preserve results AND error behaviour exactly.
2. **Projection pushdown** — ``prune_columns``: every branch narrows to
   the attributes its subtree needs.
3. **Join-chain reordering** — maximal left-deep chains of single-
   consumer INNER joins are reordered greedily by estimated fanout, so
   selective joins (a filtered dimension) run first.
4. **Build-side choice** — an INNER join whose right (build) side is
   estimated much larger than its left is flipped, so the hash index is
   built on the small side.
5. **Fusion veto** — fused single-pass chains with a tiny estimated
   input are marked not worth compiling.

Order-perturbing rewrites (3, 4) are gated on the absence of
transitively-downstream ``SurrogateKey`` (id assignment is order-
sensitive) and ``UnionOp`` (column order must match exactly) nodes.

The pipeline is *fail-safe*: if the flow does not survive schema
propagation (a deliberate error flow), or any rewrite step throws, the
planner returns an identity plan and the executor runs the original
flow — planned mode then fails with exactly the original error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.engine.stats import StatisticsCatalog
from repro.etlmodel.equivalence import (
    _MAX_PASSES,
    _rewrite_for_swap,
    prune_columns,
)
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    JoinType,
    Projection,
    Rename,
    Selection,
    Sort,
)
from repro.etlmodel.propagation import attribute_names, propagate
from repro.expressions import parse
from repro.expressions.ast import (
    BinaryOp,
    Expression,
    FunctionCall,
    UnaryOp,
    ValueList,
)
from repro.planner.estimator import NodeEstimate, estimate_flow
from repro.sources.schema import SourceSchema, make_table

#: Below this estimated input row count a fused chain is not worth the
#: per-chain compile: the plain per-node path wins on tiny relations.
FUSION_MINIMUM_ROWS = 48.0

#: The build side is only flipped when the imbalance is clear; a small
#: hysteresis keeps borderline (and therefore noisy) estimates stable.
BUILD_SIDE_HYSTERESIS = 2.0


@dataclass
class Plan:
    """An annotated, rewritten flow for ``Executor(mode="planned")``."""

    flow: EtlFlow
    estimates: Dict[str, float] = field(default_factory=dict)
    decisions: List[str] = field(default_factory=list)
    no_fuse: frozenset = frozenset()
    fallback: Optional[str] = None

    @property
    def rewritten(self) -> bool:
        return self.fallback is None and bool(self.decisions)


def _is_total(expression: str) -> bool:
    """Whether an expression can never raise on data (no ``/`` or ``%``).

    Moving a non-total expression changes which rows it evaluates —
    an error (``1/0``) could appear or disappear, breaking the planned
    mode's error-parity contract.
    """
    try:
        tree = parse(expression)
    except Exception:
        return False
    return _total_tree(tree)


def _total_tree(node: Expression) -> bool:
    if isinstance(node, BinaryOp):
        if node.operator in ("/", "%"):
            return False
        return _total_tree(node.left) and _total_tree(node.right)
    if isinstance(node, UnaryOp):
        return _total_tree(node.operand)
    if isinstance(node, FunctionCall):
        return all(_total_tree(argument) for argument in node.arguments)
    if isinstance(node, ValueList):
        return all(_total_tree(item) for item in node.items)
    return True


def _can_push_selection(flow: EtlFlow, selection: Selection, predecessor) -> bool:
    """Value-strict variant of the integrator's swap legality."""
    if len(flow.inputs(predecessor.name)) != 1:
        return False
    if len(flow.outputs(predecessor.name)) != 1:
        return False
    attributes = parse(selection.predicate).attributes()
    if isinstance(predecessor, (Extraction, Projection, Sort, Distinct)):
        return True
    if isinstance(predecessor, Selection):
        # Canonical order (smaller signature first) prevents ping-pong;
        # the other selection's evaluation set shrinks, so it must be
        # total as well.
        return (
            selection.signature() < predecessor.signature()
            and _is_total(predecessor.predicate)
        )
    if isinstance(predecessor, DerivedAttribute):
        return predecessor.output not in attributes and _is_total(
            predecessor.expression
        )
    if isinstance(predecessor, Rename):
        return True  # handled with back-substitution
    if isinstance(predecessor, Aggregation):
        # Group-key-only predicates remove whole groups — but only when
        # there ARE groups: a global aggregate (empty group-by) emits
        # one row even for empty input, so filtering first would let a
        # constant-false predicate *add* that row back.
        return bool(predecessor.group_by) and set(attributes) <= set(
            predecessor.group_by
        )
    # SurrogateKey: filtering first changes which ids are assigned —
    # never legal for value-preserving planning.  Datastore/Loader/
    # Union/Join: structurally not swappable here.
    return False


def _push_below_join(flow: EtlFlow, name: str, join: Join) -> bool:
    """Move a selection below a join onto the input that covers it.

    Unlike the integrator's ``_push_through_join`` this is join-type
    aware: for a LEFT join only the *left* (preserved) input is a legal
    destination — filtering the right side first creates NULL-padded
    output rows the unplanned flow never produces.
    """
    selection = flow.node(name)
    if len(flow.outputs(join.name)) != 1:
        return False
    attributes = set(parse(selection.predicate).attributes())
    available = attribute_names(flow)
    join_inputs = flow.inputs(join.name)
    if len(join_inputs) != 2:
        return False
    candidates = (
        join_inputs
        if join.join_type == JoinType.INNER
        else join_inputs[:1]
    )
    for input_name in candidates:
        input_attributes = available.get(input_name)
        if input_attributes is not None and attributes <= input_attributes:
            flow.remove_node(name)
            flow.insert_between(input_name, join.name, selection)
            return True
    return False


def _push_selections(flow: EtlFlow) -> int:
    """Push every *total* Selection towards the sources; returns #moves."""
    moves = 0
    for _pass in range(_MAX_PASSES):
        moved = False
        for name in flow.topological_order():
            operation = flow.node(name)
            if not isinstance(operation, Selection):
                continue
            if not _is_total(operation.predicate):
                continue
            inputs = flow.inputs(name)
            if len(inputs) != 1:
                continue
            predecessor = flow.node(inputs[0])
            if isinstance(predecessor, Join):
                if _push_below_join(flow, name, predecessor):
                    moved = True
                    break
                continue
            if _can_push_selection(flow, operation, predecessor):
                rewritten = _rewrite_for_swap(operation, predecessor)
                if rewritten is not operation:
                    flow.replace_node(name, rewritten)
                flow.swap_with_predecessor(name)
                moved = True
                break
        if not moved:
            break
        moves += 1
    return moves


def _order_sensitive_downstream(flow: EtlFlow, name: str) -> Optional[str]:
    """The kind of the first downstream node whose *values* or schema
    depend on input row/column order, or ``None`` when it is safe to
    perturb order at ``name``."""
    for successor in flow.downstream(name):
        kind = flow.node(successor).kind
        if kind in ("SurrogateKey", "Union"):
            return kind
    return None


def _inner_single_consumer(flow: EtlFlow, name: str) -> bool:
    operation = flow.node(name)
    return (
        isinstance(operation, Join)
        and operation.join_type == JoinType.INNER
        and len(flow.outputs(name)) == 1
    )


def _find_join_chains(flow: EtlFlow) -> List[List[str]]:
    """Maximal left-deep chains (length >= 2) of INNER joins where each
    join is the left input and sole consumer of the next."""
    chains: List[List[str]] = []
    join_names = [
        name
        for name in flow.topological_order()
        if isinstance(flow.node(name), Join)
        and flow.node(name).join_type == JoinType.INNER
    ]
    in_chain: Set[str] = set()
    for name in join_names:
        if name in in_chain:
            continue
        inputs = flow.inputs(name)
        if len(inputs) != 2:
            continue
        # Only start a chain at its bottom join (left input not itself a
        # chainable join).
        left = inputs[0]
        if flow.has_node(left) and _inner_single_consumer(flow, left):
            left_inputs = flow.inputs(left)
            if len(left_inputs) == 2:
                continue  # an inner member; the walk starts lower
        chain = [name]
        current = name
        while _inner_single_consumer(flow, current):
            successor = flow.outputs(current)[0]
            candidate = flow.node(successor)
            if (
                not isinstance(candidate, Join)
                or candidate.join_type != JoinType.INNER
                or len(flow.inputs(successor)) != 2
                or flow.inputs(successor)[0] != current
            ):
                break
            chain.append(successor)
            current = successor
        if len(chain) >= 2:
            chains.append(chain)
            in_chain.update(chain)
    return chains


def _reorder_chain(
    flow: EtlFlow,
    chain: List[str],
    estimates: Dict[str, NodeEstimate],
    names: Dict[str, Optional[set]],
    decisions: List[str],
) -> bool:
    """Greedily reorder one chain by estimated fanout; returns whether
    the edge list was rewired."""
    blocker = _order_sensitive_downstream(flow, chain[-1])
    if blocker is not None:
        return False
    base = flow.inputs(chain[0])[0]
    base_names = names.get(base)
    if base_names is None:
        return False
    items = []
    for join_name in chain:
        left_input, right_input = flow.inputs(join_name)
        right_names = names.get(right_input)
        if right_names is None:
            return False
        join_est = estimates[join_name].rows
        left_est = max(estimates[left_input].rows, 1.0)
        items.append(
            {
                "join": join_name,
                "right": right_input,
                "right_names": right_names,
                "fanout": join_est / left_est,
            }
        )
    available = set(base_names)
    new_order: List[str] = []
    remaining = list(items)
    while remaining:
        legal = [
            item
            for item in remaining
            if set(flow.node(item["join"]).left_keys) <= available
        ]
        if not legal:
            return False  # keys come from mid-chain outputs; keep as-is
        best = min(legal, key=lambda item: item["fanout"])
        new_order.append(best["join"])
        available |= best["right_names"]
        remaining.remove(best)
    if new_order == chain:
        return False
    # Rewire the spine in place.  Every spine edge is either the left
    # edge of a chain join or the consumer edge of the old top; index-
    # preserving replacement keeps left/right input slots intact.
    old_left = {join: flow.inputs(join)[0] for join in chain}
    new_left = {
        join: (base if position == 0 else new_order[position - 1])
        for position, join in enumerate(new_order)
    }
    top_old, top_new = chain[-1], new_order[-1]
    joins = set(chain)
    from repro.etlmodel.flow import Edge

    edges = flow._edges
    for index, edge in enumerate(edges):
        if edge.target in joins and edge.source == old_left[edge.target]:
            edges[index] = Edge(new_left[edge.target], edge.target)
        elif edge.source == top_old and edge.target not in joins:
            edges[index] = Edge(top_new, edge.target)
    decisions.append(
        "join-reorder: " + " -> ".join(new_order)
        + f" (was {' -> '.join(chain)})"
    )
    return True


def _reorder_join_chains(
    flow: EtlFlow,
    catalog: StatisticsCatalog,
    decisions: List[str],
) -> int:
    chains = _find_join_chains(flow)
    if not chains:
        return 0
    estimates = estimate_flow(flow, catalog)
    names = attribute_names(flow)
    changed = 0
    for chain in chains:
        if _reorder_chain(flow, chain, estimates, names, decisions):
            changed += 1
    return changed


def _choose_build_sides(
    flow: EtlFlow,
    catalog: StatisticsCatalog,
    decisions: List[str],
) -> int:
    """Flip INNER joins whose build (right) side dwarfs the probe side."""
    estimates = estimate_flow(flow, catalog)
    flipped = 0
    from repro.etlmodel.flow import Edge

    for name in flow.topological_order():
        operation = flow.node(name)
        if (
            not isinstance(operation, Join)
            or operation.join_type != JoinType.INNER
        ):
            continue
        if any(
            left == right
            for left, right in zip(operation.left_keys, operation.right_keys)
        ):
            # A collapsed same-named key keeps the LEFT side's copy of
            # the value; Python's cross-type equality (True == 1,
            # 1 == 1.0) means the two copies can differ, so flipping
            # sides could change the surviving value.
            continue
        inputs = flow.inputs(name)
        if len(inputs) != 2:
            continue
        left_rows = estimates[inputs[0]].rows
        right_rows = estimates[inputs[1]].rows
        if right_rows <= left_rows * BUILD_SIDE_HYSTERESIS:
            continue
        if _order_sensitive_downstream(flow, name) is not None:
            continue
        # Swap the two incoming edge positions and the key tuples.
        indices = [
            index
            for index, edge in enumerate(flow._edges)
            if edge.target == name
        ]
        first, second = indices
        flow._edges[first], flow._edges[second] = (
            Edge(flow._edges[second].source, name),
            Edge(flow._edges[first].source, name),
        )
        flow.replace_node(
            name,
            Join(
                name,
                left_keys=tuple(operation.right_keys),
                right_keys=tuple(operation.left_keys),
                join_type=JoinType.INNER,
            ),
        )
        flipped += 1
        decisions.append(
            f"build-side: {name} flipped "
            f"(left ~{left_rows:,.0f} rows, right ~{right_rows:,.0f} rows)"
        )
    return flipped


def _fusion_vetoes(
    flow: EtlFlow,
    estimates: Dict[str, NodeEstimate],
    decisions: List[str],
) -> frozenset:
    from repro.engine.executor import fusion_plan

    order = flow.topological_order()
    inputs_of = {name: flow.inputs(name) for name in order}
    chains, __ = fusion_plan(flow, order, inputs_of)
    vetoed = set()
    for head in chains:
        sources = inputs_of[head]
        if not sources:
            continue
        input_rows = estimates[sources[0]].rows
        if input_rows < FUSION_MINIMUM_ROWS:
            vetoed.add(head)
            decisions.append(
                f"no-fuse: chain at {head} "
                f"(~{input_rows:,.0f} input rows)"
            )
    return frozenset(vetoed)


def _source_schema_shim(
    flow: EtlFlow, catalog: StatisticsCatalog
) -> SourceSchema:
    """A SourceSchema covering the flow's datastore tables, built from
    catalog statistics (which carry each column's declared type)."""
    shim = SourceSchema("planner")
    for operation in flow.nodes():
        if not isinstance(operation, Datastore):
            continue
        if shim.has_table(operation.table):
            continue
        try:
            stats = catalog.table_stats(operation.table)
        except Exception:
            continue
        shim.add_table(
            make_table(
                operation.table,
                [
                    (name, column.scalar_type)
                    for name, column in stats.columns.items()
                ],
            )
        )
    return shim


def _materialize_datastores(flow: EtlFlow, catalog: StatisticsCatalog) -> int:
    """Pin each bare Datastore's column list from the catalog.

    Schema-free scans propagate as "attributes unknown", which makes
    every structural rewrite (pushdown legality, column pruning, join
    reorder) bail out.  Reading the column list from the statistics
    catalog — the same snapshot the estimates come from — turns them
    into fully-known scans.  Projecting a scan to its own full column
    list is the identity, so this is value-preserving on its own and it
    lets ``prune_columns`` later narrow the scan to what the flow needs.
    """
    pinned = 0
    for operation in list(flow.nodes()):
        if not isinstance(operation, Datastore) or operation.columns:
            continue
        try:
            stats = catalog.table_stats(operation.table)
        except Exception:
            continue
        flow.replace_node(
            operation.name,
            Datastore(
                operation.name,
                table=operation.table,
                columns=tuple(stats.columns),
            ),
        )
        pinned += 1
    return pinned


def plan_flow(flow: EtlFlow, catalog: StatisticsCatalog) -> Plan:
    """Produce an annotated plan; identical to ``flow`` when no rewrite
    is possible or the flow does not validate (fail-safe)."""
    shim = _source_schema_shim(flow, catalog)
    try:
        propagate(flow, shim)
    except Exception as exc:
        return _identity_plan(flow, catalog, f"propagation: {exc}")
    decisions: List[str] = []
    try:
        working = flow.copy()
        _materialize_datastores(working, catalog)
        moved = _push_selections(working)
        if moved:
            decisions.append(f"selection-pushdown: {moved} move(s)")
        pruned = prune_columns(working)
        if len(pruned) != len(working) or pruned.edges() != working.edges():
            decisions.append("projection-pushdown: branches narrowed")
        working = pruned
        _reorder_join_chains(working, catalog, decisions)
        _choose_build_sides(working, catalog, decisions)
        propagate(working, shim)  # the rewritten flow must still validate
        estimates = estimate_flow(working, catalog)
        no_fuse = _fusion_vetoes(working, estimates, decisions)
    except Exception as exc:  # fail safe: never plan a broken flow
        return _identity_plan(flow, catalog, f"rewrite: {exc}")
    return Plan(
        flow=working,
        estimates={name: est.rows for name, est in estimates.items()},
        decisions=decisions,
        no_fuse=no_fuse,
    )


def _identity_plan(
    flow: EtlFlow, catalog: StatisticsCatalog, reason: str
) -> Plan:
    try:
        estimates = {
            name: est.rows for name, est in estimate_flow(flow, catalog).items()
        }
    except Exception:
        estimates = {}
    return Plan(flow=flow, estimates=estimates, fallback=reason)
