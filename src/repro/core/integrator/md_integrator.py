"""The MD Schema Integrator.

"This module semi-automatically integrates partial MD schemas.  MD
Schema Integrator comprises four stages, namely matching facts, matching
dimensions, complementing the MD schema design, and integration.  [...]
MD Schema Integrator automatically guarantees MD-compliant results and
produces the optimal solution by applying cost models that capture
different quality factors (e.g., structural design complexity)." (§2.3)

Stage semantics here:

1. **matching facts** — a partial fact matches a unified fact when both
   originate from the same ontology concept *and* reference the same
   set of dimension base concepts (equal granularity); only then can
   their measures live in one fact table,
2. **matching dimensions** — ontology-provenance-driven conformance
   (see :mod:`repro.mdmodel.conformance`),
3. **complementing** — a matched dimension absorbs the partner's extra
   levels, attributes and hierarchies (the union merge),
4. **integration** — for every match the integrator compares the
   structural complexity of *merging* against *keeping separate* and
   applies the cheaper sound alternative; unmatched elements are added
   (renamed on collision).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import IntegrationError
from repro.mdmodel import complexity, conformance, constraints
from repro.mdmodel.complexity import ComplexityWeights, DEFAULT_WEIGHTS
from repro.mdmodel.model import Dimension, Fact, MDSchema


@dataclass(frozen=True)
class IntegrationDecision:
    """One integration step, for the report shown to the user."""

    kind: str  # fact | dimension
    partial_element: str
    action: str  # merged | added | renamed
    unified_element: str
    detail: str = ""


@dataclass
class MDIntegration:
    """Result of integrating one partial schema."""

    schema: MDSchema
    decisions: List[IntegrationDecision] = field(default_factory=list)
    complexity_before: float = 0.0
    complexity_after: float = 0.0
    complexity_naive: float = 0.0

    @property
    def saving(self) -> float:
        """Complexity saved versus naive duplication."""
        return self.complexity_naive - self.complexity_after


class MDIntegrator:
    """Integrates partial MD schemas into a unified schema."""

    def __init__(self, weights: ComplexityWeights = DEFAULT_WEIGHTS) -> None:
        self._weights = weights

    def integrate(self, unified: MDSchema, partial: MDSchema) -> MDIntegration:
        """Produce a new unified schema absorbing the partial one.

        The input schemas are not mutated.  The result is validated
        against the MD integrity constraints before being returned.
        """
        before = complexity.score(unified, self._weights)
        result_schema = unified.copy()
        decisions: List[IntegrationDecision] = []

        # Stage 2 first: dimension matches inform fact granularity
        # comparison in stage 1.
        dimension_mapping = self._integrate_dimensions(
            result_schema, partial, decisions
        )
        self._integrate_facts(result_schema, partial, dimension_mapping, decisions)

        constraints.check(result_schema)
        after = complexity.score(result_schema, self._weights)
        naive = before + complexity.score(partial, self._weights)
        return MDIntegration(
            schema=result_schema,
            decisions=decisions,
            complexity_before=before,
            complexity_after=after,
            complexity_naive=naive,
        )

    # -- dimensions ----------------------------------------------------------

    def _integrate_dimensions(
        self,
        unified: MDSchema,
        partial: MDSchema,
        decisions: List[IntegrationDecision],
    ) -> Dict[str, str]:
        """Returns partial dimension name -> unified dimension name."""
        mapping: Dict[str, str] = {}
        for dimension in partial.dimensions.values():
            match = self._find_dimension_match(unified, dimension)
            if match is not None and self._merge_is_cheaper(
                unified, match, dimension
            ):
                merged = conformance.merge_dimensions(
                    unified.dimension(match), dimension
                )
                unified.dimensions[match] = merged
                mapping[dimension.name] = match
                decisions.append(
                    IntegrationDecision(
                        kind="dimension",
                        partial_element=dimension.name,
                        action="merged",
                        unified_element=match,
                        detail=(
                            f"conformed; levels now "
                            f"{sorted(merged.levels)}"
                        ),
                    )
                )
                continue
            new_name = _fresh_name(dimension.name, unified.dimensions)
            clone = _copy_dimension(dimension, new_name)
            unified.add_dimension(clone)
            mapping[dimension.name] = new_name
            decisions.append(
                IntegrationDecision(
                    kind="dimension",
                    partial_element=dimension.name,
                    action="added" if new_name == dimension.name else "renamed",
                    unified_element=new_name,
                )
            )
        return mapping

    def _find_dimension_match(
        self, unified: MDSchema, dimension: Dimension
    ) -> Optional[str]:
        """A unified dimension the partial one can conform with.

        Beyond level conformance, the *base* concepts must coincide: a
        Nation-rooted dimension shares its Nation/Region levels with a
        Supplier-rooted one, but merging them would re-root one fact's
        granularity inside another dimension's hierarchy (and lose the
        nations that have no supplier in the dimension table).
        """
        wanted_bases = _base_concepts(dimension)
        for candidate in unified.dimensions.values():
            if _base_concepts(candidate) != wanted_bases:
                continue
            if conformance.dimensions_conformable(candidate, dimension):
                return candidate.name
        return None

    def _merge_is_cheaper(
        self, unified: MDSchema, match: str, dimension: Dimension
    ) -> bool:
        """Stage-4 cost check: merged versus kept-separate complexity.

        With the default weights merging always wins (shared structure
        is counted once); custom weight profiles can flip the decision,
        which the A2 ablation exploits.

        Both alternatives differ from the current unified schema only in
        one dimension's contribution, so instead of scoring two full
        trial copies the check adjusts the element counts and evaluates
        the same weighted sum — all counts are integers, so the scores
        are identical to the trial-copy ones, decision included.
        """
        base = complexity.analyze(unified, self._weights)
        old = complexity.dimension_counts(unified.dimension(match))
        merged = complexity.dimension_counts(
            conformance.merge_dimensions(unified.dimension(match), dimension)
        )
        incoming = complexity.dimension_counts(dimension)
        shared = {
            "facts": base.facts,
            "measures": base.measures,
            "links": base.links,
        }
        merged_score = complexity.score_counts(
            self._weights,
            dimensions=base.dimensions - old["dimensions"] + merged["dimensions"],
            levels=base.levels - old["levels"] + merged["levels"],
            attributes=base.attributes - old["attributes"] + merged["attributes"],
            hierarchies=(
                base.hierarchies - old["hierarchies"] + merged["hierarchies"]
            ),
            **shared,
        )
        separate_score = complexity.score_counts(
            self._weights,
            dimensions=base.dimensions + incoming["dimensions"],
            levels=base.levels + incoming["levels"],
            attributes=base.attributes + incoming["attributes"],
            hierarchies=base.hierarchies + incoming["hierarchies"],
            **shared,
        )
        return merged_score <= separate_score

    # -- facts ------------------------------------------------------------------

    def _integrate_facts(
        self,
        unified: MDSchema,
        partial: MDSchema,
        dimension_mapping: Dict[str, str],
        decisions: List[IntegrationDecision],
    ) -> None:
        for fact in partial.facts.values():
            remapped = _remap_fact(fact, dimension_mapping)
            self._fix_link_levels(unified, partial, fact, remapped)
            match = self._find_fact_match(unified, remapped)
            if match is not None:
                self._merge_fact(unified.fact(match), remapped)
                decisions.append(
                    IntegrationDecision(
                        kind="fact",
                        partial_element=fact.name,
                        action="merged",
                        unified_element=match,
                        detail="same concept and granularity; measures unioned",
                    )
                )
                continue
            new_name = _fresh_name(remapped.name, unified.facts)
            remapped = replace_fact_name(remapped, new_name)
            unified.add_fact(remapped)
            decisions.append(
                IntegrationDecision(
                    kind="fact",
                    partial_element=fact.name,
                    action="added" if new_name == fact.name else "renamed",
                    unified_element=new_name,
                )
            )

    def _fix_link_levels(
        self,
        unified: MDSchema,
        partial: MDSchema,
        original: Fact,
        remapped: Fact,
    ) -> None:
        """Re-point link levels renamed by a dimension merge.

        When a partial level merged into a differently-named unified
        level (matched by ontology concept), the fact link must follow.
        """
        from repro.mdmodel.model import FactDimensionLink

        for index, link in enumerate(list(remapped.links)):
            dimension = unified.dimension(link.dimension)
            if dimension.has_level(link.level):
                continue
            original_link = original.links[index]
            partial_level = partial.dimension(original_link.dimension).level(
                original_link.level
            )
            counterpart = conformance.find_matching_level(
                partial_level, dimension
            )
            if counterpart is None:
                raise IntegrationError(
                    f"fact {remapped.name!r}: level {link.level!r} has no "
                    f"counterpart in merged dimension {link.dimension!r}"
                )
            remapped.links[index] = FactDimensionLink(
                link.dimension, counterpart.name
            )

    def _find_fact_match(self, unified: MDSchema, fact: Fact) -> Optional[str]:
        """Same concept + same granularity (linked dimension/level sets)."""
        wanted = {(link.dimension, link.level) for link in fact.links}
        for candidate in unified.facts.values():
            if candidate.concept is None or candidate.concept != fact.concept:
                continue
            have = {(link.dimension, link.level) for link in candidate.links}
            same_grain = sorted(candidate.grain) == sorted(fact.grain)
            same_content = sorted(candidate.slicers) == sorted(fact.slicers)
            if have == wanted and same_grain and same_content:
                return candidate.name
        return None

    def _merge_fact(self, target: Fact, incoming: Fact) -> None:
        target.requirements |= incoming.requirements
        for measure in incoming.measures.values():
            if measure.name in target.measures:
                existing = target.measures[measure.name]
                if existing.expression == measure.expression:
                    existing.requirements |= measure.requirements
                    continue
                raise IntegrationError(
                    f"measure name clash on {measure.name!r} with different "
                    f"expressions in fact {target.name!r}"
                )
            target.add_measure(
                replace(measure, requirements=set(measure.requirements))
            )


# -- helpers -----------------------------------------------------------------


def _base_concepts(dimension: Dimension) -> frozenset:
    """Ontology concepts of a dimension's base (finest) levels."""
    return frozenset(
        dimension.level(base).concept for base in dimension.base_levels()
    )


def _fresh_name(name: str, existing: dict) -> str:
    if name not in existing:
        return name
    suffix = 2
    while f"{name}_{suffix}" in existing:
        suffix += 1
    return f"{name}_{suffix}"


def _copy_dimension(dimension: Dimension, name: str) -> Dimension:
    from repro.mdmodel.model import Hierarchy, Level

    clone = Dimension(name=name, requirements=set(dimension.requirements))
    for level in dimension.levels.values():
        clone.add_level(
            Level(
                name=level.name,
                attributes=list(level.attributes),
                key=level.key,
                concept=level.concept,
                scd_policy=level.scd_policy,
            )
        )
    for hierarchy in dimension.hierarchies:
        clone.add_hierarchy(Hierarchy(hierarchy.name, list(hierarchy.levels)))
    return clone


def _remap_fact(fact: Fact, dimension_mapping: Dict[str, str]) -> Fact:
    remapped = Fact(
        name=fact.name,
        measures={
            name: replace(measure, requirements=set(measure.requirements))
            for name, measure in fact.measures.items()
        },
        links=[],
        concept=fact.concept,
        requirements=set(fact.requirements),
        grain=list(fact.grain),
        slicers=list(fact.slicers),
    )
    for link in fact.links:
        remapped.link_dimension(
            dimension_mapping.get(link.dimension, link.dimension), link.level
        )
    return remapped


def replace_fact_name(fact: Fact, name: str) -> Fact:
    """A copy of a fact under another name."""
    return Fact(
        name=name,
        measures=fact.measures,
        links=fact.links,
        concept=fact.concept,
        requirements=fact.requirements,
        grain=fact.grain,
        slicers=fact.slicers,
    )
