"""Unit tests for the document store and its query language."""

import pytest

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    RepositoryError,
)
from repro.repository import Collection, DocumentStore
from repro.repository.documents import matches


@pytest.fixture
def designs():
    collection = Collection("designs")
    collection.insert(
        {"_id": "d1", "kind": "md", "cost": 10, "meta": {"author": "ann"}}
    )
    collection.insert(
        {"_id": "d2", "kind": "etl", "cost": 25, "meta": {"author": "bob"}}
    )
    collection.insert({"_id": "d3", "kind": "md", "cost": 40})
    return collection


class TestCrud:
    def test_insert_and_get_returns_copy(self, designs):
        document = designs.get("d1")
        document["kind"] = "mutated"
        assert designs.get("d1")["kind"] == "md"

    def test_insert_requires_id(self, designs):
        with pytest.raises(RepositoryError):
            designs.insert({"kind": "x"})

    def test_duplicate_insert_rejected(self, designs):
        with pytest.raises(DuplicateDocumentError):
            designs.insert({"_id": "d1"})

    def test_replace_upserts(self, designs):
        designs.replace({"_id": "d1", "kind": "replaced"})
        assert designs.get("d1") == {"_id": "d1", "kind": "replaced"}
        designs.replace({"_id": "d9", "kind": "new"})
        assert designs.has("d9")

    def test_update_merges(self, designs):
        designs.update("d1", {"cost": 11, "_id": "ignored"})
        assert designs.get("d1")["cost"] == 11
        assert designs.get("d1")["_id"] == "d1"

    def test_update_missing_raises(self, designs):
        with pytest.raises(DocumentNotFoundError):
            designs.update("ghost", {})

    def test_delete(self, designs):
        designs.delete("d1")
        assert not designs.has("d1")
        with pytest.raises(DocumentNotFoundError):
            designs.delete("d1")

    def test_delete_many(self, designs):
        assert designs.delete_many({"kind": "md"}) == 2
        assert designs.ids() == ["d2"]

    def test_len_and_count(self, designs):
        assert len(designs) == 3
        assert designs.count() == 3
        assert designs.count({"kind": "md"}) == 2


class TestQueries:
    def test_equality(self, designs):
        assert {d["_id"] for d in designs.find({"kind": "md"})} == {"d1", "d3"}

    def test_dotted_path(self, designs):
        assert designs.find_one({"meta.author": "ann"})["_id"] == "d1"

    def test_comparison_operators(self, designs):
        assert {d["_id"] for d in designs.find({"cost": {"$gt": 20}})} == {
            "d2",
            "d3",
        }
        assert designs.find_one({"cost": {"$lte": 10}})["_id"] == "d1"
        assert designs.count({"cost": {"$ne": 10}}) == 2

    def test_in_nin(self, designs):
        assert designs.count({"kind": {"$in": ["md", "etl"]}}) == 3
        assert designs.count({"kind": {"$nin": ["md"]}}) == 1

    def test_exists(self, designs):
        assert designs.count({"meta": {"$exists": True}}) == 2
        assert designs.count({"meta": {"$exists": False}}) == 1

    def test_regex(self, designs):
        assert designs.count({"kind": {"$regex": "^m"}}) == 2

    def test_and_or_not(self, designs):
        query = {"$or": [{"kind": "etl"}, {"cost": {"$gte": 40}}]}
        assert {d["_id"] for d in designs.find(query)} == {"d2", "d3"}
        query = {"$and": [{"kind": "md"}, {"cost": {"$lt": 20}}]}
        assert designs.find_one(query)["_id"] == "d1"
        assert designs.count({"$not": {"kind": "md"}}) == 1

    def test_missing_path_fails_equality(self, designs):
        assert designs.count({"meta.author": "zed"}) == 1 - 1

    def test_unknown_operator_raises(self, designs):
        with pytest.raises(RepositoryError):
            designs.find({"cost": {"$frob": 1}})

    def test_sort_and_limit(self, designs):
        costly_first = designs.find(sort_key="cost")
        assert [d["_id"] for d in costly_first] == ["d1", "d2", "d3"]
        assert len(designs.find(limit=2)) == 2

    def test_sort_keeps_falsy_values(self):
        """Regression: ``0``/``""``/``False`` sort keys used to collapse
        to ``""`` via ``value or ""``, scrambling numeric order."""
        collection = Collection("falsy")
        collection.insert({"_id": "zero", "rank": 0})
        collection.insert({"_id": "two", "rank": 2})
        collection.insert({"_id": "neg", "rank": -1})
        found = collection.find(sort_key="rank")
        assert [doc["_id"] for doc in found] == ["neg", "zero", "two"]

    def test_sort_mixed_types_never_raises(self):
        """Regression: mixed int/str sort keys raised ``TypeError``."""
        collection = Collection("mixed")
        collection.insert({"_id": "a", "k": 3})
        collection.insert({"_id": "b", "k": "x"})
        collection.insert({"_id": "c"})  # key missing
        collection.insert({"_id": "d", "k": None})
        collection.insert({"_id": "e", "k": 1})
        found = collection.find(sort_key="k")
        # Missing first, then NULL, then values bucketed by type
        # (numbers before strings), values themselves uncoerced.
        assert [doc["_id"] for doc in found] == ["c", "d", "e", "a", "b"]

    def test_find_one_none_when_empty(self, designs):
        assert designs.find_one({"kind": "nope"}) is None

    def test_type_mismatch_comparison_is_false(self):
        assert not matches({"x": "str"}, {"x": {"$gt": 4}})


class TestStore:
    def test_collections_created_on_demand(self):
        store = DocumentStore()
        assert "c" not in store
        store.collection("c").insert({"_id": "1"})
        assert "c" in store
        assert store.collection_names() == ["c"]

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("c")
        store.drop_collection("c")
        assert "c" not in store
        store.drop_collection("never-existed")  # no error


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, designs):
        from repro.repository import store as file_store

        store = DocumentStore("db")
        store._collections["designs"] = designs
        path = tmp_path / "store.json"
        file_store.save(store, path)
        loaded = file_store.load(path)
        assert loaded.name == "db"
        assert loaded.collection("designs").count() == 3
        assert loaded.collection("designs").get("d1")["meta"] == {
            "author": "ann"
        }

    def test_load_missing_file_raises(self, tmp_path):
        from repro.repository import store as file_store

        with pytest.raises(RepositoryError):
            file_store.load(tmp_path / "missing.json")

    def test_load_malformed_raises(self, tmp_path):
        from repro.repository import store as file_store

        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(RepositoryError):
            file_store.load(path)


class TestIdFastPath:
    """Queries pinning ``_id`` are answered by hash lookup, with the
    full query still verified — never by a collection scan."""

    def test_find_one_by_id(self, designs):
        assert designs.find_one({"_id": "d2"})["kind"] == "etl"
        assert designs.find_one({"_id": "ghost"}) is None

    def test_find_one_by_id_eq_operator(self, designs):
        assert designs.find_one({"_id": {"$eq": "d3"}})["cost"] == 40

    def test_find_by_id_in_operator(self, designs):
        found = designs.find({"_id": {"$in": ["d3", "d1", "d3", "ghost"]}})
        # Collection (insertion) order, exactly like a full scan — not
        # the order the ids appear in the $in list.
        assert [doc["_id"] for doc in found] == ["d1", "d3"]

    def test_other_conditions_still_verified(self, designs):
        # The id matches but the rest of the query must too.
        assert designs.find_one({"_id": "d1", "kind": "etl"}) is None
        assert designs.find_one({"_id": "d1", "kind": "md"})["_id"] == "d1"

    def test_count_by_id(self, designs):
        assert designs.count({"_id": "d1"}) == 1
        assert designs.count({"_id": {"$in": ["d1", "d2", "ghost"]}}) == 2

    def test_non_equality_id_operators_fall_back_to_scan(self, designs):
        found = designs.find({"_id": {"$ne": "d1"}})
        assert {doc["_id"] for doc in found} == {"d2", "d3"}
        assert designs.count({"_id": {"$regex": "^d"}}) == 3

    def test_unhashable_id_query_falls_back_to_scan(self, designs):
        assert designs.find({"_id": ["d1"]}) == []
        assert designs.find({"_id": {"$in": [["d1"], "d2"]}}) != []

    def test_results_are_copies(self, designs):
        found = designs.find_one({"_id": "d1"})
        found["kind"] = "mutated"
        assert designs.get("d1")["kind"] == "md"

    def test_id_narrowing_matches_scan_order(self):
        """Regression: every ``_id`` fast path ($eq, $in, plain
        equality) must yield the same order as the scan it replaces."""
        collection = Collection("order")
        for doc_id in ("a", "b", "c"):
            collection.insert({"_id": doc_id})
        scan = [doc["_id"] for doc in collection.find()]
        assert scan == ["a", "b", "c"]
        assert [
            doc["_id"]
            for doc in collection.find({"_id": {"$in": ["c", "a"]}})
        ] == ["a", "c"]
        assert [
            doc["_id"] for doc in collection.find({"_id": {"$eq": "b"}})
        ] == ["b"]
        assert [doc["_id"] for doc in collection.find({"_id": "c"})] == ["c"]

    def test_id_in_order_survives_delete_and_replace(self):
        collection = Collection("order")
        for doc_id in ("a", "b", "c"):
            collection.insert({"_id": doc_id})
        collection.delete("b")
        collection.replace({"_id": "a", "v": 2})  # keeps its position
        collection.insert({"_id": "b"})  # re-inserted: now last
        assert [
            doc["_id"]
            for doc in collection.find({"_id": {"$in": ["b", "c", "a"]}})
        ] == ["a", "c", "b"]

    def test_fast_path_avoids_scanning_other_documents(self, designs, monkeypatch):
        import repro.repository.documents as documents_module

        seen = []
        real_matches = documents_module.matches

        def spying_matches(document, query):
            seen.append(document["_id"])
            return real_matches(document, query)

        monkeypatch.setattr(documents_module, "matches", spying_matches)
        designs.find_one({"_id": "d2"})
        assert seen == ["d2"]
