"""Tests of deriving CostParameters from measured executor timings."""

import math

from repro.engine import Database, Executor, TableDef
from repro.engine.executor import NodeStats
from repro.etlmodel import Datastore, EtlFlow, Loader, Selection
from repro.etlmodel.cost import (
    DEFAULT_PARAMETERS,
    calibrated_parameters,
)
from repro.expressions import ScalarType


class FakeRun:
    def __init__(self, nodes):
        self.nodes = nodes


def node(kind, rows, seconds, name="n"):
    return NodeStats(
        name=name,
        kind=kind,
        input_rows=rows,
        output_rows=rows,
        seconds=seconds,
    )


def test_calibration_preserves_ratios_and_anchor():
    """Join measured at twice the scan's per-row time must cost twice
    the scan's unit cost, with Datastore anchored at its nominal 1.0."""
    runs = [
        FakeRun(
            [
                node("Datastore", rows=1000, seconds=0.001),
                node("Join", rows=1000, seconds=0.002),
            ]
        )
    ]
    calibrated = calibrated_parameters(runs)
    datastore_unit = DEFAULT_PARAMETERS.unit_costs["Datastore"]
    assert calibrated.unit_costs["Datastore"] == datastore_unit
    assert abs(calibrated.unit_costs["Join"] - 2.0 * datastore_unit) < 1e-9


def test_calibration_takes_median_over_noisy_samples():
    runs = [
        FakeRun(
            [
                node("Datastore", rows=1000, seconds=0.001),
                node("Selection", rows=1000, seconds=seconds),
            ]
        )
        for seconds in (0.001, 0.003, 0.100)  # one outlier
    ]
    calibrated = calibrated_parameters(runs)
    datastore_unit = DEFAULT_PARAMETERS.unit_costs["Datastore"]
    assert (
        abs(calibrated.unit_costs["Selection"] - 3.0 * datastore_unit) < 1e-9
    )


def test_calibration_normalizes_sort_by_log_factor():
    rows = 4096
    runs = [
        FakeRun(
            [
                node("Datastore", rows=rows, seconds=0.001),
                # Sort took log2(4096) = 12x the scan per row: after the
                # model's superlinear charge is divided out, its unit
                # cost equals the scan's.
                node("Sort", rows=rows, seconds=0.001 * math.log2(rows)),
            ]
        )
    ]
    calibrated = calibrated_parameters(runs)
    assert (
        abs(
            calibrated.unit_costs["Sort"]
            - DEFAULT_PARAMETERS.unit_costs["Datastore"]
        )
        < 1e-9
    )


def test_calibration_keeps_unobserved_kinds_and_knobs():
    runs = [FakeRun([node("Datastore", rows=100, seconds=0.001)])]
    calibrated = calibrated_parameters(runs)
    assert (
        calibrated.unit_costs["Aggregation"]
        == DEFAULT_PARAMETERS.unit_costs["Aggregation"]
    )
    assert (
        calibrated.equality_selectivity
        == DEFAULT_PARAMETERS.equality_selectivity
    )


def test_calibration_without_samples_returns_base():
    assert calibrated_parameters([]) is DEFAULT_PARAMETERS
    # Zero-row / zero-time nodes are not samples either.
    runs = [FakeRun([node("Datastore", rows=0, seconds=0.0)])]
    assert calibrated_parameters(runs) is DEFAULT_PARAMETERS


def test_calibration_from_real_execution_stats():
    """End to end: feed actual ExecutionStats into the calibrator."""
    database = Database()
    database.create_table(
        TableDef("t", {"k": ScalarType.INTEGER, "v": ScalarType.DECIMAL})
    )
    database.insert_many(
        "t", [{"k": index, "v": float(index)} for index in range(500)]
    )
    flow = EtlFlow("run")
    flow.chain(
        Datastore("src", table="t"),
        Selection("sel", predicate="k >= 0"),
        Loader("out", table="out_rows", mode="replace"),
    )
    executor = Executor(database, mode="columnar")
    runs = [executor.execute(flow, keep_intermediate=True) for __ in range(3)]
    calibrated = calibrated_parameters(runs)
    for kind in ("Datastore", "Selection", "Loader"):
        assert calibrated.unit_costs[kind] > 0.0
