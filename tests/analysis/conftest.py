"""Shared fixtures for the linter tests."""

import pytest

from repro.etlmodel import (
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Join,
    Loader,
    Projection,
    Selection,
)


def build_acceptance_flow():
    """The issue's acceptance scenario, seeded with exactly three bugs:

    * a dead derived column (``z`` is projected away before the loader),
    * an unhashable join-key value (``src_b``'s first ``id``),
    * an always-false Selection (``x < 0 and x > 0``).
    """
    flow = EtlFlow("acceptance")
    flow.add(Datastore("src_a", table="a", columns=("id", "x")))
    flow.add(Datastore("src_b", table="b", columns=("id", "y")))
    flow.add(Selection("impossible", predicate="x < 0 and x > 0"))
    flow.add(Join("match", left_keys=("id",), right_keys=("id",)))
    flow.add(DerivedAttribute("widen", output="z", expression="x + 1"))
    flow.add(Projection("shape", columns=("id", "x", "y")))
    flow.add(Loader("load", table="out"))
    flow.connect("src_a", "impossible")
    flow.connect("impossible", "match")
    flow.connect("src_b", "match")
    flow.connect("match", "widen")
    flow.connect("widen", "shape")
    flow.connect("shape", "load")
    tables = {
        "a": [{"id": 1, "x": 2}],
        "b": [{"id": [3, 4], "y": 2}, {"id": 3, "y": 5}],
    }
    return flow, tables


@pytest.fixture()
def acceptance():
    return build_acceptance_flow()
