"""Unit tests for the relational source schema model."""

import pytest

from repro.errors import SourceError, UnknownColumnError, UnknownTableError
from repro.expressions import ScalarType
from repro.sources import Column, ForeignKey, SourceSchema, Table
from repro.sources.schema import make_table

INT = ScalarType.INTEGER
STR = ScalarType.STRING


@pytest.fixture
def library():
    schema = SourceSchema(name="library")
    schema.add_table(make_table(
        "author",
        [("author_id", INT), ("author_name", STR)],
        primary_key=["author_id"],
    ))
    schema.add_table(make_table(
        "book",
        [("book_id", INT), ("title", STR), ("author_id", INT)],
        primary_key=["book_id"],
        foreign_keys=[ForeignKey(("author_id",), "author", ("author_id",))],
        nullable=["title"],
    ))
    return schema


class TestTable:
    def test_column_lookup(self, library):
        column = library.table("book").column("title")
        assert column.type is ScalarType.STRING
        assert column.nullable is True

    def test_unknown_column_raises(self, library):
        with pytest.raises(UnknownColumnError):
            library.table("book").column("nope")

    def test_column_names_preserve_order(self, library):
        assert library.table("book").column_names() == [
            "book_id",
            "title",
            "author_id",
        ]

    def test_column_types(self, library):
        types = library.table("author").column_types()
        assert types == {"author_id": INT, "author_name": STR}

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SourceError):
            Table(name="t", columns=[Column("a", INT), Column("a", STR)])

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownColumnError):
            make_table("t", [("a", INT)], primary_key=["missing"])

    def test_fk_columns_must_exist(self):
        with pytest.raises(UnknownColumnError):
            make_table(
                "t",
                [("a", INT)],
                foreign_keys=[ForeignKey(("missing",), "x", ("y",))],
            )

    def test_fk_arity_mismatch_rejected(self):
        with pytest.raises(SourceError):
            ForeignKey(("a", "b"), "t", ("c",))

    def test_foreign_key_to(self, library):
        fk = library.table("book").foreign_key_to("author")
        assert fk is not None
        assert fk.columns == ("author_id",)
        assert library.table("book").foreign_key_to("nope") is None


class TestSchema:
    def test_table_lookup(self, library):
        assert library.table("author").name == "author"

    def test_unknown_table_raises(self, library):
        with pytest.raises(UnknownTableError):
            library.table("nope")

    def test_duplicate_table_rejected(self, library):
        with pytest.raises(SourceError):
            library.add_table(make_table("book", [("x", INT)]))

    def test_table_names(self, library):
        assert library.table_names() == ["author", "book"]

    def test_validate_accepts_good_schema(self, library):
        library.validate()

    def test_validate_rejects_unknown_fk_target(self):
        schema = SourceSchema(name="bad")
        schema.add_table(make_table(
            "child",
            [("parent_id", INT)],
            foreign_keys=[ForeignKey(("parent_id",), "parent", ("id",))],
        ))
        with pytest.raises(SourceError):
            schema.validate()

    def test_validate_rejects_fk_not_on_primary_key(self):
        schema = SourceSchema(name="bad")
        schema.add_table(make_table(
            "parent", [("id", INT), ("other", INT)], primary_key=["id"]
        ))
        schema.add_table(make_table(
            "child",
            [("ref", INT)],
            foreign_keys=[ForeignKey(("ref",), "parent", ("other",))],
        ))
        with pytest.raises(SourceError):
            schema.validate()

    def test_validate_rejects_fk_to_unknown_column(self):
        schema = SourceSchema(name="bad")
        schema.add_table(make_table("parent", [("id", INT)], primary_key=["id"]))
        schema.add_table(make_table(
            "child",
            [("ref", INT)],
            foreign_keys=[ForeignKey(("ref",), "parent", ("missing",))],
        ))
        with pytest.raises(UnknownColumnError):
            schema.validate()
