"""Property-based tests: format round-trips and model algebra.

* random ontologies survive the text serialisation,
* random requirements (over the TPC-H vocabulary) survive xRQ,
* dimension merge is idempotent and absorbs subsets,
* the ETL cost model behaves monotonically.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.expressions import ScalarType

# ---------------------------------------------------------------------------
# Ontology text round-trip
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
labels = st.one_of(st.none(), st.text(alphabet="abc XY\"\\'", min_size=1, max_size=10))
scalar_types = st.sampled_from(list(ScalarType))
multiplicities = st.sampled_from(["1-1", "N-1", "1-N", "N-N"])


@st.composite
def ontologies(draw):
    from repro.ontology import OntologyBuilder

    builder = OntologyBuilder(
        draw(identifiers), description=draw(labels) or ""
    )
    concept_count = draw(st.integers(min_value=1, max_value=6))
    names = []
    used = set()
    for index in range(concept_count):
        name = f"C{index}_{draw(identifiers)}"
        if name in used:
            continue
        used.add(name)
        parent = draw(st.sampled_from(names)) if names and draw(st.booleans()) else None
        builder.concept(name, label=draw(labels), parent=parent)
        names.append(name)
    attribute_count = draw(st.integers(min_value=0, max_value=6))
    for index in range(attribute_count):
        owner = draw(st.sampled_from(names))
        builder.attribute(
            f"A{index}_{draw(identifiers)}",
            owner,
            draw(scalar_types),
            label=draw(labels),
        )
    relationship_count = draw(st.integers(min_value=0, max_value=6))
    for index in range(relationship_count):
        builder.relationship(
            f"R{index}_{draw(identifiers)}",
            draw(st.sampled_from(names)),
            draw(st.sampled_from(names)),
            draw(multiplicities),
            label=draw(labels),
        )
    return builder.build()


class TestOntologyTextRoundTrip:
    @given(ontologies())
    @settings(max_examples=80, deadline=None)
    def test_dumps_loads_identity(self, ontology):
        from repro.ontology import io as ontology_io

        text = ontology_io.dumps(ontology)
        parsed = ontology_io.loads(text)
        assert parsed.size() == ontology.size()
        for concept in ontology.concepts():
            assert parsed.concept(concept.id) == concept
        for prop in ontology.datatype_properties():
            assert parsed.datatype_property(prop.id) == prop
        for prop in ontology.object_properties():
            assert parsed.object_property(prop.id) == prop
        assert ontology_io.dumps(parsed) == text


# ---------------------------------------------------------------------------
# xRQ round-trip over random requirements on the TPC-H vocabulary
# ---------------------------------------------------------------------------

TPCH_NUMERIC = [
    "Lineitem_l_quantity", "Lineitem_l_extendedprice", "Lineitem_l_tax",
    "Partsupp_ps_supplycost", "Part_p_size",
]
TPCH_DESCRIPTIVE = [
    "Part_p_name", "Part_p_brand", "Supplier_s_name", "Nation_n_name",
    "Lineitem_l_shipmode", "Customer_c_mktsegment",
]
AGGREGATIONS = ["SUM", "AVERAGE", "MIN", "MAX", "COUNT"]


@st.composite
def requirements(draw):
    from repro import RequirementBuilder

    # XML 1.0 cannot carry control characters; descriptions are UI text.
    builder = RequirementBuilder(
        f"IR_{draw(st.integers(0, 999))}",
        draw(st.text(alphabet="abcXYZ <>&\"' 09", max_size=15)),
    )
    measure_count = draw(st.integers(min_value=1, max_value=3))
    used = set()
    for index in range(measure_count):
        name = f"m{index}"
        expression = draw(st.sampled_from(TPCH_NUMERIC))
        if draw(st.booleans()):
            expression = (
                f"{expression} * (1 - {draw(st.sampled_from(TPCH_NUMERIC))})"
            )
        builder.measure(name, expression, draw(st.sampled_from(AGGREGATIONS)))
    for prop in draw(
        st.lists(st.sampled_from(TPCH_DESCRIPTIVE), min_size=1, max_size=3,
                 unique=True)
    ):
        builder.per(prop)
    for __ in range(draw(st.integers(0, 2))):
        column = draw(st.sampled_from(TPCH_DESCRIPTIVE))
        value = draw(st.text(alphabet="ABCXYZ' ", min_size=1, max_size=6))
        escaped = value.replace("'", "''")
        builder.where(f"{column} = '{escaped}'")
    return builder.build()


class TestXrqRoundTrip:
    @given(requirements())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_identity(self, requirement):
        from repro.xformats import xrq

        text = xrq.dumps(requirement)
        parsed = xrq.loads(text)
        assert parsed.id == requirement.id
        assert parsed.measures == requirement.measures
        assert parsed.dimensions == requirement.dimensions
        assert parsed.aggregations == requirement.aggregations
        assert [s.predicate for s in parsed.slicers] == [
            str(__import__("repro.expressions", fromlist=["parse"]).parse(
                s.predicate
            ))
            for s in requirement.slicers
        ]
        assert xrq.dumps(parsed) == text

    @given(requirements())
    @settings(max_examples=50, deadline=None)
    def test_validation_stable_across_roundtrip(self, requirement):
        from repro.sources import tpch
        from repro.xformats import xrq

        ontology = tpch.ontology()
        parsed = xrq.loads(xrq.dumps(requirement))
        assert bool(requirement.validate(ontology)) == bool(
            parsed.validate(ontology)
        )


# ---------------------------------------------------------------------------
# Conformance algebra
# ---------------------------------------------------------------------------

attribute_names = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=4,
    unique=True,
)


@st.composite
def simple_dimensions(draw):
    from repro.mdmodel import Dimension, Hierarchy, Level, LevelAttribute

    concepts = draw(
        st.lists(st.sampled_from(["X", "Y", "Z", "W"]), min_size=1,
                 max_size=3, unique=True)
    )
    dimension = Dimension(name="D")
    for concept in concepts:
        dimension.add_level(
            Level(
                name=concept,
                attributes=[
                    LevelAttribute(f"{concept}_{name}", ScalarType.STRING)
                    for name in draw(attribute_names)
                ],
                concept=concept,
            )
        )
    dimension.add_hierarchy(Hierarchy(name="h", levels=list(concepts)))
    return dimension


class TestConformanceAlgebra:
    @given(simple_dimensions())
    @settings(max_examples=80, deadline=None)
    def test_merge_with_self_is_identity(self, dimension):
        from repro.mdmodel.conformance import merge_dimensions

        merged = merge_dimensions(dimension, dimension)
        assert set(merged.levels) == set(dimension.levels)
        for name, level in dimension.levels.items():
            assert merged.level(name).attribute_names() == (
                level.attribute_names()
            )
        assert len(merged.hierarchies) == len(dimension.hierarchies)

    @given(simple_dimensions())
    @settings(max_examples=80, deadline=None)
    def test_merge_is_idempotent(self, dimension):
        from repro.mdmodel.conformance import merge_dimensions

        once = merge_dimensions(dimension, dimension)
        twice = merge_dimensions(once, dimension)
        assert set(twice.levels) == set(once.levels)
        assert len(twice.hierarchies) == len(once.hierarchies)

    @given(simple_dimensions(), simple_dimensions())
    @settings(max_examples=80, deadline=None)
    def test_merge_contains_both_inputs(self, first, second):
        from repro.mdmodel import conformance

        assume(conformance.dimensions_conformable(first, second))
        merged = conformance.merge_dimensions(first, second)
        first_attributes = {
            attribute.name
            for level in first.levels.values()
            for attribute in level.attributes
        }
        second_attributes = {
            attribute.name
            for level in second.levels.values()
            for attribute in level.attributes
        }
        merged_attributes = {
            attribute.name
            for level in merged.levels.values()
            for attribute in level.attributes
        }
        assert first_attributes | second_attributes <= merged_attributes


# ---------------------------------------------------------------------------
# Cost model monotonicity
# ---------------------------------------------------------------------------

class TestCostModelMonotonicity:
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.lists(
            st.sampled_from(["a = 1", "b > 2", "c != 3"]),
            min_size=0, max_size=3, unique=True,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_more_filters_never_increase_rows(self, rows, predicates):
        from repro.etlmodel import Datastore, EtlFlow, Loader, Selection
        from repro.etlmodel.cost import CostModel

        model = CostModel()
        flow = EtlFlow("t")
        chain = [Datastore("src", table="t", columns=("a", "b", "c"))]
        for index, predicate in enumerate(predicates):
            chain.append(Selection(f"s{index}", predicate=predicate))
        chain.append(Loader("load", table="o"))
        flow.chain(*chain)
        report = model.estimate(flow, {"t": rows})
        outputs = [node.output_rows for node in report.nodes]
        # Rows never increase along a selection chain.
        for before, after in zip(outputs, outputs[1:]):
            assert after <= before + 1e-9

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_costs_positive_and_scale_with_rows(self, rows):
        from repro.etlmodel.cost import CostModel
        from tests.etlmodel.conftest import build_revenue_flow

        model = CostModel()
        small = model.total(build_revenue_flow(), {"lineitem": rows})
        large = model.total(build_revenue_flow(), {"lineitem": rows * 2})
        assert 0 < small <= large
