"""The lint driver: analysis contexts and the :func:`lint` entry point.

The heavy analyses (structural validation, the schema walk, backward
demand, forward hashability taint) are computed once per subject and
cached on a context object; every rule reads from the context, so adding
a rule never adds a pass.

``lint`` accepts either an :class:`~repro.etlmodel.flow.EtlFlow` or an
:class:`~repro.mdmodel.model.MDSchema` and returns a
:class:`~repro.analysis.diagnostics.LintReport`.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import (  # noqa: F401  (register rules)
    evolution_rules,
    flow_rules,
    md_rules,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    rule_by_code,
    rules_for,
)
from repro.analysis.flow_rules import structural_diagnostics
from repro.analysis.lineage import Hazard, hashability_hazards, output_demand
from repro.errors import QuarryError
from repro.etlmodel import propagation
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import Loader
from repro.expressions.types import ScalarType, type_of_value
from repro.mdmodel.model import MDSchema
from repro.sources.schema import SourceSchema, make_table


class FlowLintContext:
    """Cached analyses over one ETL flow.

    ``source_schema`` types the datastores (enables QRY201/QRY204 to see
    real types); ``rows_by_table`` supplies sample/source rows (enables
    the QRY202/QRY203 hashability taint).  Both are optional — rules
    degrade to silence, never to guesses, when inputs are missing.
    """

    def __init__(
        self,
        flow: EtlFlow,
        *,
        source_schema: Optional[SourceSchema] = None,
        rows_by_table: Optional[Dict[str, List[dict]]] = None,
    ) -> None:
        self.flow = flow
        self.source_schema = source_schema
        self.rows_by_table = rows_by_table or {}

    @cached_property
    def structural(self) -> List[Diagnostic]:
        return structural_diagnostics(self.flow)

    @cached_property
    def acyclic(self) -> bool:
        return not any(d.code == "QRY005" for d in self.structural)

    @cached_property
    def names(self) -> Dict[str, Optional[set]]:
        """Structurally known attribute names per node (None = unknown)."""
        if not self.acyclic:
            return {}
        return propagation.attribute_names(self.flow)

    @cached_property
    def _schema_walk(
        self,
    ) -> Tuple[Dict[str, Optional[dict]], List[Tuple[str, str]]]:
        """Best-effort typed schema per node, plus propagation failures.

        Unlike :func:`repro.etlmodel.propagation.propagate` this never
        raises: a node that fails gets a ``None`` schema and one
        ``(node, message)`` failure entry, and everything downstream of
        a ``None`` schema is silently ``None`` too (no cascades).  A
        datastore whose table the source schema cannot type is unknown,
        not a failure — the engine's STRING fallback for explicit
        columns is a *guess*, and the typed rules must not report
        guess-induced mismatches.
        """
        schemas: Dict[str, Optional[dict]] = {}
        failures: List[Tuple[str, str]] = []
        if not self.acyclic:
            return schemas, failures
        for name in self.flow.topological_order():
            operation = self.flow.node(name)
            if operation.kind == "Datastore":
                if self.source_schema is None or not self.source_schema.has_table(
                    operation.table
                ):
                    schemas[name] = None
                    continue
            inputs = [schemas.get(source) for source in self.flow.inputs(name)]
            if len(inputs) != operation.arity or any(
                schema is None for schema in inputs
            ):
                if operation.kind != "Datastore":
                    schemas[name] = None
                    continue
            try:
                schemas[name] = propagation._output_schema(
                    operation, inputs, self.source_schema
                )
            except QuarryError as exc:
                schemas[name] = None
                message = str(exc)
                prefix = f"{operation.kind} {name!r}: "
                if message.startswith(prefix):
                    message = message[len(prefix):]
                failures.append((name, message))
        return schemas, failures

    @property
    def node_schemas(self) -> Dict[str, Optional[dict]]:
        return self._schema_walk[0]

    @property
    def propagation_failures(self) -> List[Tuple[str, str]]:
        return self._schema_walk[1]

    @cached_property
    def demand(self) -> Dict[str, Optional[set]]:
        if not self.acyclic:
            return {}
        try:
            return output_demand(self.flow, self.names)
        except QuarryError:
            return {}  # malformed predicate somewhere; QRY204 reports it

    @cached_property
    def hazards(self) -> List[Hazard]:
        if not self.acyclic or not self.rows_by_table:
            return []
        try:
            return hashability_hazards(
                self.flow, self.rows_by_table, self.names
            )
        except QuarryError:
            return []

    @cached_property
    def _loader_reach(self) -> set:
        reach = set()
        for operation in self.flow.nodes():
            if isinstance(operation, Loader):
                reach.add(operation.name)
                reach |= self.flow.upstream(operation.name)
        return reach

    def reaches_loader(self, name: str) -> bool:
        return name in self._loader_reach


class MDLintContext:
    """Cached analyses over one MD schema."""

    def __init__(self, schema: MDSchema, *, ontology=None) -> None:
        self.schema = schema
        self._ontology = ontology

    @cached_property
    def ontology_graph(self):
        if self._ontology is None:
            return None
        if hasattr(self._ontology, "to_one_path"):
            return self._ontology  # already an OntologyGraph
        from repro.ontology.graph import OntologyGraph

        return OntologyGraph(self._ontology)


def schema_from_rows(tables: Dict[str, List[dict]]) -> SourceSchema:
    """Synthesize a typed :class:`SourceSchema` from sample rows.

    Each column takes the type of its first typeable non-null value;
    columns with no such value (all NULL, or values outside the scalar
    type system) default to STRING.  This is what the lint CLI and the
    fuzz oracle use to make untyped row fixtures visible to the typed
    rules.
    """
    schema = SourceSchema("sampled")
    for table_name, rows in tables.items():
        columns: Dict[str, ScalarType] = {}
        for row in rows:
            for attribute, value in row.items():
                if attribute in columns and columns[attribute] is not None:
                    continue
                try:
                    columns.setdefault(attribute, None)
                    inferred = type_of_value(value)
                except QuarryError:
                    inferred = None
                if inferred is not None:
                    columns[attribute] = inferred
        schema.add_table(
            make_table(
                table_name,
                [
                    (attribute, scalar or ScalarType.STRING)
                    for attribute, scalar in columns.items()
                ],
            )
        )
    return schema


def _select_rules(target: str, disable, only):
    rules = rules_for(target)
    if only is not None:
        wanted = set(only)
        for code in wanted:
            rule_by_code(code)  # raise on typos
        rules = [r for r in rules if r.code in wanted]
    if disable:
        dropped = set(disable)
        for code in dropped:
            rule_by_code(code)
        rules = [r for r in rules if r.code not in dropped]
    return rules


def lint(
    subject,
    *,
    source_schema: Optional[SourceSchema] = None,
    tables: Optional[Dict[str, List[dict]]] = None,
    ontology=None,
    disable: Iterable[str] = (),
    only: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run all (or the selected) lint rules over a flow or an MD schema.

    ``tables`` maps datastore table names to sample rows; when given
    without a ``source_schema``, a schema is synthesized from the rows
    so the typed rules see something.
    """
    if isinstance(subject, EtlFlow):
        if source_schema is None and tables:
            source_schema = schema_from_rows(tables)
        context = FlowLintContext(
            subject, source_schema=source_schema, rows_by_table=tables
        )
        rules = _select_rules("flow", disable, only)
        subject_name = f"flow {subject.name!r}"
    elif isinstance(subject, MDSchema):
        context = MDLintContext(subject, ontology=ontology)
        rules = _select_rules("md", disable, only)
        subject_name = f"schema {subject.name!r}"
    else:
        raise TypeError(
            f"lint() wants an EtlFlow or MDSchema, got {type(subject).__name__}"
        )
    diagnostics: List[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(rule.run(context))
    return LintReport(subject=subject_name, diagnostics=diagnostics)
