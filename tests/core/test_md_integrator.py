"""Tests for the MD Schema Integrator (Figure 3, MD side)."""

import pytest

from repro.core.integrator import MDIntegrator
from repro.core.interpreter import Interpreter
from repro.errors import IntegrationError
from repro.mdmodel import MDSchema
from repro.mdmodel.complexity import ComplexityWeights
from repro.mdmodel.constraints import is_sound
from repro.sources import tpch

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


@pytest.fixture(scope="module")
def interpreter():
    return Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())


@pytest.fixture(scope="module")
def partials(interpreter):
    return {
        "IR1": interpreter.interpret(build_revenue_requirement()),
        "IR2": interpreter.interpret(build_netprofit_requirement()),
        "IR3": interpreter.interpret(build_quantity_requirement()),
    }


def integrate_all(partials, keys, integrator=None):
    integrator = integrator or MDIntegrator()
    unified = MDSchema(name="unified")
    result = None
    for key in keys:
        result = integrator.integrate(unified, partials[key].md_schema)
        unified = result.schema
    return unified, result


class TestFigure3Scenario:
    """IR1 (revenue) + IR2 (netprofit): constellation with shared Part."""

    def test_both_facts_present(self, partials):
        unified, __ = integrate_all(partials, ["IR1", "IR2"])
        assert unified.has_fact("fact_table_revenue")
        assert unified.has_fact("fact_table_netprofit")

    def test_part_dimension_conformed(self, partials):
        unified, __ = integrate_all(partials, ["IR1", "IR2"])
        # One Part dimension serving both facts, with the union of
        # attributes (p_name from IR1, p_brand from IR2).
        part_dims = [name for name in unified.dimensions if "Part" in name]
        assert part_dims == ["Part"]
        attributes = unified.dimension("Part").level("Part").attribute_names()
        assert set(attributes) == {"p_name", "p_brand"}

    def test_facts_not_merged_across_granularities(self, partials):
        # revenue is per (Part, Supplier); netprofit per (Part) only —
        # different granularities must stay separate facts.
        unified, __ = integrate_all(partials, ["IR1", "IR2"])
        assert len(unified.facts) == 2

    def test_unified_schema_is_sound(self, partials):
        unified, __ = integrate_all(partials, ["IR1", "IR2", "IR3"])
        assert is_sound(unified)

    def test_requirement_traceability_accumulates(self, partials):
        unified, __ = integrate_all(partials, ["IR1", "IR2", "IR3"])
        assert unified.all_requirements() == {"IR1", "IR2", "IR3"}

    def test_decisions_reported(self, partials):
        __, result = integrate_all(partials, ["IR1", "IR2"])
        actions = {(d.kind, d.action) for d in result.decisions}
        assert ("dimension", "merged") in actions
        assert ("fact", "added") in actions


class TestSameRequirementTwice:
    def test_idempotent_for_duplicate_requirement(self, partials, interpreter):
        unified, __ = integrate_all(partials, ["IR1"])
        again = interpreter.interpret(build_revenue_requirement("IR1b"))
        result = MDIntegrator().integrate(unified, again.md_schema)
        # Same concept, same granularity: the fact merges; measures too.
        assert len(result.schema.facts) == 1
        fact = result.schema.fact("fact_table_revenue")
        assert fact.requirements == {"IR1", "IR1b"}
        assert result.complexity_after == pytest.approx(
            result.complexity_before
        )

    def test_measure_name_clash_with_different_expression_rejected(
        self, partials, interpreter
    ):
        from repro.core.requirements import RequirementBuilder

        unified, __ = integrate_all(partials, ["IR1"])
        clashing = (
            RequirementBuilder("IRX")
            .measure("revenue", "Lineitem_l_extendedprice", "AVERAGE")
            .per("Part_p_name", "Supplier_s_name")
            .where("Nation_n_name = 'SPAIN'")
            .build()
        )
        design = interpreter.interpret(clashing)
        with pytest.raises(IntegrationError):
            MDIntegrator().integrate(unified, design.md_schema)


class TestCostModel:
    def test_integrated_cheaper_than_naive(self, partials):
        __, result = integrate_all(partials, ["IR1", "IR2"])
        assert result.complexity_after < result.complexity_naive
        assert result.saving > 0

    def test_complexity_tracking_monotonic(self, partials):
        unified1, result1 = integrate_all(partials, ["IR1"])
        __, result2 = integrate_all(partials, ["IR1", "IR2"])
        assert result2.complexity_before == pytest.approx(
            result1.complexity_after
        )
        assert result2.complexity_after > result2.complexity_before

    def test_weights_can_forbid_merging(self, partials):
        # A (pathological) profile that makes every merged dimension as
        # expensive as a separate one: per-dimension cost 0 means the
        # merge trial and the separate trial tie; ties merge. Instead,
        # penalise levels so the union-with-more-levels loses.
        weights = ComplexityWeights(
            fact=0, measure=0, dimension=0, level=100, attribute=0,
            hierarchy=0, link=0,
        )
        integrator = MDIntegrator(weights=weights)
        unified, __ = integrate_all(partials, ["IR1"], integrator)
        # IR2's Part dimension has the same single level as IR1's, so it
        # still merges (no extra level); but a dimension with extra
        # levels would not. Build that case with complement off vs on.
        from repro.core.interpreter import Interpreter as Interp

        flat = Interp(
            tpch.ontology(), tpch.schema(), tpch.mappings(), complement=False
        ).interpret(build_revenue_requirement("IRflat"))
        result = integrator.integrate(flat.md_schema, unified)
        # unified Supplier has 3 levels, flat Supplier has 1: merging
        # would add 2 x 100; keeping separate adds 3 x 100 -> merge still
        # cheaper. Check the integrator picked the cheaper option either
        # way and stayed sound.
        assert is_sound(result.schema)


class TestDimensionRenaming:
    def test_nonconformable_same_name_dimension_renamed(self):
        from repro.expressions import ScalarType
        from repro.mdmodel import Dimension, Fact, Hierarchy, Level, LevelAttribute, Measure

        def star(concept):
            schema = MDSchema(name=concept)
            dimension = Dimension(name="Thing")
            dimension.add_level(Level(
                "Thing",
                attributes=[LevelAttribute("x", ScalarType.STRING)],
                concept=concept,
            ))
            dimension.add_hierarchy(Hierarchy("h", ["Thing"]))
            schema.add_dimension(dimension)
            fact = Fact(name=f"fact_{concept}", concept=concept)
            fact.add_measure(Measure("m", expression="x"))
            fact.link_dimension("Thing", "Thing")
            schema.add_fact(fact)
            return schema

        result = MDIntegrator().integrate(star("A"), star("B"))
        assert set(result.schema.dimensions) == {"Thing", "Thing_2"}
        fact_b = result.schema.fact("fact_B")
        assert fact_b.links[0].dimension == "Thing_2"
