"""Tests: assembling requirements from accepted suggestions, and the
xRQ ingestion path on the facade."""

import pytest

from repro import Quarry
from repro.core.requirements import Elicitor
from repro.errors import RequirementError, UnknownPropertyError
from repro.sources import tpch
from repro.xformats import xrq

from .conftest import build_revenue_requirement


@pytest.fixture(scope="module")
def elicitor():
    return Elicitor(tpch.ontology())


class TestDraftRequirement:
    def test_defaults_take_top_suggestions(self, elicitor):
        requirement = elicitor.draft_requirement("D1", "Lineitem").build()
        assert requirement.measures  # top measure accepted
        assert requirement.dimensions  # top dimension accepted
        requirement.check(tpch.ontology())

    def test_accepted_lists_respected(self, elicitor):
        requirement = (
            elicitor.draft_requirement(
                "D2",
                "Lineitem",
                accept_measures=["Lineitem_l_quantity"],
                accept_dimensions=["Part", "Nation"],
            )
            .where("Nation_n_name = 'SPAIN'")
            .build()
        )
        assert requirement.measures[0].expression == "Lineitem_l_quantity"
        atoms = requirement.dimension_properties()
        assert atoms == ["Part_p_name", "Nation_n_name"]

    def test_attribute_accepted_directly(self, elicitor):
        requirement = elicitor.draft_requirement(
            "D3",
            "Lineitem",
            accept_measures=["Lineitem_l_tax"],
            accept_dimensions=["Part_p_brand"],
        ).build()
        assert requirement.dimension_properties() == ["Part_p_brand"]

    def test_drafted_requirement_interprets_end_to_end(self, elicitor):
        from repro.core.interpreter import Interpreter

        requirement = elicitor.draft_requirement(
            "D4",
            "Lineitem",
            accept_measures=["Lineitem_l_extendedprice"],
            accept_dimensions=["Supplier"],
        ).build()
        interpreter = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        )
        design = interpreter.interpret(requirement)
        assert design.md_schema.has_dimension("Supplier")

    def test_unknown_measure_rejected(self, elicitor):
        with pytest.raises(UnknownPropertyError):
            elicitor.draft_requirement(
                "D5", "Lineitem", accept_measures=["Nope"]
            )

    def test_dimension_without_attributes_rejected(self):
        from repro.ontology import OntologyBuilder
        from repro.expressions import ScalarType

        bare = (
            OntologyBuilder("bare")
            .concept("Thing")
            .concept("Evt")
            .attribute("Evt_v", "Evt", ScalarType.DECIMAL)
            .relationship("Evt_thing", "Evt", "Thing", "N-1")
            .build()
        )
        elicitor = Elicitor(bare)
        with pytest.raises(RequirementError):
            elicitor.draft_requirement(
                "D6", "Evt", accept_dimensions=["Thing"]
            )


class TestXrqIngestion:
    def test_add_requirement_from_xrq_text(self):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        text = xrq.dumps(build_revenue_requirement())
        report = quarry.add_requirement_xrq(text)
        assert report.requirement_id == "IR1"
        md, __ = quarry.unified_design()
        assert md.has_fact("fact_table_revenue")

    def test_malformed_xrq_rejected(self):
        from repro.errors import XrqFormatError

        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        with pytest.raises(XrqFormatError):
            quarry.add_requirement_xrq("<garbage/>")
