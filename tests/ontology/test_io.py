"""Unit tests for the ontology text serialisation."""

import pytest

from repro.errors import OntologyParseError
from repro.expressions import ScalarType
from repro.ontology import Multiplicity, OntologyBuilder
from repro.ontology import io as ontology_io


@pytest.fixture
def shop():
    return (
        OntologyBuilder("shop", description='toy "retail" domain')
        .concept("Item", label="Catalog item", description="anything sellable")
        .concept("Product", parent="Item")
        .concept("Sale")
        .attribute("Product_name", "Product", ScalarType.STRING, label="name")
        .attribute("Sale_amount", "Sale", ScalarType.DECIMAL)
        .relationship("Sale_product", "Sale", "Product", "N-1", label="sold product")
        .build()
    )


class TestRoundTrip:
    def test_dumps_loads_preserves_everything(self, shop):
        text = ontology_io.dumps(shop)
        parsed = ontology_io.loads(text)
        assert parsed.name == shop.name
        assert parsed.description == shop.description
        assert parsed.size() == shop.size()
        for concept in shop.concepts():
            assert parsed.concept(concept.id) == concept
        for prop in shop.datatype_properties():
            assert parsed.datatype_property(prop.id) == prop
        for prop in shop.object_properties():
            assert parsed.object_property(prop.id) == prop

    def test_double_roundtrip_is_fixed_point(self, shop):
        text = ontology_io.dumps(shop)
        assert ontology_io.dumps(ontology_io.loads(text)) == text

    def test_file_roundtrip(self, shop, tmp_path):
        path = tmp_path / "shop.ont"
        ontology_io.save(shop, path)
        parsed = ontology_io.load(path)
        assert parsed.size() == shop.size()

    def test_quotes_in_descriptions_survive(self, shop):
        parsed = ontology_io.loads(ontology_io.dumps(shop))
        assert parsed.description == 'toy "retail" domain'


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# header comment\n"
            "ontology t\n"
            "\n"
            "concept A\n"
            "# trailing comment\n"
        )
        parsed = ontology_io.loads(text)
        assert parsed.has_concept("A")

    def test_multiplicities_parse(self):
        text = (
            "ontology t\nconcept A\nconcept B\n"
            "relationship r1 A B 1-1\n"
            "relationship r2 A B N-N\n"
        )
        parsed = ontology_io.loads(text)
        assert parsed.object_property("r1").multiplicity is Multiplicity.ONE_TO_ONE
        assert parsed.object_property("r2").multiplicity is Multiplicity.MANY_TO_MANY

    @pytest.mark.parametrize(
        "text",
        [
            "",  # missing header
            "concept A\n",  # directive before header
            "ontology t\nontology u\n",  # duplicate header
            "ontology t\nbogus A\n",  # unknown directive
            "ontology t\nconcept\n",  # concept without id
            "ontology t\nconcept A label\n",  # option without value
            "ontology t\nconcept A weird x\n",  # unknown option
            "ontology t\nconcept A label noquotes\n",  # label not quoted
            'ontology t\nconcept A label "unterminated\n',
            "ontology t\nconcept A\nattribute p A nonsense\n",  # bad type
            "ontology t\nconcept A\nconcept B\nrelationship r A B 9-9\n",
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(OntologyParseError):
            ontology_io.loads(text)

    def test_error_message_carries_line_number(self):
        with pytest.raises(OntologyParseError) as excinfo:
            ontology_io.loads("ontology t\nbogus A\n")
        assert "line 2" in str(excinfo.value)


class TestD3Export:
    def test_nodes_and_links(self, shop):
        from repro.ontology.d3 import to_d3

        doc = to_d3(shop)
        node_ids = {node["id"] for node in doc["nodes"]}
        assert node_ids == {"Item", "Product", "Sale"}
        link_kinds = {link["kind"] for link in doc["links"]}
        assert link_kinds == {"relationship", "subsumption"}

    def test_attributes_inlined_on_nodes(self, shop):
        from repro.ontology.d3 import to_d3

        doc = to_d3(shop)
        product = next(node for node in doc["nodes"] if node["id"] == "Product")
        assert product["attributes"][0]["id"] == "Product_name"

    def test_highlight_marks_focus_and_suggestions(self, shop):
        from repro.ontology.d3 import to_d3

        doc = to_d3(shop, highlight="Sale")
        by_id = {node["id"]: node for node in doc["nodes"]}
        assert by_id["Sale"]["focus"] is True
        assert by_id["Product"]["suggested"] is True
        assert by_id["Item"]["suggested"] is False

    def test_json_rendering(self, shop):
        import json

        from repro.ontology.d3 import to_d3_json

        parsed = json.loads(to_d3_json(shop))
        assert parsed["name"] == "shop"
