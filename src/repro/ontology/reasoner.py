"""Subsumption reasoning over an ontology.

A small forward reasoner covering what Quarry needs from Jena:

* transitive closure of the ``parent`` (subClassOf) relation,
* inheritance of datatype and object properties by subconcepts,
* least common subsumer of two concepts (used by MD matching to decide
  whether two levels from different partial schemas talk about the same
  real-world class).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.errors import OntologyError
from repro.ontology.model import DatatypeProperty, ObjectProperty, Ontology


class Reasoner:
    """Materialises the subsumption closure of an ontology.

    The closure (ancestor chains, an ancestor set per concept for O(1)
    subsumption checks, and a reverse descendant index) is computed
    eagerly at construction — cycle detection stays a constructor-time
    error — and recomputed automatically whenever the ontology's
    generation counter shows it has mutated since, so stale subsumption
    facts are never served.
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._ancestors: Dict[str, List[str]] = {}
        self._ancestor_sets: Dict[str, FrozenSet[str]] = {}
        self._descendants: Dict[str, List[str]] = {}
        self._generation: Optional[int] = None
        self._refresh()

    def _ensure_current(self) -> None:
        if self._ontology.generation != self._generation:
            self._refresh()

    def _refresh(self) -> None:
        """Materialise the subsumption closure for the current generation."""
        self._generation = self._ontology.generation
        self._ancestors = {}
        for concept in self._ontology.concepts():
            self._ancestors[concept.id] = self._compute_ancestors(concept.id)
        self._ancestor_sets = {
            concept_id: frozenset(chain)
            for concept_id, chain in self._ancestors.items()
        }
        self._descendants = {concept_id: [] for concept_id in self._ancestors}
        for concept_id, chain in self._ancestors.items():
            for ancestor in chain:
                self._descendants[ancestor].append(concept_id)

    def _compute_ancestors(self, concept_id: str) -> List[str]:
        """Chain of ancestors, nearest first; detects parent cycles."""
        chain: List[str] = []
        seen: Set[str] = {concept_id}
        current = self._ontology.concept(concept_id).parent
        while current is not None:
            if current in seen:
                raise OntologyError(
                    f"subsumption cycle involving concept {current!r}"
                )
            seen.add(current)
            chain.append(current)
            current = self._ontology.concept(current).parent
        return chain

    # -- subsumption ---------------------------------------------------------

    def ancestors(self, concept_id: str) -> List[str]:
        """Proper ancestors of a concept, nearest first."""
        self._ensure_current()
        self._ontology.concept(concept_id)
        return list(self._ancestors[concept_id])

    def descendants(self, concept_id: str) -> List[str]:
        """Proper descendants of a concept, in insertion order."""
        self._ensure_current()
        self._ontology.concept(concept_id)
        return list(self._descendants[concept_id])

    def is_subconcept(self, candidate: str, ancestor: str) -> bool:
        """Reflexive subsumption check: candidate ⊑ ancestor."""
        self._ensure_current()
        if candidate == ancestor:
            self._ontology.concept(candidate)
            return True
        return ancestor in self._ancestor_sets.get(candidate, frozenset())

    def least_common_subsumer(self, first: str, second: str) -> Optional[str]:
        """The most specific concept subsuming both, or None."""
        self._ensure_current()
        first_chain = [first] + self._ancestors.get(first, [])
        second_chain = {second, *self._ancestors.get(second, [])}
        for concept_id in first_chain:
            if concept_id in second_chain:
                return concept_id
        return None

    def related(self, first: str, second: str) -> bool:
        """Whether two concepts share any subsumer (same taxonomy branch)."""
        return self.least_common_subsumer(first, second) is not None

    # -- property inheritance ----------------------------------------------------

    def datatype_properties(self, concept_id: str) -> Iterator[DatatypeProperty]:
        """Own + inherited datatype properties, own first.

        Inherited properties that are shadowed by an own property with
        the same id never occur (ids are globally unique), so no
        deduplication is needed.
        """
        self._ensure_current()
        lineage = [concept_id] + self._ancestors.get(concept_id, [])
        for ancestor in lineage:
            yield from self._ontology.datatype_properties(ancestor)

    def object_properties_from(self, concept_id: str) -> Iterator[ObjectProperty]:
        """Own + inherited outgoing object properties."""
        self._ensure_current()
        lineage = [concept_id] + self._ancestors.get(concept_id, [])
        for ancestor in lineage:
            yield from self._ontology.properties_from(ancestor)

    def property_owner(self, concept_id: str, property_id: str) -> Optional[str]:
        """The concept in the lineage that declares ``property_id``."""
        self._ensure_current()
        lineage = [concept_id] + self._ancestors.get(concept_id, [])
        for ancestor in lineage:
            for prop in self._ontology.datatype_properties(ancestor):
                if prop.id == property_id:
                    return ancestor
        return None
