"""Operator edge cases, pinned against BOTH execution cores.

Every test here runs once per executor mode — ``legacy`` (the
row-at-a-time reference interpreter) and ``columnar`` (the compiled
columnar engine) — so the two paths cannot drift apart on the corners:
NULL join keys, attribute collisions, union incompatibility, empty
aggregation input, surrogate-key stability and descending sorts.
"""

import pytest

from repro.errors import ExecutionError
from repro.engine import Database, Executor, TableDef
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Join,
    Loader,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL

MODES = ("legacy", "columnar")


def null_key_db():
    database = Database()
    database.create_table(
        TableDef("orders", {"o_id": INT, "cust": STR, "amount": DEC})
    )
    database.insert_many(
        "orders",
        [
            {"o_id": 1, "cust": "ann", "amount": 10.0},
            {"o_id": 2, "cust": None, "amount": 20.0},
            {"o_id": 3, "cust": "bob", "amount": 5.0},
            {"o_id": 4, "cust": "zed", "amount": None},
        ],
    )
    database.create_table(TableDef("custs", {"cust": STR, "city": STR}))
    database.insert_many(
        "custs",
        [
            {"cust": "ann", "city": "Barcelona"},
            {"cust": None, "city": "Nowhere"},
            {"cust": "bob", "city": "Paris"},
        ],
    )
    return database


def join_flow(join_type="inner"):
    flow = EtlFlow("t")
    flow.add(Datastore("orders", table="orders"))
    flow.add(Datastore("custs", table="custs"))
    flow.add(
        Join(
            "join",
            left_keys=("cust",),
            right_keys=("cust",),
            join_type=join_type,
        )
    )
    flow.add(Loader("load", table="out"))
    flow.connect("orders", "join")
    flow.connect("custs", "join")
    flow.connect("join", "load")
    return flow


def run(flow, database, mode, keep=False):
    executor = Executor(database, mode=mode)
    stats = executor.execute(flow, keep_intermediate=keep)
    return executor, stats


@pytest.mark.parametrize("mode", MODES)
class TestJoinNullKeys:
    def test_left_join_null_keys_never_match(self, mode):
        """A NULL key matches nothing — not even a NULL key on the
        right — but LEFT join keeps the row with NULL payload."""
        database = null_key_db()
        run(join_flow("left"), database, mode)
        rows = database.scan("out").rows
        assert len(rows) == 4
        by_id = {row["o_id"]: row for row in rows}
        assert by_id[1]["city"] == "Barcelona"
        assert by_id[2]["city"] is None  # NULL left key: no match
        assert by_id[3]["city"] == "Paris"

    def test_inner_join_drops_null_keys_on_both_sides(self, mode):
        database = null_key_db()
        run(join_flow("inner"), database, mode)
        assert {row["o_id"] for row in database.scan("out").rows} == {1, 3}

    def test_duplicate_right_keys_fan_out(self, mode):
        database = null_key_db()
        database.insert("custs", {"cust": "ann", "city": "Girona"})
        run(join_flow("inner"), database, mode)
        cities = [
            row["city"]
            for row in database.scan("out").rows
            if row["o_id"] == 1
        ]
        # Matches appear in right-side insertion order.
        assert cities == ["Barcelona", "Girona"]

    def test_join_attribute_collision_raises(self, mode):
        """A non-key attribute present on both sides is an error, named
        after the join node."""
        database = null_key_db()
        database.create_table(
            TableDef("custs2", {"custname": STR, "amount": DEC})
        )
        flow = EtlFlow("t")
        flow.add(Datastore("orders", table="orders"))
        flow.add(Datastore("custs", table="custs2"))
        flow.add(Join("join", left_keys=("cust",), right_keys=("custname",)))
        flow.add(Loader("load", table="out"))
        flow.connect("orders", "join")
        flow.connect("custs", "join")
        flow.connect("join", "load")
        with pytest.raises(ExecutionError) as excinfo:
            run(flow, database, mode)
        assert "'join'" in str(excinfo.value)
        assert "'amount'" in str(excinfo.value)


@pytest.mark.parametrize("mode", MODES)
class TestUnionCompatibility:
    def test_union_incompatible_schemas_raise(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.add(Datastore("a", table="orders", columns=("o_id",)))
        flow.add(Datastore("b", table="orders", columns=("cust",)))
        flow.add(UnionOp("u"))
        flow.add(Loader("load", table="out"))
        flow.connect("a", "u")
        flow.connect("b", "u")
        flow.connect("u", "load")
        with pytest.raises(ExecutionError) as excinfo:
            run(flow, database, mode)
        assert "union-compatible" in str(excinfo.value)

    def test_union_keeps_duplicates(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.add(Datastore("a", table="orders", columns=("cust",)))
        flow.add(Datastore("b", table="orders", columns=("cust",)))
        flow.add(UnionOp("u"))
        flow.add(Loader("load", table="out"))
        flow.connect("a", "u")
        flow.connect("b", "u")
        flow.connect("u", "load")
        run(flow, database, mode)
        assert database.row_count("out") == 8


@pytest.mark.parametrize("mode", MODES)
class TestAggregationEdges:
    def test_global_aggregate_on_empty_input_yields_one_row(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders"),
            Selection("none", predicate="amount > 1000000"),
            Aggregation(
                "agg",
                group_by=(),
                aggregates=(
                    AggregationSpec("n", "COUNT", "o_id"),
                    AggregationSpec("total", "SUM", "amount"),
                ),
            ),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        assert database.scan("out").rows == [{"n": 0, "total": None}]

    def test_grouped_aggregate_on_empty_input_yields_no_rows(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders"),
            Selection("none", predicate="amount > 1000000"),
            Aggregation(
                "agg",
                group_by=("cust",),
                aggregates=(AggregationSpec("n", "COUNT", "o_id"),),
            ),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        assert database.scan("out").rows == []


@pytest.mark.parametrize("mode", MODES)
class TestSurrogateKeys:
    def test_surrogate_keys_dense_and_stable(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders", columns=("cust",)),
            SurrogateKey("sk", output="cust_id", business_keys=("cust",)),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        rows = database.scan("out").rows
        # First occurrence order: ann=1, NULL=2, bob=3, zed=4.
        assert [row["cust_id"] for row in rows] == [1, 2, 3, 4]
        assigned = {}
        for row in rows:
            assigned.setdefault(row["cust"], row["cust_id"])
            assert row["cust_id"] == assigned[row["cust"]]

    def test_surrogate_column_comes_first(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders", columns=("cust",)),
            SurrogateKey("sk", output="cust_id", business_keys=("cust",)),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        assert database.scan("out").attribute_names() == ["cust_id", "cust"]


@pytest.mark.parametrize("mode", MODES)
class TestSortDirections:
    def test_sort_descending(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders", columns=("o_id", "amount")),
            Sort("sort", keys=("amount",), descending=True),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        amounts = [row["amount"] for row in database.scan("out").rows]
        # Descending reverses the NULLs-first ascending order.
        assert amounts == [20.0, 10.0, 5.0, None]

    def test_sort_ascending_nulls_first(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders", columns=("o_id", "amount")),
            Sort("sort", keys=("amount",)),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        amounts = [row["amount"] for row in database.scan("out").rows]
        assert amounts == [None, 5.0, 10.0, 20.0]

    def tied_db(self):
        database = Database()
        database.create_table(TableDef("t", {"k": INT, "pos": INT}))
        database.insert_many(
            "t",
            [
                {"k": 1, "pos": 0},
                {"k": None, "pos": 1},
                {"k": 2, "pos": 2},
                {"k": 1, "pos": 3},
                {"k": None, "pos": 4},
                {"k": 2, "pos": 5},
            ],
        )
        return database

    def test_sort_descending_is_stable(self, mode):
        """``reverse=True`` sorting is stable, not reversed: rows with
        equal keys (NULL ties included) keep their insertion order."""
        database = self.tied_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t"),
            Sort("sort", keys=("k",), descending=True),
            Loader("load", table="out"),
        )
        run(flow, database, mode)
        rows = [(row["k"], row["pos"]) for row in database.scan("out").rows]
        # Descending: values first (2s, then 1s), NULLs last; within
        # each tie group the original positions stay ascending.
        assert rows == [
            (2, 2), (2, 5), (1, 0), (1, 3), (None, 1), (None, 4)
        ]

    def test_sort_descending_null_placement_matches_legacy(self, mode):
        """Cross-mode pin: both modes must produce the byte-identical
        row order, NULL placement included (not only equal multisets)."""
        ordered = {}
        for run_mode in ("legacy", mode):
            database = self.tied_db()
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="t"),
                Sort("sort", keys=("k", "pos"), descending=True),
                Loader("load", table="out"),
            )
            run(flow, database, run_mode)
            ordered[run_mode] = [
                (row["k"], row["pos"]) for row in database.scan("out").rows
            ]
        assert ordered[mode] == ordered["legacy"]
        assert [pair[0] for pair in ordered[mode][-2:]] == [None, None]


@pytest.mark.parametrize("mode", MODES)
class TestFusedChains:
    """Chains of fusable operators must behave exactly like the unfused
    engine — same rows, same per-node stats, same errors."""

    def chain_flow(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders"),
            Selection("pos", predicate="amount > 0"),
            DerivedAttribute("vat", output="vat", expression="amount * 0.21"),
            Projection("proj", columns=("o_id", "vat")),
            Rename("ren", renaming=(("vat", "tax"),)),
            Selection("big", predicate="tax > 2"),
            Loader("load", table="out"),
        )
        return flow

    def test_chain_result(self, mode):
        database = null_key_db()
        run(self.chain_flow(), database, mode)
        rows = database.scan("out").rows
        assert database.scan("out").attribute_names() == ["o_id", "tax"]
        by_id = {row["o_id"]: row["tax"] for row in rows}
        assert set(by_id) == {1, 2}
        assert by_id[1] == pytest.approx(2.1)

    def test_chain_stats_are_exact(self, mode):
        database = null_key_db()
        __, stats = run(self.chain_flow(), database, mode)
        assert stats.node("pos").input_rows == 4
        assert stats.node("pos").output_rows == 3
        assert stats.node("vat").output_rows == 3
        assert stats.node("proj").output_rows == 3
        assert stats.node("ren").output_rows == 3
        assert stats.node("big").input_rows == 3
        assert stats.node("big").output_rows == 2
        assert stats.loaded == {"out": 2}
        assert stats.node("big").rows_per_second >= 0.0

    def test_chain_error_blames_right_node(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders"),
            Selection("ok", predicate="o_id > 0"),
            DerivedAttribute("boom", output="x", expression="cust + 1"),
            Loader("load", table="out"),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(flow, database, mode)
        assert "'boom'" in str(excinfo.value)

    def test_chain_missing_attribute_error_matches_interpreter(self, mode):
        database = null_key_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="orders"),
            Projection("narrow", columns=("o_id",)),
            Selection("ghost", predicate="amount > 1"),
            Loader("load", table="out"),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(flow, database, mode)
        assert "'ghost'" in str(excinfo.value)
        assert "amount" in str(excinfo.value)


class TestModeEquivalence:
    def test_modes_produce_identical_loads(self):
        from collections import Counter

        results = {}
        for mode in MODES:
            database = null_key_db()
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="orders"),
                Selection("sel", predicate="amount >= 5"),
                DerivedAttribute(
                    "net", output="net", expression="amount * 0.79"
                ),
                Aggregation(
                    "agg",
                    group_by=("cust",),
                    aggregates=(AggregationSpec("total", "SUM", "net"),),
                ),
                Sort("sort", keys=("cust",)),
                Loader("load", table="out"),
            )
            run(flow, database, mode)
            results[mode] = Counter(
                tuple(sorted(row.items()))
                for row in database.scan("out").rows
            )
        assert results["legacy"] == results["columnar"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Executor(Database(), mode="vectorised")


class TestUnhashableKeyValues:
    """An unhashable value reaching a hashing operator (join, distinct,
    aggregate, surrogate key) must raise the same ``ExecutionError`` —
    naming the operator and the offending attribute — in BOTH modes,
    never a bare ``TypeError``.

    The strict database rejects such values at insert, so the tests go
    through the fuzzer's :class:`LooseDatabase`, exactly like the
    differential harness does.
    """

    def loose_db(self):
        from repro.fuzz.datagen import LooseDatabase, TableSpec

        return LooseDatabase.from_specs(
            [
                TableSpec(
                    name="left",
                    schema={"k": INT, "v": STR},
                    rows=[{"k": [1, 2], "v": "a"}, {"k": 1, "v": "b"}],
                ),
                TableSpec(
                    name="right",
                    schema={"j": INT},
                    rows=[{"j": 1}],
                ),
            ]
        )

    def messages(self, flow):
        caught = {}
        for mode in MODES:
            with pytest.raises(ExecutionError) as excinfo:
                run(flow, self.loose_db(), mode)
            caught[mode] = str(excinfo.value)
        return caught

    def test_join_key(self):
        flow = EtlFlow("t")
        flow.add(Datastore("lhs", table="left"))
        flow.add(Datastore("rhs", table="right"))
        flow.add(Join("join", left_keys=("k",), right_keys=("j",)))
        flow.add(Loader("load", table="out"))
        flow.connect("lhs", "join")
        flow.connect("rhs", "join")
        flow.connect("join", "load")
        caught = self.messages(flow)
        assert caught["legacy"] == caught["columnar"]
        assert (
            caught["legacy"]
            == "join: unhashable value [1, 2] for key attribute 'k'"
        )

    def test_distinct(self):
        from repro.etlmodel import Distinct

        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="left"),
            Distinct("uniq"),
            Loader("load", table="out"),
        )
        caught = self.messages(flow)
        assert caught["legacy"] == caught["columnar"]
        assert (
            caught["legacy"]
            == "distinct: unhashable value [1, 2] for key attribute 'k'"
        )

    def test_aggregate_group_key(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="left"),
            Aggregation(
                "agg",
                group_by=("k",),
                aggregates=(AggregationSpec("n", "COUNT", "v"),),
            ),
            Loader("load", table="out"),
        )
        caught = self.messages(flow)
        assert caught["legacy"] == caught["columnar"]
        assert (
            caught["legacy"]
            == "aggregate: unhashable value [1, 2] for key attribute 'k'"
        )

    def test_surrogate_business_key(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="left"),
            SurrogateKey("sk", output="sid", business_keys=("k",)),
            Loader("load", table="out"),
        )
        caught = self.messages(flow)
        assert caught["legacy"] == caught["columnar"]
        assert (
            caught["legacy"]
            == "surrogate-key: unhashable value [1, 2] for key attribute 'k'"
        )
