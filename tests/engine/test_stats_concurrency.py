"""Regression: statistics collection must not run under the catalog lock.

The seed ``StatisticsCatalog.table_stats`` held the single catalog
lock across the whole collection pass, which (a) serialised every
table's collection behind whichever ran first and (b) nested the
catalog lock over the engine's per-table columnar locks.  The fix
collects under a per-table fill lock with a double-check; the catalog
lock only guards the maps.

Both properties are pinned here with a stub database whose scan of one
table parks on an event: another table's stats must still come back
while the slow scan is in flight, and two racers for the *same* table
must collect exactly once.
"""

import threading

from repro.engine.stats import StatisticsCatalog, TableStats
from repro.expressions.types import ScalarType


class _Relation:
    def __init__(self):
        self.schema = {"x": ScalarType.INTEGER}
        self.columns = {"x": [1, 2, 3]}
        self.length = 3


class _BlockingDatabase:
    """``scan_columns("slow")`` parks until ``gate`` is set."""

    def __init__(self):
        self.gate = threading.Event()
        self.scan_started = threading.Event()
        self.scans = []  # drained single-threaded in assertions only
        self._mu = threading.Lock()

    def table_generation(self, table):
        return 1

    def scan_columns(self, table):
        with self._mu:
            self.scans.append(table)
        if table == "slow":
            self.scan_started.set()
            assert self.gate.wait(5)
        return _Relation()


def test_slow_collection_does_not_block_other_tables():
    database = _BlockingDatabase()
    catalog = StatisticsCatalog(database)

    slow = threading.Thread(target=catalog.table_stats, args=("slow",))
    slow.start()
    try:
        assert database.scan_started.wait(5)
        # Seed code: this parked on the catalog lock until the slow
        # scan finished; now it must return while "slow" is in flight.
        fast = threading.Thread(target=catalog.table_stats, args=("fast",))
        fast.start()
        fast.join(2)
        assert not fast.is_alive(), (
            "table_stats('fast') blocked behind the in-flight "
            "collection of 'slow'"
        )
    finally:
        database.gate.set()
        slow.join(5)
    assert not slow.is_alive()


def test_same_table_racers_collect_once():
    database = _BlockingDatabase()
    catalog = StatisticsCatalog(database)
    results = []
    mu = threading.Lock()

    def fetch():
        stats = catalog.table_stats("slow")
        with mu:
            results.append(stats)

    racers = [threading.Thread(target=fetch) for __ in range(4)]
    for racer in racers:
        racer.start()
    assert database.scan_started.wait(5)
    database.gate.set()
    for racer in racers:
        racer.join(5)

    assert len(results) == 4
    assert all(isinstance(stats, TableStats) for stats in results)
    assert database.scans.count("slow") == 1  # single-flight per generation
    first = results[0]
    assert all(stats is first for stats in results)  # one shared object


def test_generation_bump_recollects():
    class _Bumpable(_BlockingDatabase):
        def __init__(self):
            super().__init__()
            self.generation = 1
            self.gate.set()  # never park

        def table_generation(self, table):
            return self.generation

    database = _Bumpable()
    catalog = StatisticsCatalog(database)
    catalog.table_stats("t")
    catalog.table_stats("t")
    assert database.scans.count("t") == 1  # cached within a generation
    database.generation = 2
    catalog.table_stats("t")
    assert database.scans.count("t") == 2  # bump invalidates
