"""SQL rendering helpers shared by the deployer and the OLAP interface.

Renders scalar types, literals and expression ASTs in two dialects
(``postgres`` — the demo's deployment target — and ``sqlite``), plus
SELECT statements for OLAP queries.
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro.errors import DeploymentError
from repro.expressions import ast
from repro.expressions.types import ScalarType

DIALECTS = ("postgres", "sqlite")

_TYPE_NAMES = {
    "postgres": {
        ScalarType.INTEGER: "BIGINT",
        ScalarType.DECIMAL: "double precision",
        ScalarType.STRING: "VARCHAR(255)",
        ScalarType.BOOLEAN: "BOOLEAN",
        ScalarType.DATE: "DATE",
    },
    "sqlite": {
        ScalarType.INTEGER: "INTEGER",
        ScalarType.DECIMAL: "REAL",
        ScalarType.STRING: "TEXT",
        ScalarType.BOOLEAN: "INTEGER",
        ScalarType.DATE: "TEXT",
    },
}


def check_dialect(dialect: str) -> None:
    if dialect not in DIALECTS:
        raise DeploymentError(
            f"unknown SQL dialect {dialect!r}; supported: {DIALECTS}"
        )


def sql_type(scalar_type: ScalarType, dialect: str = "postgres") -> str:
    """The SQL column type for a scalar type in the given dialect."""
    check_dialect(dialect)
    return _TYPE_NAMES[dialect][scalar_type]


def sql_literal(value) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    return repr(value)


def sql_identifier(name: str) -> str:
    """Quote an identifier when it is not a plain lowercase word."""
    if name.isidentifier() and name == name.lower():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


_SQL_OPERATORS = {
    "=": "=",
    "!=": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "and": "AND",
    "or": "OR",
}

_SQL_FUNCTIONS = {
    "abs": "ABS",
    "round": "ROUND",
    "floor": "FLOOR",
    "ceil": "CEIL",
    "sqrt": "SQRT",
    "length": "LENGTH",
    "upper": "UPPER",
    "lower": "LOWER",
    "trim": "TRIM",
    "substring": "SUBSTRING",
    "concat": "CONCAT",
    "coalesce": "COALESCE",
}

_DATE_PARTS = {"year", "month", "day", "quarter"}


def sql_expression(node: ast.Expression, dialect: str = "postgres") -> str:
    """Render an expression AST as SQL text."""
    check_dialect(dialect)
    if isinstance(node, ast.Literal):
        return sql_literal(node.value)
    if isinstance(node, ast.Attribute):
        return sql_identifier(node.name)
    if isinstance(node, ast.UnaryOp):
        inner = sql_expression(node.operand, dialect)
        if node.operator == "not":
            return f"NOT ({inner})"
        return f"-({inner})"
    if isinstance(node, ast.BinaryOp):
        left = sql_expression(node.left, dialect)
        right = sql_expression(node.right, dialect)
        if node.operator == "in":
            return f"{left} IN {right}"
        operator = _SQL_OPERATORS[node.operator]
        return f"({left} {operator} {right})"
    if isinstance(node, ast.ValueList):
        items = ", ".join(sql_expression(item, dialect) for item in node.items)
        return f"({items})"
    if isinstance(node, ast.FunctionCall):
        return _sql_call(node, dialect)
    raise DeploymentError(f"cannot render node {node!r} as SQL")


def _sql_call(node: ast.FunctionCall, dialect: str) -> str:
    name = node.name.lower()
    arguments = [sql_expression(argument, dialect) for argument in node.arguments]
    if name in _DATE_PARTS:
        if dialect == "postgres":
            return f"EXTRACT({name.upper()} FROM {arguments[0]})"
        formats = {"year": "%Y", "month": "%m", "day": "%d"}
        if name == "quarter":
            return f"((CAST(strftime('%m', {arguments[0]}) AS INTEGER) - 1) / 3 + 1)"
        return f"CAST(strftime('{formats[name]}', {arguments[0]}) AS INTEGER)"
    if name not in _SQL_FUNCTIONS:
        raise DeploymentError(f"no SQL rendering for function {node.name!r}")
    return f"{_SQL_FUNCTIONS[name]}({', '.join(arguments)})"


def select_statement(
    table: str,
    columns: List[str],
    aggregates: Optional[List[tuple]] = None,
    where: Optional[ast.Expression] = None,
    group_by: Optional[List[str]] = None,
    order_by: Optional[List[str]] = None,
    dialect: str = "postgres",
) -> str:
    """Render a SELECT.

    ``aggregates`` is a list of ``(function, input, alias)`` triples;
    AVERAGE is spelled AVG in SQL.
    """
    check_dialect(dialect)
    parts = [sql_identifier(column) for column in columns]
    for function, input_column, alias in aggregates or []:
        sql_function = "AVG" if function == "AVERAGE" else function
        parts.append(
            f"{sql_function}({sql_identifier(input_column)}) AS "
            f"{sql_identifier(alias)}"
        )
    if not parts:
        raise DeploymentError("SELECT needs at least one output column")
    lines = [f"SELECT {', '.join(parts)}", f"FROM {sql_identifier(table)}"]
    if where is not None:
        lines.append(f"WHERE {sql_expression(where, dialect)}")
    if group_by:
        rendered = ", ".join(sql_identifier(column) for column in group_by)
        lines.append(f"GROUP BY {rendered}")
    if order_by:
        rendered = ", ".join(sql_identifier(column) for column in order_by)
        lines.append(f"ORDER BY {rendered}")
    return "\n".join(lines) + ";"
