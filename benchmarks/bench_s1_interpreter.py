"""S1 — the Requirements Interpreter (demo scenario 1 / Figure 4).

Measures the cost of translating an information requirement into its
validated partial designs, across the requirement corpus and across
domains, and pins the Figure-4 output shape.
"""

import pytest

from repro.core.interpreter import Interpreter
from repro.sources import retail, tpch

from benchmarks._workloads import requirement_corpus, revenue_requirement


@pytest.fixture(scope="module")
def interpreter():
    return Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())


class TestFigure4Shape:
    def test_partial_design_matches_paper(self, interpreter):
        design = interpreter.interpret(revenue_requirement())
        assert design.md_schema.has_fact("fact_table_revenue")
        assert set(design.md_schema.dimensions) == {"Part", "Supplier"}
        assert design.mapping.fact_concept == "Lineitem"
        loaded = {
            node.table
            for node in design.etl_flow.nodes()
            if node.kind == "Loader"
        }
        assert loaded == {"fact_table_revenue", "dim_Part", "dim_Supplier"}


class TestLatency:
    def test_single_requirement(self, benchmark, interpreter):
        benchmark.group = "S1 interpret"
        benchmark.name = "figure-4 requirement"
        design = benchmark(
            lambda: interpreter.interpret(revenue_requirement())
        )
        assert design.etl_flow.validate() == []

    def test_corpus_batch(self, benchmark, interpreter):
        corpus = requirement_corpus(10)
        benchmark.group = "S1 interpret"
        benchmark.name = "corpus of 10"
        designs = benchmark(
            lambda: [interpreter.interpret(r) for r in corpus]
        )
        assert len(designs) == 10

    def test_retail_domain(self, benchmark):
        from repro import RequirementBuilder

        interpreter = Interpreter(
            retail.ontology(), retail.schema(), retail.mappings()
        )
        requirement = (
            RequirementBuilder("R1", "sales per category/country")
            .measure("sales", "TicketLine_amount", "SUM")
            .per("Product_category", "Store_country")
            .build()
        )
        benchmark.group = "S1 interpret"
        benchmark.name = "retail requirement"
        design = benchmark(lambda: interpreter.interpret(requirement))
        assert design.mapping.fact_concept == "TicketLine"


class TestConstruction:
    def test_interpreter_setup_cost(self, benchmark):
        """Interpreter construction validates the mappings once."""
        ontology, schema, mappings = (
            tpch.ontology(), tpch.schema(), tpch.mappings(),
        )
        benchmark.group = "S1 interpret"
        benchmark.name = "interpreter setup"
        instance = benchmark(lambda: Interpreter(ontology, schema, mappings))
        assert instance is not None
