"""Tests for plugging in external design tools (§2.2).

An "external tool" here hand-authors xMD and xLM documents (as a real
third-party tool would ship them through the metadata layer), and Quarry
validates + integrates them next to its own interpreter output.
"""

import pytest

from repro import Quarry, QuarryError, RequirementBuilder
from repro.engine import Database
from repro.errors import MDConstraintViolation
from repro.sources import tpch
from repro.xformats import xlm, xmd

from .conftest import build_revenue_requirement

EXTERNAL_XMD = """
<MDschema name="external">
  <facts>
    <fact>
      <name>fact_table_shipcount</name>
      <concept>Lineitem</concept>
      <grain><column>l_shipmode</column></grain>
      <requirements><requirement>EXT1</requirement></requirements>
      <measures>
        <measure>
          <name>shipments</name>
          <expression>Lineitem_l_quantity</expression>
          <type>integer</type>
          <aggregation>COUNT</aggregation>
          <additivity>additive</additivity>
        </measure>
      </measures>
      <links>
        <link><dimension>shipmode</dimension><level>shipmode</level></link>
      </links>
    </fact>
  </facts>
  <dimensions>
    <dimension>
      <name>shipmode</name>
      <levels>
        <level>
          <name>shipmode</name>
          <concept>Lineitem</concept>
          <key>l_shipmode</key>
          <attributes>
            <attribute>
              <name>l_shipmode</name>
              <type>string</type>
              <property>Lineitem_l_shipmode</property>
            </attribute>
          </attributes>
        </level>
      </levels>
      <hierarchies>
        <hierarchy name="shipmode"><level>shipmode</level></hierarchy>
      </hierarchies>
    </dimension>
  </dimensions>
</MDschema>
"""

EXTERNAL_XLM = """
<design>
  <metadata>
    <name>etl_EXT1</name>
    <requirements><requirement>EXT1</requirement></requirements>
  </metadata>
  <edges>
    <edge><from>DATASTORE_lineitem</from><to>EXTRACTION_lineitem</to><enabled>Y</enabled></edge>
    <edge><from>EXTRACTION_lineitem</from><to>AGG_ship</to><enabled>Y</enabled></edge>
    <edge><from>AGG_ship</from><to>LOAD_fact_table_shipcount</to><enabled>Y</enabled></edge>
    <edge><from>EXTRACTION_lineitem</from><to>PROJECT_dim_shipmode</to><enabled>Y</enabled></edge>
    <edge><from>PROJECT_dim_shipmode</from><to>DISTINCT_dim_shipmode</to><enabled>Y</enabled></edge>
    <edge><from>DISTINCT_dim_shipmode</from><to>LOAD_dim_shipmode</to><enabled>Y</enabled></edge>
  </edges>
  <nodes>
    <node><name>DATASTORE_lineitem</name><type>Datastore</type><optype>TableInput</optype>
      <properties><property name="table">lineitem</property>
      <property name="columns">l_quantity,l_shipmode</property></properties></node>
    <node><name>EXTRACTION_lineitem</name><type>Extraction</type><optype>SelectValues</optype>
      <properties><property name="columns">l_quantity,l_shipmode</property></properties></node>
    <node><name>AGG_ship</name><type>Aggregation</type><optype>GroupBy</optype>
      <properties><property name="groupBy">l_shipmode</property>
      <property name="aggregates">shipments=COUNT(l_quantity)</property></properties></node>
    <node><name>LOAD_fact_table_shipcount</name><type>Loader</type><optype>TableOutput</optype>
      <properties><property name="table">fact_table_shipcount</property>
      <property name="mode">replace</property></properties></node>
    <node><name>PROJECT_dim_shipmode</name><type>Projection</type><optype>SelectValues</optype>
      <properties><property name="columns">l_shipmode</property></properties></node>
    <node><name>DISTINCT_dim_shipmode</name><type>Distinct</type><optype>Unique</optype></node>
    <node><name>LOAD_dim_shipmode</name><type>Loader</type><optype>TableOutput</optype>
      <properties><property name="table">dim_shipmode</property>
      <property name="mode">replace</property></properties></node>
  </nodes>
</design>
"""


def external_requirement():
    return (
        RequirementBuilder("EXT1", "shipment count per ship mode")
        .measure("shipments", "Lineitem_l_quantity", "COUNT")
        .per("Lineitem_l_shipmode")
        .build()
    )


@pytest.fixture
def quarry():
    return Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())


class TestExternalPartialDesigns:
    def test_external_design_integrates_and_deploys(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        report = quarry.add_partial_design(
            external_requirement(),
            xmd.loads(EXTERNAL_XMD),
            xlm.loads(EXTERNAL_XLM),
        )
        assert report.action == "added"
        md, etl = quarry.unified_design()
        assert md.has_fact("fact_table_shipcount")
        assert quarry.satisfiability_problems() == []
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=31))
        result = quarry.deploy("native", source_database=database)
        assert result.stats.loaded["fact_table_shipcount"] > 0
        # External fact counts match a direct recomputation.
        expected = {}
        for row in database.scan("lineitem").rows:
            mode = row["l_shipmode"]
            expected[mode] = expected.get(mode, 0) + 1
        got = {
            row["l_shipmode"]: row["shipments"]
            for row in database.scan("fact_table_shipcount").rows
        }
        assert got == expected

    def test_external_design_shares_source_reads(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        report = quarry.add_partial_design(
            external_requirement(),
            xmd.loads(EXTERNAL_XMD),
            xlm.loads(EXTERNAL_XLM),
        )
        # The lineitem datastore is reused from the interpreter's flow.
        assert any(
            "DATASTORE_lineitem" in name
            for name in report.etl_consolidation.reused
        )

    def test_unsound_external_schema_rejected(self, quarry):
        broken = xmd.loads(EXTERNAL_XMD)
        broken.fact("fact_table_shipcount").measures.clear()
        with pytest.raises(MDConstraintViolation):
            quarry.add_partial_design(
                external_requirement(), broken, xlm.loads(EXTERNAL_XLM)
            )

    def test_flow_not_claiming_requirement_rejected(self, quarry):
        flow = xlm.loads(EXTERNAL_XLM)
        flow.requirements = {"SOMEONE_ELSE"}
        with pytest.raises(QuarryError):
            quarry.add_partial_design(
                external_requirement(), xmd.loads(EXTERNAL_XMD), flow
            )

    def test_schema_missing_measure_rejected(self, quarry):
        requirement = (
            RequirementBuilder("EXT1", "has an extra measure")
            .measure("shipments", "Lineitem_l_quantity", "COUNT")
            .measure("ghost", "Lineitem_l_tax", "SUM")
            .per("Lineitem_l_shipmode")
            .build()
        )
        with pytest.raises(QuarryError):
            quarry.add_partial_design(
                requirement, xmd.loads(EXTERNAL_XMD), xlm.loads(EXTERNAL_XLM)
            )

    def test_duplicate_requirement_rejected(self, quarry):
        quarry.add_partial_design(
            external_requirement(),
            xmd.loads(EXTERNAL_XMD),
            xlm.loads(EXTERNAL_XLM),
        )
        with pytest.raises(QuarryError):
            quarry.add_partial_design(
                external_requirement(),
                xmd.loads(EXTERNAL_XMD),
                xlm.loads(EXTERNAL_XLM),
            )

    def test_external_design_survives_rebuild(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_partial_design(
            external_requirement(),
            xmd.loads(EXTERNAL_XMD),
            xlm.loads(EXTERNAL_XLM),
        )
        quarry.remove_requirement("IR1")
        md, __ = quarry.unified_design()
        assert md.has_fact("fact_table_shipcount")
        assert quarry.satisfiability_problems() == []
