"""Idempotence of integration across the whole requirement corpus.

Re-adding any already-integrated requirement (under a fresh id) must be
served entirely by reuse: no new ETL operations, no MD complexity
growth.  This is the strongest form of the paper's reuse claim and runs
over every entry of the benchmark corpus.
"""

import pytest

from repro import Quarry
from repro.sources import tpch

from benchmarks._workloads import requirement_corpus

CORPUS_SIZE = 9


@pytest.fixture(scope="module")
def loaded_quarry():
    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    for requirement in requirement_corpus(CORPUS_SIZE):
        quarry.add_requirement(requirement)
    return quarry


@pytest.mark.parametrize("index", range(CORPUS_SIZE))
def test_readding_requirement_is_pure_reuse(loaded_quarry, index):
    quarry = loaded_quarry
    duplicate = requirement_corpus(CORPUS_SIZE)[index]
    duplicate.id = f"{duplicate.id}_again"
    complexity_before = quarry.status().complexity
    operations_before = quarry.status().etl_operations
    report = quarry.add_requirement(duplicate)
    assert report.etl_consolidation.added == []
    assert report.etl_consolidation.reuse_ratio == 1.0
    status = quarry.status()
    assert status.etl_operations == operations_before
    assert status.complexity == pytest.approx(complexity_before)
    assert quarry.satisfiability_problems() == []
    quarry.remove_requirement(duplicate.id)
