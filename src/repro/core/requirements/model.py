"""Information-requirement classes — the semantics of the xRQ format.

The xRQ snippet of Figure 4 shows the structure: a ``<cube>`` with
``<dimensions>`` (ontology datatype-property references), ``<measures>``
(named derivation functions over datatype properties), ``<slicers>``
(comparisons), and ``<aggregations>`` pairing each dimension with a
measure and an aggregation function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RequirementError
from repro.expressions import parse
from repro.expressions.types import ScalarType
from repro.mdmodel.model import AggregationFunction
from repro.ontology.model import Ontology


@dataclass(frozen=True)
class RequirementDimension:
    """An analysis dimension: a datatype property used as grouping atom.

    ``Part_p_name`` means "per part name".
    """

    property: str


@dataclass(frozen=True)
class RequirementMeasure:
    """A named measure with its derivation function.

    ``expression`` is written over ontology datatype-property ids, e.g.
    ``Lineitem_l_extendedprice * (1 - Lineitem_l_discount)``.
    """

    name: str
    expression: str


@dataclass(frozen=True)
class RequirementSlicer:
    """A selection predicate over datatype-property ids.

    The xRQ ``<comparison>`` triple (concept, operator, value) is the
    common case; arbitrary boolean predicates are allowed.
    """

    predicate: str

    def as_comparison(self) -> Optional[tuple]:
        """(property, operator, value) when the predicate is a simple
        comparison against a literal, else None (serialised generically).
        """
        from repro.expressions import ast

        tree = parse(self.predicate)
        is_simple = (
            isinstance(tree, ast.BinaryOp)
            and isinstance(tree.left, ast.Attribute)
            and isinstance(tree.right, ast.Literal)
            and tree.operator in ("=", "!=", "<", "<=", ">", ">=")
        )
        if is_simple:
            return tree.left.name, tree.operator, tree.right.value
        return None


@dataclass(frozen=True)
class RequirementAggregation:
    """One xRQ ``<aggregation>``: aggregate ``measure`` by ``dimension``."""

    order: int
    dimension: str  # RequirementDimension.property reference
    measure: str  # RequirementMeasure.name reference
    function: AggregationFunction


@dataclass
class InformationRequirement:
    """A complete information requirement (one xRQ document)."""

    id: str
    description: str = ""
    dimensions: List[RequirementDimension] = field(default_factory=list)
    measures: List[RequirementMeasure] = field(default_factory=list)
    slicers: List[RequirementSlicer] = field(default_factory=list)
    aggregations: List[RequirementAggregation] = field(default_factory=list)

    # -- reference helpers ----------------------------------------------------

    def dimension_properties(self) -> List[str]:
        return [dimension.property for dimension in self.dimensions]

    def measure(self, name: str) -> RequirementMeasure:
        for measure in self.measures:
            if measure.name == name:
                return measure
        raise RequirementError(
            f"requirement {self.id!r} has no measure {name!r}"
        )

    def effective_aggregations(self) -> List[RequirementAggregation]:
        """Explicit aggregations, or the SUM cross-product default.

        When a user does not spell aggregations out, every measure is
        aggregated by every dimension with SUM (the usual OLAP default).
        """
        if self.aggregations:
            return list(self.aggregations)
        derived = []
        for measure in self.measures:
            for dimension in self.dimensions:
                derived.append(
                    RequirementAggregation(
                        order=1,
                        dimension=dimension.property,
                        measure=measure.name,
                        function=AggregationFunction.SUM,
                    )
                )
        return derived

    def aggregation_for(self, measure_name: str) -> AggregationFunction:
        """The (first) aggregation function requested for a measure."""
        for aggregation in self.effective_aggregations():
            if aggregation.measure == measure_name:
                return aggregation.function
        return AggregationFunction.SUM

    def referenced_properties(self) -> List[str]:
        """Every datatype-property id the requirement mentions."""
        names: List[str] = []
        for dimension in self.dimensions:
            if dimension.property not in names:
                names.append(dimension.property)
        for measure in self.measures:
            for name in sorted(parse(measure.expression).attributes()):
                if name not in names:
                    names.append(name)
        for slicer in self.slicers:
            for name in sorted(parse(slicer.predicate).attributes()):
                if name not in names:
                    names.append(name)
        return names

    # -- validation ----------------------------------------------------------------

    def validate(self, ontology: Ontology) -> List[str]:
        """Check the requirement against a domain ontology.

        Returns human-readable problems: unknown property references,
        non-numeric measure expressions, dangling aggregation refs,
        requirements with nothing to analyse.
        """
        problems: List[str] = []
        if not self.measures:
            problems.append("requirement has no measures")
        if not self.dimensions:
            problems.append("requirement has no dimensions")
        seen_measures = set()
        for measure in self.measures:
            if measure.name in seen_measures:
                problems.append(f"duplicate measure name {measure.name!r}")
            seen_measures.add(measure.name)
        for name in self.referenced_properties():
            if not ontology.has_datatype_property(name):
                problems.append(f"unknown datatype property {name!r}")
        if problems:
            return problems  # typing checks below need valid references
        schema = {
            prop.id: prop.range for prop in ontology.datatype_properties()
        }
        for measure in self.measures:
            from repro.errors import TypeCheckError
            from repro.expressions import infer_type

            try:
                result = infer_type(parse(measure.expression), schema)
            except TypeCheckError as exc:
                problems.append(f"measure {measure.name!r}: {exc}")
                continue
            if result is not None and not result.is_numeric:
                problems.append(
                    f"measure {measure.name!r} is not numeric (type {result})"
                )
        for slicer in self.slicers:
            from repro.errors import TypeCheckError
            from repro.expressions import infer_type

            try:
                result = infer_type(parse(slicer.predicate), schema)
            except TypeCheckError as exc:
                problems.append(f"slicer {slicer.predicate!r}: {exc}")
                continue
            # None means "could not infer" (e.g. a bare NULL literal) —
            # not a proof of wrongness, so only flag definite types.
            if result is not None and result is not ScalarType.BOOLEAN:
                problems.append(
                    f"slicer {slicer.predicate!r} is not boolean"
                )
        dimension_ids = set(self.dimension_properties())
        measure_names = {measure.name for measure in self.measures}
        for aggregation in self.aggregations:
            if aggregation.dimension not in dimension_ids:
                problems.append(
                    f"aggregation references unknown dimension "
                    f"{aggregation.dimension!r}"
                )
            if aggregation.measure not in measure_names:
                problems.append(
                    f"aggregation references unknown measure "
                    f"{aggregation.measure!r}"
                )
        return problems

    def check(self, ontology: Ontology) -> None:
        """Raise :class:`RequirementError` if invalid against ontology."""
        problems = self.validate(ontology)
        if problems:
            raise RequirementError(
                f"requirement {self.id!r} invalid: " + "; ".join(problems)
            )
