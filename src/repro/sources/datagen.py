"""Deterministic synthetic data generation.

Benchmarks and examples need repeatable source data.  ``DataGenerator``
wraps a seeded :class:`random.Random` with the value distributions the
sample domains need (names, dates, prices, zipfian category picks), so
two runs with the same seed produce byte-identical tables.
"""

from __future__ import annotations

import datetime
import random
import string
from typing import List, Sequence


class DataGenerator:
    """Seeded pseudo-random value factory."""

    def __init__(self, seed: int = 20150323) -> None:
        # Default seed: the first day of EDBT 2015, where Quarry was shown.
        self._random = random.Random(seed)

    # -- primitives ----------------------------------------------------------

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def decimal(self, low: float, high: float, digits: int = 2) -> float:
        """Uniform decimal in [low, high], rounded to ``digits``."""
        return round(self._random.uniform(low, high), digits)

    def boolean(self, probability: float = 0.5) -> bool:
        return self._random.random() < probability

    def choice(self, options: Sequence):
        return self._random.choice(options)

    def zipf_choice(self, options: Sequence, skew: float = 1.2):
        """Pick with a Zipf-like skew: early options are more likely."""
        weights = [1.0 / (rank**skew) for rank in range(1, len(options) + 1)]
        return self._random.choices(options, weights=weights, k=1)[0]

    def sample(self, options: Sequence, count: int) -> List:
        return self._random.sample(list(options), count)

    def shuffle(self, items: List) -> List:
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    # -- domain values ----------------------------------------------------------

    def word(self, min_length: int = 4, max_length: int = 9) -> str:
        """A pronounceable-ish lowercase word."""
        vowels = "aeiou"
        consonants = "".join(c for c in string.ascii_lowercase if c not in vowels)
        length = self.integer(min_length, max_length)
        letters = []
        for position in range(length):
            pool = consonants if position % 2 == 0 else vowels
            letters.append(self.choice(pool))
        return "".join(letters)

    def name(self) -> str:
        """A capitalised two-part name."""
        return f"{self.word().capitalize()} {self.word().capitalize()}"

    def phrase(self, words: int = 3) -> str:
        return " ".join(self.word() for _ in range(words))

    def date(
        self,
        start: datetime.date = datetime.date(1992, 1, 1),
        end: datetime.date = datetime.date(1998, 12, 31),
    ) -> datetime.date:
        """Uniform date in [start, end] (TPC-H's order date window)."""
        span = (end - start).days
        return start + datetime.timedelta(days=self.integer(0, span))

    def phone(self) -> str:
        return (
            f"{self.integer(10, 34)}-{self.integer(100, 999)}-"
            f"{self.integer(100, 999)}-{self.integer(1000, 9999)}"
        )

    def code(self, prefix: str, number: int, width: int = 9) -> str:
        """A dbgen-style padded code such as ``Customer#000000001``."""
        return f"{prefix}#{number:0{width}d}"
