"""Unit tests for the OLAP query interface."""

import pytest

from repro.errors import EngineError
from repro.engine import Database, OlapQuery, TableDef, query_star
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


@pytest.fixture
def star_db():
    database = Database("star")
    database.create_table(
        TableDef("dim_part", {"part_id": INT, "p_name": STR}, primary_key=("part_id",))
    )
    database.create_table(
        TableDef(
            "dim_nation", {"nation_id": INT, "n_name": STR}, primary_key=("nation_id",)
        )
    )
    database.create_table(
        TableDef(
            "fact_sales",
            {"part_id": INT, "nation_id": INT, "revenue": DEC},
        )
    )
    database.insert_many(
        "dim_part",
        [{"part_id": 1, "p_name": "bolt"}, {"part_id": 2, "p_name": "nut"}],
    )
    database.insert_many(
        "dim_nation",
        [{"nation_id": 1, "n_name": "Spain"}, {"nation_id": 2, "n_name": "France"}],
    )
    database.insert_many(
        "fact_sales",
        [
            {"part_id": 1, "nation_id": 1, "revenue": 10.0},
            {"part_id": 1, "nation_id": 1, "revenue": 30.0},
            {"part_id": 1, "nation_id": 2, "revenue": 7.0},
            {"part_id": 2, "nation_id": 1, "revenue": 5.0},
        ],
    )
    return database


class TestQueryStar:
    def test_rollup_by_dimension_attribute(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("SUM", "revenue", "total")],
            joins=[("dim_part", "part_id", "part_id")],
        )
        result = query_star(star_db, query)
        totals = {row["p_name"]: row["total"] for row in result.rows}
        assert totals == {"bolt": 47.0, "nut": 5.0}

    def test_slicer_restricts_rows(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("SUM", "revenue", "total")],
            slicer="n_name = 'Spain'",
            joins=[
                ("dim_part", "part_id", "part_id"),
                ("dim_nation", "nation_id", "nation_id"),
            ],
        )
        result = query_star(star_db, query)
        totals = {row["p_name"]: row["total"] for row in result.rows}
        assert totals == {"bolt": 40.0, "nut": 5.0}

    def test_average_aggregate(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["n_name"],
            aggregates=[("AVERAGE", "revenue", "avg_rev")],
            joins=[("dim_nation", "nation_id", "nation_id")],
        )
        result = query_star(star_db, query)
        averages = {row["n_name"]: row["avg_rev"] for row in result.rows}
        assert averages["Spain"] == pytest.approx(15.0)
        assert averages["France"] == pytest.approx(7.0)

    def test_global_aggregate(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            aggregates=[("COUNT", "revenue", "n")],
        )
        result = query_star(star_db, query)
        assert result.rows == [{"n": 4}]

    def test_output_is_sorted_by_group(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("COUNT", "revenue", "n")],
            joins=[("dim_part", "part_id", "part_id")],
        )
        result = query_star(star_db, query)
        assert [row["p_name"] for row in result.rows] == ["bolt", "nut"]

    def test_unknown_group_column_raises(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["ghost"],
            aggregates=[("COUNT", "revenue", "n")],
        )
        with pytest.raises(EngineError):
            query_star(star_db, query)

    def test_unknown_join_column_raises(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("COUNT", "revenue", "n")],
            joins=[("dim_part", "ghost", "part_id")],
        )
        with pytest.raises(EngineError):
            query_star(star_db, query)


class TestSqlRendering:
    def test_query_renders_sql(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("AVERAGE", "revenue", "avg_rev")],
            slicer="n_name = 'Spain'",
        )
        sql = query.to_sql()
        assert "AVG(revenue) AS avg_rev" in sql
        assert "WHERE (n_name = 'Spain')" in sql
        assert "GROUP BY p_name" in sql
