"""MD conformance rules (QRY4xx) over hand-built schemas."""

from repro.analysis import lint
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    Additivity,
    AggregationFunction,
    Dimension,
    Fact,
    FactDimensionLink,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)


def attribute(name):
    return LevelAttribute(name=name, type=ScalarType.STRING)


def sound_dimension(name="customer"):
    dimension = Dimension(name=name)
    dimension.add_level(Level(name="base", attributes=[attribute("id")]))
    dimension.add_level(Level(name="nation", attributes=[attribute("n_name")]))
    dimension.add_hierarchy(Hierarchy(name="geo", levels=["base", "nation"]))
    return dimension


def sound_fact(name="sales", dimension="customer", level="base"):
    fact = Fact(name=name)
    fact.add_measure(Measure(name="amount", expression="price"))
    fact.link_dimension(dimension, level)
    return fact


def sound_schema():
    schema = MDSchema(name="star")
    schema.add_dimension(sound_dimension())
    schema.add_fact(sound_fact())
    return schema


def test_sound_schema_is_clean():
    assert lint(sound_schema()).codes() == []


def test_empty_dimension_and_missing_hierarchy():
    schema = MDSchema(name="s")
    schema.add_dimension(Dimension(name="empty"))
    bare = Dimension(name="bare")
    bare.add_level(Level(name="only", attributes=[attribute("a")]))
    schema.add_dimension(bare)
    report = lint(schema)
    assert [d.node for d in report.by_code("QRY401")] == ["empty"]
    assert [d.node for d in report.by_code("QRY402")] == ["bare"]


def test_hierarchy_with_unknown_level():
    schema = MDSchema(name="s")
    dimension = sound_dimension()
    dimension.hierarchies.append(Hierarchy(name="ghost", levels=["missing"]))
    schema.add_dimension(dimension)
    (finding,) = lint(schema).by_code("QRY403")
    assert finding.attribute == "missing"


def test_orphan_level_warns():
    schema = MDSchema(name="s")
    dimension = sound_dimension()
    dimension.levels["island"] = Level(
        name="island", attributes=[attribute("x")]
    )
    schema.add_dimension(dimension)
    (finding,) = lint(schema).by_code("QRY404")
    assert finding.attribute == "island"


def test_level_without_attributes():
    schema = MDSchema(name="s")
    dimension = sound_dimension()
    dimension.levels["base"].attributes.clear()
    schema.add_dimension(dimension)
    (finding,) = lint(schema).by_code("QRY405")
    assert finding.attribute == "base"


def test_duplicate_attribute_across_levels():
    schema = MDSchema(name="s")
    dimension = sound_dimension()
    dimension.levels["nation"].attributes.append(attribute("id"))
    schema.add_dimension(dimension)
    (finding,) = lint(schema).by_code("QRY406")
    assert finding.attribute == "id"
    assert "'base'" in finding.message and "'nation'" in finding.message


def test_fact_without_measures_or_links():
    schema = MDSchema(name="s")
    schema.add_fact(Fact(name="hollow"))
    report = lint(schema)
    assert [d.node for d in report.by_code("QRY407")] == ["hollow"]
    assert [d.node for d in report.by_code("QRY408")] == ["hollow"]


def test_broken_links():
    schema = MDSchema(name="s")
    schema.add_dimension(sound_dimension())
    fact = sound_fact()
    fact.links.append(FactDimensionLink(dimension="nowhere", level="base"))
    fact.links.append(FactDimensionLink(dimension="customer", level="bogus"))
    schema.add_fact(fact)
    report = lint(schema)
    messages = [d.message for d in report.by_code("QRY409")]
    assert any("unknown dimension 'nowhere'" in m for m in messages)
    assert any("unknown level 'bogus'" in m for m in messages)
    assert any("twice" in m for m in messages)  # customer linked twice


def test_non_base_link_warns():
    schema = MDSchema(name="s")
    schema.add_dimension(sound_dimension())
    schema.add_fact(sound_fact(level="nation"))
    (finding,) = lint(schema).by_code("QRY410")
    assert finding.node == "sales"
    assert "'nation'" in finding.message


def test_additivity_severities():
    schema = MDSchema(name="s")
    schema.add_dimension(sound_dimension())
    fact = sound_fact()
    fact.add_measure(
        Measure(
            name="temperature",
            expression="t",
            aggregation=AggregationFunction.SUM,
            additivity=Additivity.NON_ADDITIVE,
        )
    )
    fact.add_measure(
        Measure(
            name="ratio",
            expression="r",
            aggregation=AggregationFunction.AVG,
            additivity=Additivity.NON_ADDITIVE,
        )
    )
    fact.add_measure(
        Measure(
            name="balance",
            expression="b",
            aggregation=AggregationFunction.SUM,
            additivity=Additivity.SEMI_ADDITIVE,
        )
    )
    schema.add_fact(fact)
    report = lint(schema, only=["QRY411"])
    by_attribute = {d.attribute: d for d in report.diagnostics}
    assert by_attribute["temperature"].severity.value == "error"
    assert by_attribute["ratio"].severity.value == "warning"
    assert by_attribute["balance"].severity.value == "warning"


def test_non_distributive_is_informational():
    schema = MDSchema(name="s")
    schema.add_dimension(sound_dimension())
    fact = sound_fact()
    fact.measures["amount"].aggregation = AggregationFunction.AVG
    schema.add_fact(fact)
    (finding,) = lint(schema).by_code("QRY412")
    assert finding.severity.value == "info"
    assert report_ok(lint(schema))


def report_ok(report):
    return report.ok


class _StubGraph:
    """Duck-typed ontology graph: only ``to_one_path`` is required."""

    def __init__(self, reachable):
        self.reachable = reachable

    def to_one_path(self, source, target):
        return ["edge"] if (source, target) in self.reachable else None


def _concept_schema():
    schema = MDSchema(name="s")
    dimension = sound_dimension()
    dimension.levels["base"].concept = "Customer"
    schema.add_dimension(dimension)
    fact = sound_fact()
    fact.concept = "Lineitem"
    schema.add_fact(fact)
    return schema


def test_to_one_reachability_flags_fan_out():
    schema = _concept_schema()
    report = lint(schema, ontology=_StubGraph(reachable=set()))
    (finding,) = report.by_code("QRY413")
    assert finding.node == "sales"
    assert finding.attribute == "customer"


def test_to_one_reachability_quiet_when_path_exists():
    schema = _concept_schema()
    report = lint(
        schema, ontology=_StubGraph(reachable={("Lineitem", "Customer")})
    )
    assert report.by_code("QRY413") == []


def test_to_one_reachability_quiet_without_ontology():
    assert lint(_concept_schema()).by_code("QRY413") == []
