"""Engine core — compiled columnar executor vs legacy row interpreter.

The tentpole claim of the execution engine: lowering predicates and
derivations to compiled closures, running operators over column arrays
and fusing unary chains makes flow execution several times faster than
the row-at-a-time tree-walking interpreter, while remaining
bit-identical on every workload.  ``python -m benchmarks.run_engine``
produces the committed ``BENCH_engine.json`` numbers; this module pins
the shape under pytest-benchmark.
"""

from collections import Counter

import pytest

from repro.engine import Executor

from benchmarks.bench_s2_integration_etl import build_flows, compare_times
from benchmarks.conftest import make_database


@pytest.fixture(scope="module")
def workload():
    unified, partials = build_flows(6)
    return unified, partials


@pytest.fixture(scope="module")
def engine_db():
    return make_database(scale_factor=0.5)


def loaded_snapshot(database, flow):
    tables = {node.table for node in flow.nodes() if node.kind == "Loader"}
    return {
        table: Counter(
            tuple(sorted(row.items())) for row in database.scan(table).rows
        )
        for table in tables
    }


@pytest.mark.parametrize("mode", ["legacy", "columnar"])
def test_integrated_flow_execution(benchmark, workload, engine_db, mode):
    unified, __ = workload
    executor = Executor(engine_db, mode=mode)
    benchmark.group = "engine core: integrated flow"
    benchmark.name = mode
    benchmark(lambda: executor.execute(unified))


@pytest.mark.parametrize("mode", ["legacy", "columnar"])
def test_partial_flows_execution(benchmark, workload, engine_db, mode):
    __, partials = workload
    executor = Executor(engine_db, mode=mode)
    benchmark.group = "engine core: partial flows"
    benchmark.name = mode
    benchmark(lambda: [executor.execute(flow) for flow in partials])


class TestEquivalenceAndShape:
    def test_modes_load_identical_tables(self, workload, engine_db):
        unified, __ = workload
        snapshots = {}
        for mode in ("legacy", "columnar"):
            Executor(engine_db, mode=mode).execute(unified)
            snapshots[mode] = loaded_snapshot(engine_db, unified)
        assert snapshots["legacy"] == snapshots["columnar"]

    def test_columnar_is_faster_than_legacy(self, workload, engine_db):
        unified, __ = workload
        legacy = Executor(engine_db, mode="legacy")
        columnar = Executor(engine_db, mode="columnar")
        legacy.execute(unified)  # warm parse/compile/scan caches
        columnar.execute(unified)
        legacy_best, columnar_best = compare_times(
            lambda: legacy.execute(unified),
            lambda: columnar.execute(unified),
        )
        assert columnar_best < legacy_best

    def test_stats_report_throughput(self, workload, engine_db):
        unified, __ = workload
        stats = Executor(engine_db).execute(unified)
        assert all(node.rows_per_second >= 0.0 for node in stats.nodes)
        assert stats.total_rows_processed > 0
