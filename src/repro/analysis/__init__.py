"""Static analysis over ETL flows, MD schemas and the code itself.

Importing this package registers every rule family — the design-linter
rules (``QRY0xx``–``QRY4xx``) and the concurrency rules (``QRY9xx``,
:mod:`repro.analysis.concurrency`) — in the one shared registry, so
``repro.lint --list-rules`` and ``repro.codelint --list-rules`` print
the same catalog.
"""

import repro.analysis.concurrency.rules  # noqa: F401  (registers QRY9xx)
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    all_rules,
    rule_by_code,
    rules_for,
)
from repro.analysis.flow_rules import structural_diagnostics
from repro.analysis.linter import (
    FlowLintContext,
    MDLintContext,
    lint,
    schema_from_rows,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "rule_by_code",
    "rules_for",
    "structural_diagnostics",
    "FlowLintContext",
    "MDLintContext",
    "lint",
    "schema_from_rows",
]
