"""Pure-SQL rendering of an ETL flow (INSERT INTO ... SELECT).

For platforms without an ETL engine, the registry's ``sql`` exporter
renders each loader's upstream as a chain of common table expressions:

.. code-block:: sql

    TRUNCATE TABLE fact_table_revenue;
    WITH "DATASTORE_lineitem" AS (SELECT ... FROM lineitem),
         ...
    INSERT INTO fact_table_revenue SELECT * FROM "AGG_fact_table_revenue";

One statement group per loader, covering exactly its upstream closure.
"""

from __future__ import annotations

from typing import List

from repro.engine.sqlgen import (
    check_dialect,
    sql_expression,
    sql_identifier,
    sql_literal,
)
from repro.errors import DeploymentError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Operation,
    Projection,
    Rename,
    SCDType,
    SCDUpdate,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.etlmodel.propagation import attribute_names
from repro.expressions import parse
from repro.mdmodel.model import (
    SCD2_IS_CURRENT,
    SCD2_VALID_FROM,
    SCD2_VALID_TO,
    SCD2_VERSION,
)


def generate(flow: EtlFlow, dialect: str = "postgres") -> str:
    """Render the whole flow as a SQL script (one block per loader)."""
    check_dialect(dialect)
    blocks: List[str] = []
    for sink in flow.sinks():
        operation = flow.node(sink)
        if not isinstance(operation, Loader):
            raise DeploymentError(
                f"flow sink {sink!r} is not a loader; cannot render as SQL"
            )
        blocks.append(_loader_block(flow, operation, dialect))
    return "\n\n".join(blocks) + "\n"


def _loader_block(flow: EtlFlow, loader: Loader, dialect: str) -> str:
    final_input = flow.inputs(loader.name)[0]
    final_operation = flow.node(final_input)
    if isinstance(final_operation, SCDUpdate):
        return _scd_block(flow, loader, final_operation, dialect)
    upstream = flow.upstream(loader.name)
    order = [name for name in flow.topological_order() if name in upstream]
    ctes = []
    for name in order:
        select = _render_node(flow, flow.node(name), dialect)
        ctes.append(f"{sql_identifier(name)} AS (\n  {select}\n)")
    lines = []
    if loader.mode == "replace":
        lines.append(f"TRUNCATE TABLE {sql_identifier(loader.table)};")
    lines.append("WITH " + ",\n".join(ctes))
    lines.append(
        f"INSERT INTO {sql_identifier(loader.table)} "
        f"SELECT * FROM {sql_identifier(final_input)};"
    )
    return "\n".join(lines)


def _scd_ctes(flow: EtlFlow, operation: SCDUpdate, dialect: str) -> str:
    """The WITH chain rendering everything upstream of the SCD merge."""
    upstream = flow.upstream(operation.name) - {operation.name}
    order = [name for name in flow.topological_order() if name in upstream]
    ctes = []
    for name in order:
        select = _render_node(flow, flow.node(name), dialect)
        ctes.append(f"{sql_identifier(name)} AS (\n  {select}\n)")
    return "WITH " + ",\n".join(ctes)


def _scd_block(
    flow: EtlFlow, loader: Loader, operation: SCDUpdate, dialect: str
) -> str:
    """Render an SCD merge as its canonical in-place SQL.

    Unlike the engine (which re-emits the full post-merge contents for
    a replace-mode load), the SQL export mutates the target directly —
    type1 as update-in-place plus insert-of-new, type2 as close-old-row
    plus open-new-row — so the target is **not** truncated.
    """
    names = attribute_names(flow).get(flow.inputs(operation.name)[0])
    if names is None:
        raise DeploymentError(
            f"scd update {operation.name!r}: input attribute names are "
            f"statically unknown; cannot render as SQL"
        )
    keys = list(operation.business_keys)
    descriptors = sorted(names - set(keys))
    target = sql_identifier(loader.table)
    incoming = sql_identifier(flow.inputs(operation.name)[0])
    ctes = _scd_ctes(flow, operation, dialect)
    key_match = " AND ".join(
        f"i.{sql_identifier(key)} = {target}.{sql_identifier(key)}"
        for key in keys
    )
    if operation.policy == SCDType.TYPE1:
        sets = ",\n    ".join(
            f"{sql_identifier(name)} = (SELECT i.{sql_identifier(name)} "
            f"FROM {incoming} i WHERE {key_match})"
            for name in descriptors
        )
        update = (
            f"{ctes}\n"
            f"UPDATE {target} SET\n    {sets}\n"
            f"WHERE EXISTS (SELECT 1 FROM {incoming} i WHERE {key_match});"
        )
        insert_columns = ", ".join(
            sql_identifier(name) for name in keys + descriptors
        )
        select_columns = ", ".join(
            f"i.{sql_identifier(name)}" for name in keys + descriptors
        )
        key_match_d = " AND ".join(
            f"i.{sql_identifier(key)} = d.{sql_identifier(key)}"
            for key in keys
        )
        insert = (
            f"{ctes}\n"
            f"INSERT INTO {target} ({insert_columns})\n"
            f"SELECT {select_columns} FROM {incoming} i\n"
            f"WHERE NOT EXISTS (SELECT 1 FROM {target} d "
            f"WHERE {key_match_d});"
        )
        return "\n".join([update, insert])
    effective = sql_literal(operation.effective_date)
    changed = " OR ".join(
        f"NOT i.{sql_identifier(name)} = {target}.{sql_identifier(name)}"
        for name in descriptors
    ) or "FALSE"
    close = (
        f"{ctes}\n"
        f"UPDATE {target} SET\n"
        f"    {sql_identifier(SCD2_VALID_TO)} = {effective},\n"
        f"    {sql_identifier(SCD2_IS_CURRENT)} = FALSE\n"
        f"WHERE {sql_identifier(SCD2_IS_CURRENT)} = TRUE\n"
        f"  AND EXISTS (SELECT 1 FROM {incoming} i "
        f"WHERE {key_match} AND ({changed}));"
    )
    key_match_d = " AND ".join(
        f"i.{sql_identifier(key)} = d.{sql_identifier(key)}" for key in keys
    )
    same = " AND ".join(
        f"i.{sql_identifier(name)} = d.{sql_identifier(name)}"
        for name in descriptors
    ) or "TRUE"
    insert_columns = ", ".join(
        [sql_identifier(name) for name in keys + descriptors]
        + [
            sql_identifier(SCD2_VERSION),
            sql_identifier(SCD2_VALID_FROM),
            sql_identifier(SCD2_VALID_TO),
            sql_identifier(SCD2_IS_CURRENT),
        ]
    )
    select_columns = ", ".join(
        f"i.{sql_identifier(name)}" for name in keys + descriptors
    )
    open_new = (
        f"{ctes}\n"
        f"INSERT INTO {target} ({insert_columns})\n"
        f"SELECT {select_columns},\n"
        f"    COALESCE((SELECT MAX(d.{sql_identifier(SCD2_VERSION)}) "
        f"FROM {target} d WHERE {key_match_d}), 0) + 1,\n"
        f"    {effective}, NULL, TRUE\n"
        f"FROM {incoming} i\n"
        f"WHERE NOT EXISTS (SELECT 1 FROM {target} d\n"
        f"  WHERE {key_match_d} AND d.{sql_identifier(SCD2_IS_CURRENT)} = "
        f"TRUE AND {same});"
    )
    return "\n".join([close, open_new])


def _render_node(flow: EtlFlow, operation: Operation, dialect: str) -> str:
    inputs = [sql_identifier(name) for name in flow.inputs(operation.name)]
    if isinstance(operation, Datastore):
        columns = (
            ", ".join(sql_identifier(c) for c in operation.columns)
            if operation.columns
            else "*"
        )
        return f"SELECT {columns} FROM {sql_identifier(operation.table)}"
    if isinstance(operation, (Extraction, Projection)):
        columns = ", ".join(sql_identifier(c) for c in operation.columns)
        return f"SELECT {columns} FROM {inputs[0]}"
    if isinstance(operation, Selection):
        predicate = sql_expression(parse(operation.predicate), dialect)
        return f"SELECT * FROM {inputs[0]} WHERE {predicate}"
    if isinstance(operation, Join):
        return _render_join(flow, operation, inputs, dialect)
    if isinstance(operation, Aggregation):
        parts = [sql_identifier(c) for c in operation.group_by]
        for spec in operation.aggregates:
            function = "AVG" if spec.function == "AVERAGE" else spec.function
            parts.append(
                f"{function}({sql_identifier(spec.input)}) AS "
                f"{sql_identifier(spec.output)}"
            )
        select = f"SELECT {', '.join(parts)} FROM {inputs[0]}"
        if operation.group_by:
            group = ", ".join(sql_identifier(c) for c in operation.group_by)
            select += f" GROUP BY {group}"
        return select
    if isinstance(operation, DerivedAttribute):
        expression = sql_expression(parse(operation.expression), dialect)
        return (
            f"SELECT *, {expression} AS "
            f"{sql_identifier(operation.output)} FROM {inputs[0]}"
        )
    if isinstance(operation, Rename):
        raise DeploymentError(
            "Rename cannot be rendered without schema information; "
            "resolve renames before SQL export"
        )
    if isinstance(operation, Distinct):
        return f"SELECT DISTINCT * FROM {inputs[0]}"
    if isinstance(operation, SurrogateKey):
        keys = ", ".join(sql_identifier(c) for c in operation.business_keys)
        return (
            f"SELECT DENSE_RANK() OVER (ORDER BY {keys}) AS "
            f"{sql_identifier(operation.output)}, * FROM {inputs[0]}"
        )
    if isinstance(operation, Sort):
        keys = ", ".join(sql_identifier(c) for c in operation.keys)
        return f"SELECT * FROM {inputs[0]} ORDER BY {keys}"
    if isinstance(operation, UnionOp):
        return f"SELECT * FROM {inputs[0]} UNION ALL SELECT * FROM {inputs[1]}"
    raise DeploymentError(
        f"operation kind {operation.kind!r} has no SQL rendering"
    )


def _render_join(
    flow: EtlFlow, operation: Join, inputs: List[str], dialect: str
) -> str:
    join_word = "LEFT JOIN" if operation.join_type == "left" else "JOIN"
    same_named = all(
        left == right
        for left, right in zip(operation.left_keys, operation.right_keys)
    )
    if same_named:
        using = ", ".join(sql_identifier(c) for c in operation.left_keys)
        return (
            f"SELECT * FROM {inputs[0]} {join_word} {inputs[1]} "
            f"USING ({using})"
        )
    conditions = " AND ".join(
        f"{inputs[0]}.{sql_identifier(left)} = {inputs[1]}.{sql_identifier(right)}"
        for left, right in zip(operation.left_keys, operation.right_keys)
    )
    return f"SELECT * FROM {inputs[0]} {join_word} {inputs[1]} ON {conditions}"
