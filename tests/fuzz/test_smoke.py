"""Tier-1 differential fuzzing: a fixed-seed budget plus corpus replay.

The budget keeps the suite fast (<10s) while still driving every
operator through both engine modes on every run; the corpus replay
keeps each bug the fuzzer ever caught fixed.  A failure here prints the
seed — reproduce it interactively with
``python -m repro.fuzz --start <seed> --seeds 1``.
"""

from pathlib import Path

from repro.fuzz import corpus
from repro.fuzz.evolveoracle import build_evolve_trial
from repro.fuzz.flowgen import build_flow_trial
from repro.fuzz.querygen import build_query_trial
from repro.fuzz.runner import run
from repro.xformats import xlm

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Enough seeds to cover every operator kind and both outcome kinds
#: (results and error parity) while staying well under ten seconds.
SMOKE_SEEDS = 50


def test_fixed_seed_budget_finds_no_divergence():
    report = run(range(SMOKE_SEEDS), shrink=False)
    details = [
        f"seed {failure['seed']} [{failure['kind']}]: {failure['detail']}"
        for failure in report["failures"]
    ]
    assert not details, "\n".join(details)
    assert report["trials"] == 6 * SMOKE_SEEDS


def test_trials_are_deterministic():
    """The same seed must rebuild the identical trial anywhere —
    that is what makes a failure report reproducible."""
    first, second = build_flow_trial(7), build_flow_trial(7)
    assert xlm.dumps(first.flow) == xlm.dumps(second.flow)
    assert [table.rows for table in first.tables] == [
        table.rows for table in second.tables
    ]
    query_first, query_second = build_query_trial(7), build_query_trial(7)
    assert query_first.documents == query_second.documents
    assert query_first.query == query_second.query
    assert query_first.sort_key == query_second.sort_key
    assert query_first.limit == query_second.limit
    evolve_first, evolve_second = build_evolve_trial(7), build_evolve_trial(7)
    assert evolve_first.policies == evolve_second.policies
    assert evolve_first.script == evolve_second.script


def test_corpus_replays_clean():
    entries = corpus.load_corpus(CORPUS_DIR)
    assert entries, f"no corpus entries under {CORPUS_DIR}"
    failing = {}
    for path, entry in entries:
        detail = corpus.replay(entry)
        if detail is not None:
            failing[path.name] = detail
    assert not failing, failing


def test_corpus_round_trips_through_json():
    """decode(encode(trial)) must reproduce the trial exactly, or the
    corpus would silently pin a *different* regression."""
    for path, entry in corpus.load_corpus(CORPUS_DIR):
        trial = corpus.decode_entry(entry)
        again = corpus.encode_trial(trial, entry["description"])
        assert again["kind"] == entry["kind"], path.name
        for key in entry:
            if key == "seed":
                continue
            assert again.get(key) == entry[key], (path.name, key)
