"""The Design Evolution service: time as a first-class scenario.

Requirements change, but so does the *understanding of the domain*.
This service applies design-evolution operators — ``rename_concept``,
``split_concept``, ``merge_concepts``, ``retype_property`` — to a live
session: the domain ontology and source mappings are rewritten, every
requirement whose partial design touches the evolved elements is
re-interpreted against the new domain, and the unified design is
brought up to date **incrementally**: affected partials are swapped in
place (keeping their fold position) and the fold is re-run only from
the minimum affected checkpoint, never from scratch.

Every operator is transactional: if re-interpretation or re-folding
fails, ontology, mappings, SCD policies, partials and the bus event log
are restored, and the original exception propagates.

Each applied operator publishes two kinds of envelopes:

* one ``partial.replaced`` envelope per re-interpreted requirement on
  the ``partials`` topic (carrying the full xRQ/xMD/xLM payloads), so
  :meth:`~repro.core.services.session.DesignSession.replay_unified_design`
  reproduces the evolved design purely from the log,
* one typed ``design.evolved`` envelope on the ``evolution`` topic
  describing the operator, its parameters, the affected requirements
  and the fold position the re-integration restarted from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.interpreter import PartialDesign
from repro.core.services.bus import ArtifactBus
from repro.core.services.integration import IntegrationService
from repro.core.services.interpretation import InterpretationService
from repro.errors import EvolutionError
from repro.expressions.types import ScalarType
from repro.mdmodel.conformance import strongest_policy
from repro.mdmodel.model import SCDPolicy
from repro.ontology.model import (
    Concept,
    DatatypeProperty,
    Multiplicity,
    ObjectProperty,
    Ontology,
)
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema

TOPIC_EVOLUTION = "evolution"

KIND_EVOLVED = "design.evolved"


@dataclass
class EvolutionReport:
    """What one design-evolution operator did to the session."""

    operator: str
    detail: Dict[str, object] = field(default_factory=dict)
    #: Requirement ids whose partial designs were re-interpreted, in
    #: fold order.
    affected: List[str] = field(default_factory=list)
    #: Fold position the incremental re-integration restarted from
    #: (``None`` when no requirement was affected).
    refolded_from: Optional[int] = None


class EvolutionService:
    """Applies design-evolution operators to a live session."""

    name = "evolution"

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        interpretation: InterpretationService,
        integration: IntegrationService,
        bus: ArtifactBus,
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._interpretation = interpretation
        self._integration = integration
        self._bus = bus

    # -- operators ---------------------------------------------------------

    def rename_concept(self, old_id: str, new_id: str) -> EvolutionReport:
        """Rename a concept; dimensions named after it follow."""
        if not self._ontology.has_concept(old_id):
            raise EvolutionError(f"unknown concept {old_id!r}")
        if new_id != old_id and new_id in self._ontology:
            raise EvolutionError(
                f"cannot rename {old_id!r}: id {new_id!r} is taken"
            )

        def mutate() -> None:
            self._ontology.rename_concept(old_id, new_id)
            if self._mappings.has_concept_mapping(old_id):
                self._mappings.rename_concept(old_id, new_id)
            policies = self._interpretation.interpreter.scd_policies
            if old_id in policies:
                policies[new_id] = policies.pop(old_id)

        return self._apply(
            "rename_concept",
            {"from": old_id, "to": new_id},
            mutate,
            lambda partial: self._mentions_concept(partial, old_id),
        )

    def split_concept(
        self,
        concept: str,
        new_concept: str,
        properties: Sequence[str],
        relationship: Optional[str] = None,
    ) -> EvolutionReport:
        """Carve a new concept out of an existing one.

        The listed datatype properties move to ``new_concept``, which is
        bound to the *same* source table (a design-level split) and
        linked from ``concept`` by a new to-one relationship — so the
        moved attributes become a coarser dimension level (or their own
        dimension) without touching the sources.
        """
        if not self._ontology.has_concept(concept):
            raise EvolutionError(f"unknown concept {concept!r}")
        if new_concept in self._ontology:
            raise EvolutionError(
                f"cannot split {concept!r}: id {new_concept!r} is taken"
            )
        moved = list(properties)
        if not moved:
            raise EvolutionError("split_concept needs at least one property")
        for property_id in moved:
            if not self._ontology.has_datatype_property(property_id):
                raise EvolutionError(f"unknown property {property_id!r}")
            owner = self._ontology.datatype_property(property_id).concept
            if owner != concept:
                raise EvolutionError(
                    f"property {property_id!r} belongs to {owner!r}, "
                    f"not {concept!r}"
                )
        relationship_id = relationship or f"{concept}_has_{new_concept}"
        if relationship_id in self._ontology:
            raise EvolutionError(
                f"relationship id {relationship_id!r} is taken"
            )

        def mutate() -> None:
            self._ontology.add_concept(Concept(id=new_concept))
            for property_id in moved:
                self._ontology.move_datatype_property(property_id, new_concept)
            self._ontology.add_object_property(
                ObjectProperty(
                    id=relationship_id,
                    domain=concept,
                    range=new_concept,
                    multiplicity=Multiplicity.MANY_TO_ONE,
                )
            )
            if self._mappings.has_concept_mapping(concept):
                binding = self._mappings.concept_mapping(concept)
                self._mappings.map_concept(
                    new_concept, binding.table, binding.key_columns
                )

        return self._apply(
            "split_concept",
            {
                "concept": concept,
                "new_concept": new_concept,
                "properties": moved,
                "relationship": relationship_id,
            },
            mutate,
            lambda partial: (
                self._mentions_concept(partial, concept)
                or self._references_any(partial, moved)
            ),
        )

    def merge_concepts(self, source: str, target: str) -> EvolutionReport:
        """Fold ``source`` into ``target`` (the inverse of a split).

        Allowed only when both concepts are realised by the same source
        table; ``source``'s datatype properties move to ``target``,
        relationships are redirected (collapsed self-loops dropped) and
        ``source`` disappears.  A history-keeping SCD policy on either
        side survives on the merged concept.
        """
        for concept in (source, target):
            if not self._ontology.has_concept(concept):
                raise EvolutionError(f"unknown concept {concept!r}")
        if source == target:
            raise EvolutionError("cannot merge a concept into itself")
        if self._mappings.has_concept_mapping(
            source
        ) and self._mappings.has_concept_mapping(target):
            source_table = self._mappings.table_of(source)
            target_table = self._mappings.table_of(target)
            if source_table != target_table:
                raise EvolutionError(
                    f"cannot merge {source!r} (table {source_table!r}) into "
                    f"{target!r} (table {target_table!r}): the concepts are "
                    f"realised by different tables"
                )

        def mutate() -> None:
            ontology = self._ontology
            for prop in list(ontology.datatype_properties(source)):
                ontology.move_datatype_property(prop.id, target)
            for prop in list(ontology.object_properties()):
                if prop.domain != source and prop.range != source:
                    continue
                domain = target if prop.domain == source else prop.domain
                range_ = target if prop.range == source else prop.range
                if domain == range_:
                    ontology.remove_object_property(prop.id)
                else:
                    ontology.replace_object_property(
                        ObjectProperty(
                            id=prop.id,
                            domain=domain,
                            range=range_,
                            multiplicity=prop.multiplicity,
                            label=prop.label,
                            description=prop.description,
                        )
                    )
            for concept in list(ontology.concepts()):
                if concept.parent == source:
                    ontology.replace_concept(
                        Concept(
                            id=concept.id,
                            label=concept.label,
                            parent=target,
                            description=concept.description,
                        )
                    )
            if self._mappings.has_concept_mapping(source):
                self._mappings.unmap_concept(source)
            ontology.remove_concept(source)
            policies = self._interpretation.interpreter.scd_policies
            if source in policies:
                merged = strongest_policy(
                    policies.pop(source),
                    policies.get(target, SCDPolicy.TYPE0),
                )
                if merged is not SCDPolicy.TYPE0:
                    policies[target] = merged

        return self._apply(
            "merge_concepts",
            {"source": source, "target": target},
            mutate,
            lambda partial: (
                self._mentions_concept(partial, source)
                or self._mentions_concept(partial, target)
            ),
        )

    def retype_property(
        self, property_id: str, new_type: object
    ) -> EvolutionReport:
        """Change a datatype property's range type."""
        if not self._ontology.has_datatype_property(property_id):
            raise EvolutionError(f"unknown property {property_id!r}")
        scalar = (
            new_type
            if isinstance(new_type, ScalarType)
            else ScalarType(str(new_type))
        )
        old = self._ontology.datatype_property(property_id)

        def mutate() -> None:
            self._ontology.replace_datatype_property(
                DatatypeProperty(
                    id=old.id,
                    concept=old.concept,
                    range=scalar,
                    label=old.label,
                    description=old.description,
                )
            )

        return self._apply(
            "retype_property",
            {
                "property": property_id,
                "from": old.range.value,
                "to": scalar.value,
            },
            mutate,
            lambda partial: self._references_any(partial, [property_id]),
        )

    # -- the shared transactional skeleton ---------------------------------

    def _apply(
        self,
        operator: str,
        detail: Dict[str, object],
        mutate: Callable[[], None],
        is_affected: Callable[[PartialDesign], bool],
    ) -> EvolutionReport:
        policies = self._interpretation.interpreter.scd_policies
        snapshot = (
            self._ontology.snapshot(),
            self._mappings.snapshot(),
            dict(policies),
        )
        order = self._integration.order()
        affected = [
            requirement_id
            for requirement_id in order
            if is_affected(self._integration.partial_design(requirement_id))
        ]
        old_partials = {
            requirement_id: self._integration.partial_design(requirement_id)
            for requirement_id in affected
        }
        try:
            mutate()
            fresh = {
                requirement_id: self._interpretation.reinterpret(
                    old_partials[requirement_id].requirement
                )
                for requirement_id in affected
            }
        except Exception:
            self._restore(snapshot)
            raise
        start = min(
            (order.index(requirement_id) for requirement_id in affected),
            default=None,
        )
        marker = self._bus.marker()
        try:
            for requirement_id in affected:
                self._interpretation.publish_replacement(fresh[requirement_id])
                self._integration.replace_partial(
                    requirement_id, fresh[requirement_id]
                )
            if start is not None:
                self._integration.reintegrate_from(start)
            self._bus.publish(
                TOPIC_EVOLUTION,
                KIND_EVOLVED,
                payload={
                    "operator": operator,
                    "detail": dict(detail),
                    "affected": list(affected),
                    "refolded_from": start,
                },
                producer=self.name,
            )
        except Exception:
            self._bus.rollback(marker)
            self._restore(snapshot)
            for requirement_id, partial in old_partials.items():
                self._integration.replace_partial(requirement_id, partial)
            if start is not None:
                self._integration.reintegrate_from(start)
            raise
        return EvolutionReport(
            operator=operator,
            detail=dict(detail),
            affected=list(affected),
            refolded_from=start,
        )

    def _restore(self, snapshot) -> None:
        ontology_snapshot, mappings_snapshot, policy_snapshot = snapshot
        self._ontology.restore(ontology_snapshot)
        self._mappings.restore(mappings_snapshot)
        policies = self._interpretation.interpreter.scd_policies
        policies.clear()
        policies.update(policy_snapshot)

    # -- affectedness ------------------------------------------------------

    @staticmethod
    def _mentions_concept(partial: PartialDesign, concept: str) -> bool:
        """Whether a partial design depends on an ontology concept."""
        md_schema = partial.md_schema
        if any(fact.concept == concept for fact in md_schema.facts.values()):
            return True
        return any(
            level.concept == concept
            for __, level in md_schema.iter_levels()
        )

    @staticmethod
    def _references_any(
        partial: PartialDesign, property_ids: Sequence[str]
    ) -> bool:
        """Whether a partial uses any of the properties (requirement
        text or level-attribute provenance)."""
        wanted = set(property_ids)
        if wanted & set(partial.requirement.referenced_properties()):
            return True
        return any(
            attribute.property in wanted
            for __, level in partial.md_schema.iter_levels()
            for attribute in level.attributes
        )
