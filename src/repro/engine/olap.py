"""OLAP queries over a deployed star schema.

After deployment the demo's users "tune and use" the warehouse; this
module is the *use* part: slice/dice/roll-up queries over the fact and
dimension tables the Design Deployer created in the embedded database.
Each query also renders itself as SQL (:meth:`OlapQuery.to_sql`), which
is what would be shipped to PostgreSQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.sqlgen import select_statement
from repro.expressions import evaluate, parse
from repro.expressions.ast import Expression


@dataclass
class OlapQuery:
    """A star query: aggregate measures grouped by dimension attributes.

    ``joins`` lists the dimension tables to bring in as
    ``(dimension_table, fact_fk_column, dimension_key_column)``.
    """

    fact_table: str
    group_by: List[str] = field(default_factory=list)
    aggregates: List[Tuple[str, str, str]] = field(default_factory=list)
    slicer: Optional[str] = None
    joins: List[Tuple[str, str, str]] = field(default_factory=list)

    def to_sql(self, dialect: str = "postgres") -> str:
        """Render the (denormalised) SQL SELECT for this query."""
        where: Optional[Expression] = (
            parse(self.slicer) if self.slicer is not None else None
        )
        return select_statement(
            table=self.fact_table,
            columns=self.group_by,
            aggregates=self.aggregates,
            where=where,
            group_by=self.group_by,
            order_by=self.group_by,
            dialect=dialect,
        )


def query_star(database: Database, query: OlapQuery) -> Relation:
    """Execute an OLAP query against the embedded database.

    Joins each listed dimension into the fact rows, applies the slicer,
    groups and aggregates.  Deterministic output order (group-by key).
    """
    from repro.engine.executor import _aggregate_values

    fact = database.scan(query.fact_table)
    schema = dict(fact.schema)
    rows = [dict(row) for row in fact.rows]
    for dimension_table, fact_column, dimension_key in query.joins:
        dimension = database.scan(dimension_table)
        if fact_column not in schema:
            raise EngineError(
                f"fact table {query.fact_table!r} has no column "
                f"{fact_column!r}"
            )
        index = {}
        for dimension_row in dimension.rows:
            index[dimension_row[dimension_key]] = dimension_row
        for name, scalar_type in dimension.schema.items():
            if name not in schema:
                schema[name] = scalar_type
        joined = []
        for row in rows:
            match = index.get(row[fact_column])
            if match is None:
                continue
            combined = dict(row)
            for name in dimension.schema:
                if name not in combined:
                    combined[name] = match[name]
            joined.append(combined)
        rows = joined

    if query.slicer is not None:
        predicate = parse(query.slicer)
        rows = [row for row in rows if evaluate(predicate, row) is True]

    for column in query.group_by:
        if column not in schema:
            raise EngineError(f"unknown group-by column {column!r}")

    groups: Dict[tuple, list] = {}
    if not query.group_by:
        groups[()] = []
    for row in rows:
        key = tuple(row[column] for column in query.group_by)
        groups.setdefault(key, []).append(row)

    result_schema = {column: schema[column] for column in query.group_by}
    output_rows = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        members = groups[key]
        out = dict(zip(query.group_by, key))
        for function, input_column, alias in query.aggregates:
            if members and input_column not in members[0]:
                raise EngineError(f"unknown measure column {input_column!r}")
            values = [
                member[input_column]
                for member in members
                if member[input_column] is not None
            ]
            out[alias] = _aggregate_values(function, values)
        output_rows.append(out)
    for function, input_column, alias in query.aggregates:
        if function == "COUNT":
            from repro.expressions.types import ScalarType

            result_schema[alias] = ScalarType.INTEGER
        else:
            result_schema[alias] = schema.get(input_column)
    # Fill untyped aggregate slots conservatively.
    from repro.expressions.types import ScalarType as _ST

    for name, value in list(result_schema.items()):
        if value is None:
            result_schema[name] = _ST.DECIMAL
    return Relation(schema=result_schema, rows=output_rows)
