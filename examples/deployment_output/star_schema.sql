CREATE DATABASE demo;

CREATE TABLE "dim_Part" (
  p_name VARCHAR(255),
  p_brand VARCHAR(255)
);

CREATE TABLE "dim_Supplier" (
  s_name VARCHAR(255),
  n_name VARCHAR(255),
  r_name VARCHAR(255)
);

CREATE TABLE fact_table_revenue (
  p_name VARCHAR(255),
  s_name VARCHAR(255),
  revenue double precision,
  PRIMARY KEY( p_name, s_name )
);

CREATE TABLE fact_table_netprofit (
  p_brand VARCHAR(255),
  netprofit double precision,
  PRIMARY KEY( p_brand )
);
