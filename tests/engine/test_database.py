"""Unit tests for the embedded database."""

import pytest

from repro.errors import EngineError, IntegrityError, UnknownTableError
from repro.engine import Database, TableDef
from repro.engine.database import ForeignKeyDef
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING


@pytest.fixture
def db():
    database = Database("test")
    database.create_table(
        TableDef("dept", {"dept_id": INT, "dept_name": STR}, primary_key=("dept_id",))
    )
    database.create_table(
        TableDef(
            "emp",
            {"emp_id": INT, "name": STR, "dept_id": INT},
            primary_key=("emp_id",),
            foreign_keys=(ForeignKeyDef(("dept_id",), "dept"),),
        )
    )
    database.insert("dept", {"dept_id": 1, "dept_name": "R&D"})
    return database


class TestDDL:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(EngineError):
            db.create_table(TableDef("dept", {"x": INT}))

    def test_if_not_exists_is_silent(self, db):
        db.create_table(TableDef("dept", {"x": INT}), if_not_exists=True)
        assert "dept_name" in db.table_def("dept").columns

    def test_fk_target_must_exist(self, db):
        with pytest.raises(EngineError):
            db.create_table(
                TableDef(
                    "bad",
                    {"x": INT},
                    foreign_keys=(ForeignKeyDef(("x",), "ghost"),),
                )
            )

    def test_pk_column_must_exist(self):
        with pytest.raises(EngineError):
            TableDef("t", {"a": INT}, primary_key=("ghost",))

    def test_fk_column_must_exist(self):
        with pytest.raises(EngineError):
            TableDef(
                "t", {"a": INT}, foreign_keys=(ForeignKeyDef(("ghost",), "x"),)
            )

    def test_drop_table(self, db):
        db.drop_table("emp")
        assert not db.has_table("emp")

    def test_drop_referenced_table_rejected(self, db):
        with pytest.raises(EngineError):
            db.drop_table("dept")

    def test_drop_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.drop_table("ghost")


class TestIntegrity:
    def test_insert_and_scan(self, db):
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept_id": 1})
        assert db.row_count("emp") == 1
        assert db.scan("emp").rows[0]["name"] == "ann"

    def test_duplicate_pk_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("dept", {"dept_id": 1, "dept_name": "dup"})

    def test_null_pk_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("dept", {"dept_id": None, "dept_name": "x"})

    def test_dangling_fk_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("emp", {"emp_id": 1, "name": "ann", "dept_id": 99})

    def test_null_fk_allowed(self, db):
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept_id": None})

    def test_composite_pk(self):
        database = Database()
        database.create_table(
            TableDef("t", {"a": INT, "b": INT}, primary_key=("a", "b"))
        )
        database.insert("t", {"a": 1, "b": 1})
        database.insert("t", {"a": 1, "b": 2})
        with pytest.raises(IntegrityError):
            database.insert("t", {"a": 1, "b": 1})

    def test_insert_many_counts(self, db):
        count = db.insert_many(
            "emp",
            [
                {"emp_id": 1, "name": "a", "dept_id": 1},
                {"emp_id": 2, "name": "b", "dept_id": 1},
            ],
        )
        assert count == 2

    def test_truncate_resets_pk_index(self, db):
        db.insert("emp", {"emp_id": 1, "name": "a", "dept_id": 1})
        db.truncate("emp")
        assert db.row_count("emp") == 0
        db.insert("emp", {"emp_id": 1, "name": "a", "dept_id": 1})


class TestSourceLoading:
    def test_load_tpch(self, tpch_db):
        assert set(tpch_db.table_names()) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }
        counts = tpch_db.row_counts()
        assert counts["region"] == 5
        assert counts["lineitem"] > counts["orders"] >= 1

    def test_load_respects_fk_order(self):
        # load_source must insert parents before children even though
        # the generator returns tables in declaration order.
        from repro.sources import retail

        database = Database()
        inserted = database.load_source(retail.schema(), retail.generate(0.2))
        assert inserted["ticket_line"] > 0
