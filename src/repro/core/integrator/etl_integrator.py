"""The ETL Process Integrator.

"ETL Process Integrator, for each new requirement maximizes the reuse by
looking for the largest overlapping of data and operations in the
existing ETL process.  To boost the reuse of the existing data flow
elements [...], ETL Process Integrator aligns the order of ETL
operations by applying generic equivalence rules.  ETL Process
Integrator also accounts for the cost of produced ETL flows [...] by
applying configurable cost models" (§2.3).

Consolidation walks the incoming partial flow in topological order and
unifies each operation with an existing one when they compute the same
thing over the same (already unified) inputs:

* most operations unify on their semantic :meth:`signature`,
* Extractions (and dim-branch Projections) unify *structurally* — same
  unified input — and are **widened** to the union of the column sets,
  so two requirements reading different columns of ``part`` share one
  scan,
* Loaders unify on target table; if their upstreams did not unify the
  designs disagree about the table's content and an
  :class:`IntegrationError` is raised.

With ``align=True`` both flows are first rewritten into the equivalence
normal form (selections pushed down, merged, canonicalised), so flows
that apply the same operations in different orders still overlap — the
A1 ablation benchmark measures exactly this effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import IntegrationError
from repro.etlmodel.cost import CostModel
from repro.etlmodel.equivalence import normalize
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import Extraction, Loader, Operation, Projection


@dataclass
class EtlConsolidation:
    """Result of consolidating one partial flow."""

    flow: EtlFlow
    reused: List[str] = field(default_factory=list)  # unified node names
    added: List[str] = field(default_factory=list)
    widened: List[str] = field(default_factory=list)
    mapping: Dict[str, str] = field(default_factory=dict)
    cost_unified: float = 0.0
    cost_separate: float = 0.0

    @property
    def reuse_ratio(self) -> float:
        """Share of incoming operations served by existing ones."""
        total = len(self.reused) + len(self.added)
        return len(self.reused) / total if total else 1.0

    @property
    def cost_saving(self) -> float:
        """Estimated cost saved versus running the flows separately."""
        return self.cost_separate - self.cost_unified


class EtlIntegrator:
    """Consolidates partial ETL flows into a unified flow."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        align: bool = True,
    ) -> None:
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._align = align

    def consolidate(
        self,
        unified: EtlFlow,
        partial: EtlFlow,
        row_counts: Optional[Dict[str, int]] = None,
    ) -> EtlConsolidation:
        """Absorb ``partial`` into a copy of ``unified``.

        Inputs are not mutated.  ``row_counts`` feed the cost model for
        the unified-versus-separate estimate in the report.
        """
        base = normalize(unified) if self._align else unified.copy()
        base.name = unified.name
        incoming = normalize(partial) if self._align else partial.copy()
        result = EtlConsolidation(flow=base)

        index = self._build_index(base)
        loaders_by_table = self._build_loader_map(base)
        for name in incoming.topological_order():
            operation = incoming.node(name)
            mapped_inputs = tuple(
                result.mapping[source] for source in incoming.inputs(name)
            )
            key = (_match_signature(operation), mapped_inputs)
            existing = index.get(key)
            if existing is not None:
                self._unify(base, existing, operation, result)
                result.mapping[name] = existing
                result.reused.append(existing)
                continue
            if isinstance(operation, Loader):
                resolved = self._resolve_loader_conflict(
                    base, operation, mapped_inputs, result, index,
                    loaders_by_table,
                )
                if resolved is not None:
                    result.mapping[name] = resolved
                    result.reused.append(resolved)
                    continue
            new_name = _fresh_name(operation.name, base)
            base.add(operation.rename(new_name))
            for source in mapped_inputs:
                base.connect(source, new_name)
            index[key] = new_name
            if isinstance(operation, Loader):
                loaders_by_table.setdefault(operation.table, new_name)
            result.mapping[name] = new_name
            result.added.append(new_name)
        base.requirements |= partial.requirements

        result.cost_unified = self._cost_model.total(base, row_counts)
        result.cost_separate = self._cost_model.total(
            unified, row_counts
        ) + self._cost_model.total(partial, row_counts)
        return result

    # -- matching ------------------------------------------------------------

    def _build_index(self, flow: EtlFlow) -> Dict[Tuple, str]:
        index: Dict[Tuple, str] = {}
        for name in flow.topological_order():
            operation = flow.node(name)
            key = (_match_signature(operation), tuple(flow.inputs(name)))
            index.setdefault(key, name)
        return index

    def _build_loader_map(self, flow: EtlFlow) -> Dict[str, str]:
        """Target table -> first loader name, for conflict lookups."""
        loaders: Dict[str, str] = {}
        for name in flow.node_names():
            operation = flow.node(name)
            if isinstance(operation, Loader):
                loaders.setdefault(operation.table, name)
        return loaders

    def _unify(
        self,
        base: EtlFlow,
        existing_name: str,
        incoming: Operation,
        result: EtlConsolidation,
    ) -> None:
        """Reuse an existing node, widening column sets where needed."""
        from repro.etlmodel.ops import Datastore

        existing = base.node(existing_name)
        if isinstance(existing, Datastore) and isinstance(incoming, Datastore):
            if existing.columns and incoming.columns:
                widened = _union_columns(existing.columns, incoming.columns)
                if widened != existing.columns:
                    base.replace_node(
                        existing_name,
                        Datastore(
                            existing_name,
                            table=existing.table,
                            columns=widened,
                        ),
                    )
                    result.widened.append(existing_name)
            elif incoming.columns and not existing.columns:
                pass  # existing already scans every column
            elif existing.columns and not incoming.columns:
                base.replace_node(
                    existing_name,
                    Datastore(existing_name, table=existing.table),
                )
                result.widened.append(existing_name)
        if isinstance(existing, Extraction) and isinstance(incoming, Extraction):
            widened = _union_columns(existing.columns, incoming.columns)
            if widened != existing.columns:
                base.replace_node(
                    existing_name,
                    Extraction(existing_name, columns=widened),
                )
                result.widened.append(existing_name)
        if isinstance(existing, Projection) and isinstance(incoming, Projection):
            widened = _union_columns(existing.columns, incoming.columns)
            if widened != existing.columns:
                base.replace_node(
                    existing_name,
                    Projection(existing_name, columns=widened),
                )
                result.widened.append(existing_name)

    def _resolve_loader_conflict(
        self,
        base: EtlFlow,
        incoming: Loader,
        mapped_inputs: Tuple[str, ...],
        result: EtlConsolidation,
        index: Dict[Tuple, str],
        loaders_by_table: Dict[str, str],
    ) -> Optional[str]:
        """Handle an incoming loader whose table is already loaded.

        Returns the name of the base loader to reuse after a successful
        *measure merge*, ``None`` when there is no conflict, and raises
        :class:`IntegrationError` when the designs truly disagree.

        The measure merge covers the MD integrator's fact merge: two
        requirements at the same granularity aggregate the same upstream
        rows with different aggregate outputs.  Their Aggregations are
        fused into one (union of aggregate specs) and the existing
        loader serves both.
        """
        existing_loader = loaders_by_table.get(incoming.table)
        if existing_loader is None:
            return None
        base_input = base.inputs(existing_loader)[0]
        incoming_input = mapped_inputs[0]
        merged = self._merge_aggregations(base, base_input, incoming_input)
        if not merged:
            raise IntegrationError(
                f"loader conflict: table {incoming.table!r} is already "
                f"loaded by {existing_loader!r} from a different upstream; "
                f"the partial designs disagree about its content"
            )
        # The incoming aggregation node (added earlier this pass) is now
        # redundant: re-point its mapping entries and drop it.
        if incoming_input != base_input and not base.outputs(incoming_input):
            for key, value in list(result.mapping.items()):
                if value == incoming_input:
                    result.mapping[key] = base_input
            if incoming_input in result.added:
                result.added.remove(incoming_input)
            for key in [k for k, v in index.items() if v == incoming_input]:
                index[key] = base_input
            base.remove_node(incoming_input)
        return existing_loader

    def _merge_aggregations(
        self, base: EtlFlow, base_name: str, incoming_name: str
    ) -> bool:
        """Fuse two same-granularity aggregations into one.

        Covers two cases:

        * same input node — union the aggregate specs directly,
        * the incoming aggregation hangs off its own chain of
          DerivedAttribute nodes that forks from the base aggregation's
          upstream — the incoming derives are spliced in front of the
          base aggregation (derives only add columns, so stacking them
          is order-independent), then the specs are unioned.
        """
        from repro.etlmodel.ops import Aggregation, DerivedAttribute

        if base_name == incoming_name:
            return True
        base_agg = base.node(base_name)
        incoming_agg = base.node(incoming_name)
        if not isinstance(base_agg, Aggregation) or not isinstance(
            incoming_agg, Aggregation
        ):
            return False
        if sorted(base_agg.group_by) != sorted(incoming_agg.group_by):
            return False
        if base.inputs(base_name) != base.inputs(incoming_name):
            if not self._splice_incoming_derives(base, base_name, incoming_name):
                return False
        self._union_aggregate_specs(base, base_name, incoming_agg)
        return True

    def _splice_incoming_derives(
        self, base: EtlFlow, base_name: str, incoming_name: str
    ) -> bool:
        """Move the incoming agg's derive-only chain before the base agg."""
        from repro.etlmodel.ops import DerivedAttribute

        base_chain_set = {base.inputs(base_name)[0]}
        cursor = base.inputs(base_name)[0]
        base_outputs = set()
        while isinstance(base.node(cursor), DerivedAttribute):
            base_outputs.add(base.node(cursor).output)
            cursor = base.inputs(cursor)[0]
            base_chain_set.add(cursor)
        incoming_chain = []
        cursor = base.inputs(incoming_name)[0]
        while cursor not in base_chain_set:
            operation = base.node(cursor)
            is_spliceable = (
                isinstance(operation, DerivedAttribute)
                and len(base.inputs(cursor)) == 1
                and base.outputs(cursor) == [
                    incoming_chain[-1] if incoming_chain else incoming_name
                ]
            )
            if not is_spliceable:
                return False
            if operation.output in base_outputs:
                return False  # same column, different derivation
            incoming_chain.append(cursor)
            cursor = base.inputs(cursor)[0]
        fork_point = cursor
        if not incoming_chain:
            return False
        head = incoming_chain[-1]  # attached to the fork point
        tail = incoming_chain[0]  # feeds the incoming aggregation
        bottom = base.inputs(base_name)[0]
        base.disconnect(fork_point, head)
        base.disconnect(tail, incoming_name)
        base.disconnect(bottom, base_name)
        base.connect(bottom, head)
        base.connect(tail, base_name)
        return True

    def _union_aggregate_specs(self, base, base_name, incoming_agg) -> None:
        from repro.etlmodel.ops import Aggregation

        base_agg = base.node(base_name)
        specs = {spec.output: spec for spec in base_agg.aggregates}
        for spec in incoming_agg.aggregates:
            existing = specs.get(spec.output)
            if existing is not None and existing != spec:
                raise IntegrationError(
                    f"aggregate output {spec.output!r} computed differently "
                    f"by two designs loading the same table"
                )
            specs[spec.output] = spec
        base.replace_node(
            base_name,
            Aggregation(
                base_name,
                group_by=base_agg.group_by,
                aggregates=tuple(specs.values()),
            ),
        )


def _match_signature(operation: Operation) -> Tuple:
    """The unification key part contributed by the operation itself.

    Extractions and Projections unify structurally (their column sets
    are widened on merge); the Datastore they hang off — included via
    the mapped-inputs part of the key — keeps different tables apart.
    """
    if isinstance(operation, Extraction):
        return ("extraction",)
    if isinstance(operation, Projection):
        return ("projection",)
    return operation.signature()


def _union_columns(first: Tuple[str, ...], second: Tuple[str, ...]) -> Tuple[str, ...]:
    merged = list(first)
    for column in second:
        if column not in merged:
            merged.append(column)
    return tuple(sorted(merged))


def _fresh_name(name: str, flow: EtlFlow) -> str:
    if not flow.has_node(name):
        return name
    suffix = 2
    while flow.has_node(f"{name}_{suffix}"):
        suffix += 1
    return f"{name}_{suffix}"
