"""The Requirements Interpretation service.

Consumes xRQ envelopes from the ``requirements`` topic and publishes
one partial design (xMD + xLM) envelope per requirement on the
``partials`` topic.  Two intake kinds:

* ``requirement.added`` — run the interpreter (mapper -> MD generation
  -> ETL generation, §2.2),
* ``requirement.external`` — a design built by an external tool rides
  along in the envelope; re-validate the §2.2 assumptions (sound MD
  schema, valid typed flow that claims the requirement and carries its
  measures) instead of generating.
"""

from __future__ import annotations

from repro.core.interpreter import Interpreter, PartialDesign
from repro.core.requirements.model import InformationRequirement
from repro.core.services.bus import ArtifactBus
from repro.core.services.envelope import ArtifactEnvelope
from repro.errors import QuarryError
from repro.ontology.model import Ontology
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema
from repro.xformats import xlm, xmd, xrq
from repro.xformats.xmljson import json_to_xml, xml_to_json

from repro.core.services import elicitation as _elicitation

TOPIC_PARTIALS = "partials"

KIND_CREATED = "partial.created"
#: Published by the integration service when a requirement is retired;
#: defined here so the topic's vocabulary lives in one place.
KIND_REMOVED = "partial.removed"
#: Published by the evolution service when a design-evolution operator
#: re-interprets a requirement: the partial is swapped *in place* (the
#: fold position is kept), unlike created, which appends to the fold.
KIND_REPLACED = "partial.replaced"


class InterpretationService:
    """Translates requirement envelopes into partial-design envelopes."""

    name = "interpretation"

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        bus: ArtifactBus,
        complement: bool = True,
        scd_policies=None,
        scd_effective_date: str = "1970-01-01",
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._interpreter = Interpreter(
            ontology,
            schema,
            mappings,
            complement=complement,
            scd_policies=scd_policies,
            scd_effective_date=scd_effective_date,
        )
        self._bus = bus
        bus.subscribe(
            _elicitation.TOPIC_REQUIREMENTS, self._on_requirement
        )

    @property
    def interpreter(self) -> Interpreter:
        return self._interpreter

    # -- intake ------------------------------------------------------------

    def _on_requirement(self, envelope: ArtifactEnvelope) -> None:
        if envelope.kind == _elicitation.KIND_ADDED:
            partial = self._interpret(envelope)
        elif envelope.kind == _elicitation.KIND_EXTERNAL:
            partial = self._validate_external(envelope)
        else:  # unknown kinds are not for this service
            return
        self._bus.publish(
            TOPIC_PARTIALS,
            KIND_CREATED,
            payload={
                "requirement": partial.requirement.id,
                "xrq": xml_to_json(xrq.dumps(partial.requirement)),
                "xmd": xml_to_json(xmd.dumps(partial.md_schema)),
                "xlm": xml_to_json(xlm.dumps(partial.etl_flow)),
            },
            producer=self.name,
            attachment=partial,
        )

    def _requirement_of(
        self, envelope: ArtifactEnvelope
    ) -> InformationRequirement:
        if envelope.attachment is not None:
            attached = envelope.attachment
            return attached[0] if isinstance(attached, tuple) else attached
        return xrq.loads(json_to_xml(envelope.payload["xrq"]))

    def _interpret(self, envelope: ArtifactEnvelope) -> PartialDesign:
        return self._interpreter.interpret(self._requirement_of(envelope))

    def _validate_external(self, envelope: ArtifactEnvelope) -> PartialDesign:
        """Re-check the §2.2 soundness assumptions on an external design."""
        from repro.etlmodel.propagation import propagate
        from repro.mdmodel import constraints

        if envelope.attachment is not None:
            requirement, md_schema, etl_flow = envelope.attachment
        else:
            requirement = xrq.loads(json_to_xml(envelope.payload["xrq"]))
            md_schema = xmd.loads(json_to_xml(envelope.payload["xmd"]))
            etl_flow = xlm.loads(json_to_xml(envelope.payload["xlm"]))
        requirement.check(self._ontology)
        constraints.check(md_schema)
        etl_flow.check()
        propagate(etl_flow, self._schema)
        if requirement.id not in etl_flow.requirements:
            raise QuarryError(
                f"external flow does not claim requirement {requirement.id!r}"
            )
        for measure in requirement.measures:
            carried = any(
                measure.name in fact.measures
                for fact in md_schema.facts.values()
            )
            if not carried:
                raise QuarryError(
                    f"external MD schema has no measure {measure.name!r}; "
                    f"it does not satisfy requirement {requirement.id!r}"
                )
        return PartialDesign(
            requirement=requirement,
            mapping=None,
            md_schema=md_schema,
            etl_flow=etl_flow,
        )

    # -- evolution support -------------------------------------------------

    def reinterpret(self, requirement: InformationRequirement) -> PartialDesign:
        """Interpret a requirement against the *current* (evolved) domain."""
        return self._interpreter.interpret(requirement)

    def publish_replacement(self, partial: PartialDesign) -> None:
        """Announce an in-place partial swap (design evolution) on the bus."""
        self._bus.publish(
            TOPIC_PARTIALS,
            KIND_REPLACED,
            payload={
                "requirement": partial.requirement.id,
                "xrq": xml_to_json(xrq.dumps(partial.requirement)),
                "xmd": xml_to_json(xmd.dumps(partial.md_schema)),
                "xlm": xml_to_json(xlm.dumps(partial.etl_flow)),
            },
            producer=self.name,
            attachment=partial,
        )

    # -- replay support ----------------------------------------------------

    @staticmethod
    def decode_partial(envelope: ArtifactEnvelope):
        """(md_schema, etl_flow) rebuilt purely from a logged envelope."""
        document = envelope.payload
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
        )
