"""``python -m repro.fuzz`` — run the differential fuzzer."""

import sys

from repro.fuzz.runner import main

sys.exit(main())
