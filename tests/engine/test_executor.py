"""Unit and integration tests for the ETL flow executor."""

import pytest

from repro.errors import ExecutionError
from repro.engine import Database, Executor, TableDef
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Join,
    Loader,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.etlmodel.equivalence import normalize
from repro.expressions import ScalarType

from tests.etlmodel.conftest import build_revenue_flow

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


def tiny_db():
    database = Database()
    database.create_table(
        TableDef("items", {"k": INT, "cat": STR, "price": DEC})
    )
    database.insert_many(
        "items",
        [
            {"k": 1, "cat": "a", "price": 10.0},
            {"k": 2, "cat": "a", "price": 20.0},
            {"k": 3, "cat": "b", "price": 5.0},
            {"k": 4, "cat": None, "price": None},
        ],
    )
    database.create_table(TableDef("cats", {"cat": STR, "label": STR}))
    database.insert_many(
        "cats",
        [{"cat": "a", "label": "Alpha"}, {"cat": "b", "label": "Beta"}],
    )
    return database


def run(flow, database=None, keep=True):
    database = database or tiny_db()
    executor = Executor(database)
    stats = executor.execute(flow, keep_intermediate=keep)
    return executor, stats, database


class TestUnaryOperators:
    def test_datastore_scan_and_projection(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("k", "price")),
            Loader("load", table="out"),
        )
        executor, stats, db = run(flow)
        assert db.scan("out").attribute_names() == ["k", "price"]
        assert db.row_count("out") == 4

    def test_selection_filters_nulls_out(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Selection("sel", predicate="price > 6"),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        # NULL price row does not pass (three-valued logic).
        assert {row["k"] for row in db.scan("out").rows} == {1, 2}

    def test_derive_computes_expression(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            DerivedAttribute("derive", output="vat", expression="price * 0.21"),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        by_key = {row["k"]: row for row in db.scan("out").rows}
        assert by_key[1]["vat"] == pytest.approx(2.1)
        assert by_key[4]["vat"] is None

    def test_rename(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("k",)),
            Rename("ren", renaming=(("k", "item_key"),)),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        assert db.scan("out").attribute_names() == ["item_key"]

    def test_sort(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("k", "price")),
            Sort("sort", keys=("price",)),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        prices = [row["price"] for row in db.scan("out").rows]
        assert prices == [None, 5.0, 10.0, 20.0]

    def test_surrogate_key_dense_and_stable(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("cat",)),
            SurrogateKey("sk", output="cat_id", business_keys=("cat",)),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        rows = db.scan("out").rows
        ids = {row["cat"]: row["cat_id"] for row in rows}
        assert ids["a"] == 1 and ids["b"] == 2
        # All rows with the same business key share the surrogate.
        assert all(row["cat_id"] == ids[row["cat"]] for row in rows)


class TestBinaryOperators:
    def test_inner_join_drops_unmatched(self):
        flow = EtlFlow("t")
        flow.add(Datastore("items", table="items"))
        flow.add(Datastore("cats", table="cats"))
        flow.add(Join("join", left_keys=("cat",), right_keys=("cat",)))
        flow.add(Loader("load", table="out"))
        flow.connect("items", "join")
        flow.connect("cats", "join")
        flow.connect("join", "load")
        __, __, db = run(flow)
        rows = db.scan("out").rows
        assert len(rows) == 3  # NULL-cat row finds no match
        assert all("label" in row for row in rows)

    def test_left_join_keeps_unmatched_with_nulls(self):
        flow = EtlFlow("t")
        flow.add(Datastore("items", table="items"))
        flow.add(Datastore("cats", table="cats"))
        flow.add(
            Join("join", left_keys=("cat",), right_keys=("cat",), join_type="left")
        )
        flow.add(Loader("load", table="out"))
        flow.connect("items", "join")
        flow.connect("cats", "join")
        flow.connect("join", "load")
        __, __, db = run(flow)
        rows = db.scan("out").rows
        assert len(rows) == 4
        null_row = next(row for row in rows if row["k"] == 4)
        assert null_row["label"] is None

    def test_union(self):
        flow = EtlFlow("t")
        flow.add(Datastore("a", table="items", columns=("k",)))
        flow.add(Datastore("b", table="items", columns=("k",)))
        flow.add(UnionOp("u"))
        flow.add(Loader("load", table="out"))
        flow.connect("a", "u")
        flow.connect("b", "u")
        flow.connect("u", "load")
        __, __, db = run(flow)
        assert db.row_count("out") == 8

    def test_union_incompatible_raises(self):
        flow = EtlFlow("t")
        flow.add(Datastore("a", table="items", columns=("k",)))
        flow.add(Datastore("b", table="items", columns=("cat",)))
        flow.add(UnionOp("u"))
        flow.add(Loader("load", table="out"))
        flow.connect("a", "u")
        flow.connect("b", "u")
        flow.connect("u", "load")
        with pytest.raises(ExecutionError):
            run(flow)


class TestAggregation:
    def test_group_by_with_null_group(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Aggregation(
                "agg",
                group_by=("cat",),
                aggregates=(
                    AggregationSpec("total", "SUM", "price"),
                    AggregationSpec("n", "COUNT", "price"),
                ),
            ),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        by_cat = {row["cat"]: row for row in db.scan("out").rows}
        assert by_cat["a"]["total"] == pytest.approx(30.0)
        assert by_cat["b"]["n"] == 1
        # NULL group exists; its SUM over no non-null values is NULL.
        assert by_cat[None]["total"] is None
        assert by_cat[None]["n"] == 0

    def test_global_aggregate_over_empty_input(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Selection("none", predicate="price > 1000"),
            Aggregation(
                "agg",
                group_by=(),
                aggregates=(AggregationSpec("n", "COUNT", "k"),),
            ),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        assert db.scan("out").rows == [{"n": 0}]

    def test_min_max_avg(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Aggregation(
                "agg",
                group_by=(),
                aggregates=(
                    AggregationSpec("lo", "MIN", "price"),
                    AggregationSpec("hi", "MAX", "price"),
                    AggregationSpec("mean", "AVERAGE", "price"),
                ),
            ),
            Loader("load", table="out"),
        )
        __, __, db = run(flow)
        row = db.scan("out").rows[0]
        assert row["lo"] == 5.0 and row["hi"] == 20.0
        assert row["mean"] == pytest.approx(35.0 / 3)


class TestLoader:
    def test_replace_mode_truncates(self):
        database = tiny_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("k",)),
            Loader("load", table="out", mode="replace"),
        )
        run(flow, database)
        run(flow, database)
        assert database.row_count("out") == 4

    def test_insert_mode_appends(self):
        database = tiny_db()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items", columns=("k",)),
            Loader("load", table="out", mode="insert"),
        )
        run(flow, database)
        run(flow, database)
        assert database.row_count("out") == 8


class TestStatsAndErrors:
    def test_stats_report_rows_and_time(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Selection("sel", predicate="price > 6"),
            Loader("load", table="out"),
        )
        __, stats, __ = run(flow)
        assert stats.node("src").output_rows == 4
        assert stats.node("sel").input_rows == 4
        assert stats.node("sel").output_rows == 2
        assert stats.seconds > 0
        assert stats.loaded == {"out": 2}
        assert stats.total_rows_processed == 6  # 0 (scan) + 4 (sel) + 2 (load)
        with pytest.raises(KeyError):
            stats.node("ghost")

    def test_invalid_flow_rejected_before_running(self):
        flow = EtlFlow("t")
        flow.add(Selection("sel"))
        from repro.errors import FlowValidationError

        with pytest.raises(FlowValidationError):
            Executor(tiny_db()).execute(flow)

    def test_error_names_failing_node(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Selection("sel", predicate="ghost = 1"),
            Loader("load", table="out"),
        )
        with pytest.raises(ExecutionError) as excinfo:
            run(flow)
        assert "sel" in str(excinfo.value)

    def test_intermediate_relations_released_by_default(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="items"),
            Loader("load", table="out"),
        )
        executor = Executor(tiny_db())
        executor.execute(flow, keep_intermediate=False)
        assert not hasattr(executor, "relations")


class TestRevenueFlowEndToEnd:
    @pytest.fixture(scope="class")
    def loaded(self, tpch_db):
        flow = build_revenue_flow()
        executor = Executor(tpch_db)
        stats = executor.execute(flow, keep_intermediate=True)
        return executor, stats, tpch_db

    def test_result_matches_manual_computation(self, loaded):
        executor, __, db = loaded
        result = executor.relations["AGG_revenue"]
        assert result.attribute_names() == ["n_name", "total_revenue"]
        # Manual recomputation straight from the source tables.
        nations = {r["n_nationkey"]: r["n_name"] for r in db.scan("nation").rows}
        customers = {
            r["c_custkey"]: nations[r["c_nationkey"]]
            for r in db.scan("customer").rows
        }
        orders = {
            r["o_orderkey"]: customers[r["o_custkey"]]
            for r in db.scan("orders").rows
        }
        expected = 0.0
        for row in db.scan("lineitem").rows:
            if orders[row["l_orderkey"]] == "SPAIN":
                expected += row["l_extendedprice"] * (1 - row["l_discount"])
        got = {row["n_name"]: row["total_revenue"] for row in result.rows}
        if expected == 0.0:
            assert "SPAIN" not in got
        else:
            assert got["SPAIN"] == pytest.approx(expected)

    def test_normalized_flow_computes_identical_result(self, tpch_db):
        baseline = Executor(tpch_db)
        baseline.execute(build_revenue_flow(), keep_intermediate=True)
        normalized = Executor(tpch_db)
        normalized.execute(
            normalize(build_revenue_flow(name="norm")), keep_intermediate=True
        )
        base_rows = baseline.relations["AGG_revenue"].rows
        agg_name = next(
            node.name
            for node in normalize(build_revenue_flow()).nodes()
            if node.kind == "Aggregation"
        )
        norm_rows = normalized.relations[agg_name].rows
        key = lambda row: row["n_name"]
        assert sorted(base_rows, key=key) == sorted(norm_rows, key=key)
