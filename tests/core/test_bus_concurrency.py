"""Regression: the artifact bus under concurrent publishers.

Before the bus lock, ``publish`` read a topic sequence, appended the
event, then wrote the sequence back — two handler threads publishing on
one session's bus could draw the same sequence and collide on the
persisted position id.  ``marker`` read position and sequences in two
steps, so a concurrent publish produced a marker describing a log state
that never existed.  These tests hammer one bus from a pool and check
the invariants the fix guarantees; the foreign-marker test pins the new
rollback rejection.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.services.bus import ArtifactBus
from repro.errors import QuarryError
from repro.repository.metadata import MetadataRepository

THREADS = 8
PER_THREAD = 25


def test_concurrent_publishes_never_collide():
    bus = ArtifactBus(MetadataRepository(), "default")
    barrier = threading.Barrier(THREADS)

    def publisher(worker: int):
        barrier.wait(timeout=10)
        return [
            bus.publish("topic", "k", {"worker": worker}, producer="t")
            for _ in range(PER_THREAD)
        ]

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        batches = list(pool.map(publisher, range(THREADS)))

    envelopes = [envelope for batch in batches for envelope in batch]
    total = THREADS * PER_THREAD
    # Unique, gapless sequences and positions: no publish was lost, no
    # two publishes drew the same slot.
    assert sorted(e.sequence for e in envelopes) == list(
        range(1, total + 1)
    )
    assert sorted(e.position for e in envelopes) == list(range(total))
    logged = bus.events("topic")
    assert len(logged) == total
    assert [e.position for e in logged] == list(range(total))


def test_marker_is_atomic_under_concurrent_publishing():
    bus = ArtifactBus(MetadataRepository(), "default")
    stop = threading.Event()
    errors = []

    def publisher(worker: int):
        topic = f"topic{worker % 3}"
        while not stop.is_set():
            bus.publish(topic, "k", {}, producer="t")

    def observer():
        # Invariant of every log state that actually existed: the next
        # free position equals the number of events logged so far, i.e.
        # the sum of all per-topic sequences.  A marker captured
        # non-atomically (position, then sequences) breaks it as soon
        # as a publish lands in between.
        for _ in range(200):
            marker = bus.marker()
            if marker["position"] + 1 != sum(marker["sequences"].values()):
                errors.append(marker)

    publishers = [
        threading.Thread(target=publisher, args=(n,), daemon=True)
        for n in range(3)
    ]
    for thread in publishers:
        thread.start()
    try:
        observer()
    finally:
        stop.set()
        for thread in publishers:
            thread.join(timeout=10)
    assert not errors, f"inconsistent markers: {errors[:3]}"


def test_rollback_of_marker_under_load_keeps_log_consistent():
    bus = ArtifactBus(MetadataRepository(), "default")
    for n in range(5):
        bus.publish("kept", "k", {"n": n}, producer="t")
    marker = bus.marker()

    barrier = threading.Barrier(4)

    def publisher():
        barrier.wait(timeout=10)
        for _ in range(PER_THREAD):
            bus.publish("doomed", "k", {}, producer="t")

    with ThreadPoolExecutor(max_workers=4) as pool:
        for _ in range(4):
            pool.submit(publisher)

    dropped = bus.rollback(marker)
    assert dropped == 4 * PER_THREAD
    assert [e.payload["n"] for e in bus.events("kept")] == list(range(5))
    assert bus.events("doomed") == []
    # Sequences resumed from the marker, not from the dropped events.
    assert bus.publish("kept", "k", {"n": 5}, producer="t").sequence == 6


def test_rollback_rejects_marker_from_another_bus():
    repository = MetadataRepository()
    bus = ArtifactBus(repository, "default")
    other = ArtifactBus(MetadataRepository(), "default")
    bus.publish("topic", "k", {}, producer="t")
    foreign = other.marker()
    with pytest.raises(QuarryError, match="marker from bus"):
        bus.rollback(foreign)
    # The log is untouched by the rejected rollback.
    assert len(bus.events("topic")) == 1


def test_rollback_rejects_marker_from_reloaded_bus():
    repository = MetadataRepository()
    first = ArtifactBus(repository, "default")
    first.publish("topic", "k", {}, producer="t")
    stale = first.marker()
    reloaded = ArtifactBus(repository, "default")
    with pytest.raises(QuarryError, match="marker from bus"):
        reloaded.rollback(stale)
