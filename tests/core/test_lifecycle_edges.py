"""Edge cases of the design lifecycle."""

import pytest

from repro import Quarry
from repro.sources import tpch

from .conftest import (
    build_netprofit_requirement,
    build_revenue_requirement,
)


@pytest.fixture
def quarry():
    return Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())


class TestEmptyAndShrinkingDesigns:
    def test_empty_design_status(self, quarry):
        status = quarry.status()
        assert status.requirements == []
        assert status.complexity == 0.0
        assert status.etl_operations == 0
        assert quarry.satisfiability_problems() == []

    def test_removing_last_requirement_empties_design(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        quarry.remove_requirement("IR1")
        md, etl = quarry.unified_design()
        assert not md.facts and not md.dimensions
        assert len(etl) == 0
        assert quarry.repository.requirement_ids() == []

    def test_design_rebuilds_after_emptying(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        quarry.remove_requirement("IR1")
        quarry.add_requirement(build_netprofit_requirement())
        md, __ = quarry.unified_design()
        assert set(md.facts) == {"fact_table_netprofit"}

    def test_deploying_empty_design_yields_empty_artifacts(self, quarry):
        result = quarry.deploy("postgres")
        # Only the CREATE DATABASE preamble, no tables.
        assert "CREATE TABLE" not in result.artifacts["ddl"]


class TestDeterminism:
    def test_interpretation_is_deterministic(self):
        from repro.core.interpreter import Interpreter
        from repro.xformats import xlm, xmd

        first = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        ).interpret(build_revenue_requirement())
        second = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        ).interpret(build_revenue_requirement())
        assert xmd.dumps(first.md_schema) == xmd.dumps(second.md_schema)
        assert xlm.dumps(first.etl_flow) == xlm.dumps(second.etl_flow)

    def test_integration_order_independence_for_disjoint_designs(self):
        """Disjoint requirement pairs integrate to the same design size
        regardless of order (overlapping ones share either way)."""
        from repro.xformats import xmd

        def build(order):
            quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
            for requirement in order:
                quarry.add_requirement(requirement)
            return quarry

        forward = build(
            [build_revenue_requirement(), build_netprofit_requirement()]
        )
        backward = build(
            [build_netprofit_requirement(), build_revenue_requirement()]
        )
        md_forward, etl_forward = forward.unified_design()
        md_backward, etl_backward = backward.unified_design()
        assert set(md_forward.facts) == set(md_backward.facts)
        assert set(md_forward.dimensions) == set(md_backward.dimensions)
        assert len(etl_forward) == len(etl_backward)

    def test_elicitor_suggestions_are_deterministic(self):
        from repro.core.requirements import Elicitor

        first = Elicitor(tpch.ontology()).suggest_perspective("Lineitem")
        second = Elicitor(tpch.ontology()).suggest_perspective("Lineitem")
        assert [s.element_id for s in first["dimensions"]] == [
            s.element_id for s in second["dimensions"]
        ]
        assert [s.element_id for s in first["measures"]] == [
            s.element_id for s in second["measures"]
        ]


class TestSlicersKeepFactsApart:
    def test_same_shape_different_slicer_yields_two_facts(self, quarry):
        from repro import RequirementBuilder

        spain = (
            RequirementBuilder("S", "qty per brand, Spain")
            .measure("qty", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand")
            .where("Nation_n_name = 'SPAIN'")
            .build()
        )
        france = (
            RequirementBuilder("F", "qty per brand, France")
            .measure("qty", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand")
            .where("Nation_n_name = 'FRANCE'")
            .build()
        )
        quarry.add_requirement(spain)
        quarry.add_requirement(france)
        md, __ = quarry.unified_design()
        # Different content -> two facts; same Part dimension conformed.
        assert len(md.facts) == 2
        assert len([d for d in md.dimensions if d.startswith("Part")]) == 1
        assert quarry.satisfiability_problems() == []
