"""The Design Deployment service.

Terminal stage of the pipeline (§2.4): takes the session's unified
design, runs the lint gate, routes the deployment through the platform
backend registry (or the embedded ``native`` engine), records the
produced artifacts in the metadata repository, and announces every
deployment as a ``design.deployed`` envelope on the ``deployments``
topic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.deployer import BackendRegistry, Deployer, DeploymentResult
from repro.core.services.bus import ArtifactBus
from repro.engine.database import Database
from repro.errors import LintError
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.sources.schema import SourceSchema

TOPIC_DEPLOYMENTS = "deployments"

KIND_DEPLOYED = "design.deployed"


class DeploymentService:
    """Lints, deploys and records the unified design."""

    name = "deployment"

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        repository,
        bus: ArtifactBus,
        backends: Optional[BackendRegistry] = None,
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._repository = repository
        self._bus = bus
        self._deployer = Deployer(source_schema=schema, backends=backends)

    @property
    def deployer(self) -> Deployer:
        return self._deployer

    def platforms(self) -> List[str]:
        return self._deployer.platforms()

    # -- static analysis ---------------------------------------------------

    def lint(self, md_schema: MDSchema, etl_flow: EtlFlow, *, disable=(),
             only=None):
        """Lint a unified design: ETL flow plus MD schema.

        Returns a merged :class:`repro.analysis.LintReport`.  The flow
        is linted against the source schema (typed datastores) and the
        MD schema against the domain ontology (to-one reachability).
        """
        from repro.analysis import lint as run_lint

        flow_report = run_lint(
            etl_flow,
            source_schema=self._schema,
            disable=disable,
            only=only,
        )
        md_report = run_lint(
            md_schema,
            ontology=self._ontology,
            disable=disable,
            only=only,
        )
        return flow_report.merged_with(md_report)

    # -- deployment --------------------------------------------------------

    def build(
        self,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        platform: str,
        source_database: Optional[Database] = None,
        lint_gate: bool = True,
    ) -> DeploymentResult:
        """The slow, pure-compute phase of a deploy.

        Lints (ERROR-severity findings raise
        :class:`repro.errors.LintError` before anything is deployed;
        warnings ride along in the ``lint`` artifact) and runs the
        platform backend.  Touches **neither the repository nor the
        bus** — it is safe to call against a design snapshot *outside*
        the session lock, which is how the HTTP front door keeps
        ``status``/``design`` reads responsive during a long deploy.
        """
        lint_report = None
        if lint_gate:
            lint_report = self.lint(md_schema, etl_flow)
            if not lint_report.ok:
                raise LintError(lint_report.errors)
        result = self._deployer.deploy(
            md_schema,
            etl_flow,
            platform,
            source_database=source_database,
        )
        if lint_report is not None:
            result.artifacts["lint"] = lint_report.render()
        return result

    def record(
        self,
        result: DeploymentResult,
        platform: str,
        lint_gate: bool = True,
    ) -> None:
        """The bookkeeping phase of a deploy: repository + bus announce.

        Fast, but it **must run under the session lock** — bus
        publishes race with the elicitation pipeline's marker/rollback
        machinery, which truncates the log on failed folds.
        """
        self._repository.record_deployment(
            "current", platform, dict(result.artifacts)
        )
        self._bus.publish(
            TOPIC_DEPLOYMENTS,
            KIND_DEPLOYED,
            payload={
                "design": result.design,
                "platform": platform,
                "artifacts": sorted(result.artifacts),
                "lint_gate": lint_gate,
            },
            producer=self.name,
            attachment=result,
        )

    def deploy(
        self,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        platform: str,
        source_database: Optional[Database] = None,
        lint_gate: bool = True,
    ) -> DeploymentResult:
        """Deploy a unified design; records the artefacts in the repo.

        ``build`` + ``record`` in one call — the shape every embedded
        (non-HTTP) caller wants.
        """
        result = self.build(
            md_schema,
            etl_flow,
            platform,
            source_database=source_database,
            lint_gate=lint_gate,
        )
        self.record(result, platform, lint_gate=lint_gate)
        return result
