"""S2 — the demo's headline claim: *reduced overall execution time for
integrated ETL processes*.

For growing requirement sets, compare the measured wall-clock time of
(a) executing the one integrated ETL flow against (b) executing every
partial flow separately.  Shapes expected from the paper:

* integrated < separate whenever requirements overlap (shared
  extractions and join prefixes run once),
* the integrated flow always processes fewer rows,
* the estimated-cost saving grows with the number of requirements,
* the win holds across source scale factors.

The suite also measures the boundary condition: a low-overlap tail of
requirements (disjoint join spines) closes the gap — reuse, not magic,
is where the speedup comes from.
"""

import time

import pytest

from repro import Quarry
from repro.engine import Executor
from repro.sources import tpch

from benchmarks._workloads import ROW_COUNTS, requirement_corpus
from benchmarks.conftest import make_database


def build_flows(count):
    """(integrated flow, [partial flows]) for the first ``count`` reqs.

    Both sides get the deployment-time column-pruning pass, exactly as
    the Design Deployer applies it before execution.
    """
    from repro.etlmodel.equivalence import prune_columns

    quarry = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )
    partials = []
    for requirement in requirement_corpus(count):
        report = quarry.add_requirement(requirement)
        partials.append(prune_columns(report.partial.etl_flow))
    __, unified = quarry.unified_design()
    return prune_columns(unified), partials


def median_time(action, rounds=5):
    samples = []
    for __ in range(rounds):
        started = time.perf_counter()
        action()
        samples.append(time.perf_counter() - started)
    return sorted(samples)[rounds // 2]


def compare_times(first, second, rounds=7):
    """Best-of-N with interleaved rounds: robust to load drift."""
    best_first = best_second = float("inf")
    for __ in range(rounds):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


@pytest.fixture(scope="module")
def flows_by_n():
    return {count: build_flows(count) for count in (2, 3, 4, 6)}


@pytest.mark.parametrize("count", [2, 4, 6])
def test_integrated_execution(benchmark, flows_by_n, tpch_db, count):
    unified, __ = flows_by_n[count]
    benchmark.group = f"S2 etl N={count}"
    benchmark.name = "integrated"
    stats = benchmark(lambda: Executor(tpch_db).execute(unified))
    assert stats.seconds > 0


@pytest.mark.parametrize("count", [2, 4, 6])
def test_separate_execution(benchmark, flows_by_n, tpch_db, count):
    __, partials = flows_by_n[count]
    benchmark.group = f"S2 etl N={count}"
    benchmark.name = "separate"
    executor = Executor(tpch_db)
    results = benchmark(lambda: [executor.execute(flow) for flow in partials])
    assert len(results) == count


@pytest.mark.parametrize("count", [2, 3, 4, 6])
def test_shape_integrated_processes_fewer_rows(flows_by_n, tpch_db, count):
    """The mechanism behind the speedup: shared work runs once."""
    unified, partials = flows_by_n[count]
    executor = Executor(tpch_db)
    integrated_rows = executor.execute(unified).total_rows_processed
    separate_rows = sum(
        executor.execute(flow).total_rows_processed for flow in partials
    )
    assert integrated_rows < separate_rows


@pytest.mark.parametrize("count,slack", [(2, 1.0), (6, 1.05)])
def test_shape_integrated_is_faster(flows_by_n, tpch_db, count, slack):
    """Measured wall time: the integrated flow beats running the
    partial flows separately (the demo's claimed benefit).

    The Figure-3 pair (N=2) carries a 25-35 % margin and is asserted
    strictly; the 6-set's ~20 % margin can thin out under the load of a
    full test-suite run, so it gets a small noise allowance.  The
    pytest-benchmark cases report the undisturbed numbers for all N.
    """
    unified, partials = flows_by_n[count]
    executor = Executor(tpch_db)
    integrated, separate = compare_times(
        lambda: executor.execute(unified),
        lambda: [executor.execute(flow) for flow in partials],
        rounds=9,
    )
    assert integrated < separate * slack


def test_shape_duplicated_requirement_is_free(tpch_db):
    """Re-adding an identical requirement costs (almost) nothing."""
    quarry = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )
    corpus = requirement_corpus(2)
    quarry.add_requirement(corpus[0])
    __, before = quarry.unified_design()
    duplicate = requirement_corpus(2)[0]
    duplicate.id = "IR1_again"
    for aggregation in list(duplicate.aggregations):
        pass  # same structure, different id
    report = quarry.add_requirement(duplicate)
    consolidation = report.etl_consolidation
    assert consolidation.reuse_ratio == 1.0
    __, after = quarry.unified_design()
    assert len(after) == len(before)


def test_shape_gap_grows_with_overlap(flows_by_n):
    """Estimated cost saving grows with the number of requirements."""
    from repro.etlmodel.cost import CostModel

    model = CostModel()
    savings = []
    for count in (2, 4, 6):
        unified, partials = flows_by_n[count]
        separate_cost = sum(model.total(p, ROW_COUNTS) for p in partials)
        unified_cost = model.total(unified, ROW_COUNTS)
        savings.append(separate_cost - unified_cost)
    assert savings[0] < savings[1] < savings[2]


def test_shape_reuse_grows_with_n(flows_by_n):
    """Static view of the same effect: operation counts.

    The integrated flow has strictly fewer operations than the sum of
    the partial flows, and the absolute number of saved operations
    grows with N.
    """
    saved = []
    for count in (2, 4, 6):
        unified, partials = flows_by_n[count]
        total_partial_ops = sum(len(flow) for flow in partials)
        assert len(unified) < total_partial_ops
        saved.append(total_partial_ops - len(unified))
    assert saved[0] < saved[1] < saved[2]


def test_scale_factor_sweep_and_crossover():
    """SF sweep on the Figure-3 pair (revenue + netprofit): the win
    holds across source volumes.  At very small sources, or for
    requirement mixes with little overlap, the consolidation overhead
    (extra narrowing passes over shared extractions) can eat the gain —
    the overlapping pair keeps a solid margin at every SF measured.
    """
    unified, partials = build_flows(2)
    for scale_factor in (0.3, 0.6, 1.0):
        database = make_database(scale_factor)
        executor = Executor(database)
        integrated, separate = compare_times(
            lambda: executor.execute(unified),
            lambda: [executor.execute(f) for f in partials],
            rounds=7,
        )
        assert integrated < separate, f"no speedup at SF {scale_factor}"
