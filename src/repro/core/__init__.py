"""Quarry's core components (Figure 1 of the paper).

* :mod:`repro.core.requirements` — Requirements Elicitor,
* :mod:`repro.core.interpreter` — Requirements Interpreter,
* :mod:`repro.core.integrator` — Design Integrator (MD + ETL modules),
* :mod:`repro.core.deployer` — Design Deployer,
* :mod:`repro.core.quarry` — the end-to-end facade wiring them through
  the communication & metadata layer.
"""

from repro.core.quarry import Quarry

__all__ = ["Quarry"]
