"""Analysis over the extracted lock model.

The driver resolves call events to package functions, runs three
fixpoints over the call graph — may-acquire (which locks a call may
take, transitively), may-block (which blocking operations a call may
reach), and inherited-held (which locks every caller of a private
helper provably holds) — and assembles the **may-acquire-under graph**:
an edge ``A -> B`` for every site where lock ``B`` may be acquired
while ``A`` is held.  Cycles in that graph are lock-order inversions.

Call resolution, in priority order:

1. a ``# calls: Class.method`` trailing comment on the call line,
2. receiver type — ``self`` calls, parameters/locals with class
   annotations, and return annotations of already-resolved calls,
3. package-wide uniqueness of the method name, excluding
   :data:`~repro.analysis.concurrency.extract.GENERIC_METHODS`.

Unresolved calls are (soundly for our purposes) treated as opaque:
they acquire nothing and block nothing.  The runtime sanitizer exists
to catch what slips through that hole — observed edges missing from
the static graph are a finding (see ``verify_against_static``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.concurrency.extract import GENERIC_METHODS, extract_paths
from repro.analysis.concurrency.model import (
    AccessEvent,
    AcquireEvent,
    BlockingEvent,
    CallEvent,
    CodeModel,
    FunctionInfo,
)


def repro_package_root() -> Path:
    """The installed ``repro`` package directory (the analysis target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def resolve_ref(
    model: CodeModel, caller: FunctionInfo, ref: Tuple
) -> Optional[str]:
    """Resolve a call reference to a function key, or ``None``."""
    kind = ref[0]
    if kind == "annot":
        entry = ref[1]
        if "." in entry:
            cls, __, method = entry.rpartition(".")
            key = model.classes.get(cls, {}).get(method)
            if key is not None:
                return key
        for key, info in model.functions.items():
            if info.qualname == entry:
                return key
        return None
    if kind == "self":
        return model.classes.get(caller.owner, {}).get(ref[1])
    if kind == "typed":
        return model.classes.get(ref[1], {}).get(ref[2])
    if kind == "attr":
        method = ref[2]
        if method in GENERIC_METHODS:
            return None
        keys = model.methods_named(method)
        if len(keys) == 1:
            return keys[0]
        return None
    if kind == "name":
        name = ref[1]
        if name in model.classes:
            return model.classes[name].get("__init__")
        if name in GENERIC_METHODS:
            return None
        candidates = [
            key
            for key, info in model.functions.items()
            if not info.owner and info.name == name
        ]
        same_module = [
            key for key in candidates
            if model.functions[key].dotted == caller.dotted
        ]
        if len(same_module) == 1:
            return same_module[0]
        if len(candidates) == 1:
            return candidates[0]
        return None
    return None


@dataclass
class EdgeSite:
    """One witness of a may-acquire-under edge."""

    held: str
    acquired: str
    qualname: str
    location: str  # "module.py:line"
    via: str = ""  # callee qualname for call-propagated edges

    def describe(self) -> str:
        text = f"{self.location} in {self.qualname}"
        if self.via:
            text += f" (via {self.via})"
        return text


@dataclass
class CodeLintContext:
    """The analyzed package: model plus the call-graph fixpoints.

    Rules receive this context; everything expensive is computed once
    in :meth:`analyze`.
    """

    model: CodeModel
    #: (caller key, line, ref) -> callee key, for resolved calls
    resolved: Dict[Tuple, str] = field(default_factory=dict)
    #: function key -> lock names it may acquire (transitively)
    may_acquire: Dict[str, Set[str]] = field(default_factory=dict)
    #: function key -> locks acquired via self, through self-calls only
    may_acquire_self: Dict[str, Set[str]] = field(default_factory=dict)
    #: function key -> {blocking op -> call chain (qualnames)}
    may_block: Dict[str, Dict[str, Tuple[str, ...]]] = field(
        default_factory=dict
    )
    #: function key -> locks provably held at every call site
    inherited_held: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: (held lock, acquired lock) -> witness sites
    edges: Dict[Tuple[str, str], List[EdgeSite]] = field(
        default_factory=dict
    )

    # -- construction -------------------------------------------------------

    @classmethod
    def analyze(cls, model: CodeModel) -> "CodeLintContext":
        ctx = cls(model=model)
        ctx._resolve_calls()
        ctx._fix_may_acquire()
        ctx._fix_may_block()
        ctx._fix_inherited_held()
        ctx._build_edges()
        return ctx

    def _resolve_calls(self) -> None:
        for key, info in self.model.functions.items():
            for event in info.events:
                if isinstance(event, CallEvent):
                    callee = resolve_ref(self.model, info, event.ref)
                    if callee is not None:
                        self.resolved[(key, event.line, event.ref)] = callee

    def callee(self, info: FunctionInfo, event: CallEvent) -> Optional[str]:
        return self.resolved.get((info.key, event.line, event.ref))

    # -- held-token expansion -----------------------------------------------

    def _cm_yield_locks(
        self, key: str, visiting: Set[str]
    ) -> Tuple[Tuple[str, bool], ...]:
        """Locks held at a context manager's yield, cm-expanded."""
        if key in visiting:
            return ()
        visiting.add(key)
        try:
            info = self.model.functions.get(key)
            if info is None:
                return ()
            return self._expand(info, info.yield_held, visiting)
        finally:
            visiting.discard(key)

    def _expand(
        self, info: FunctionInfo, held: Tuple, visiting: Optional[Set[str]] = None
    ) -> Tuple[Tuple[str, bool], ...]:
        """Expand held tokens to ``(lock name, via_self)`` pairs."""
        if visiting is None:
            visiting = set()
        pairs: List[Tuple[str, bool]] = []
        for token in held:
            if token[0] == "lock":
                pairs.append((token[1], token[2]))
            elif token[0] == "cm":
                callee = resolve_ref(self.model, info, token[1])
                if callee is not None:
                    # Locks the cm holds at yield are held in the body,
                    # but not through *our* self.
                    pairs.extend(
                        (name, False)
                        for name, __ in self._cm_yield_locks(
                            callee, visiting
                        )
                    )
        return tuple(pairs)

    def held_locks(self, info: FunctionInfo, held: Tuple) -> FrozenSet[str]:
        return frozenset(name for name, __ in self._expand(info, held))

    def effective_held(
        self, info: FunctionInfo, held: Tuple
    ) -> FrozenSet[str]:
        """Lexically held locks plus locks every caller provably holds."""
        return self.held_locks(info, held) | self.inherited_held.get(
            info.key, frozenset()
        )

    # -- fixpoints ----------------------------------------------------------

    def _fix_may_acquire(self) -> None:
        for key in self.model.functions:
            self.may_acquire[key] = set()
            self.may_acquire_self[key] = set()
        changed = True
        while changed:
            changed = False
            for key, info in self.model.functions.items():
                acquires = self.may_acquire[key]
                self_acquires = self.may_acquire_self[key]
                before = (len(acquires), len(self_acquires))
                for event in info.events:
                    if isinstance(event, AcquireEvent):
                        if event.lock is not None:
                            acquires.add(event.lock)
                            if event.via_self:
                                self_acquires.add(event.lock)
                    elif isinstance(event, CallEvent):
                        callee = self.callee(info, event)
                        if callee is None:
                            continue
                        acquires.update(self.may_acquire[callee])
                        if event.ref[0] == "self":
                            self_acquires.update(
                                self.may_acquire_self[callee]
                            )
                if (len(acquires), len(self_acquires)) != before:
                    changed = True

    def _fix_may_block(self) -> None:
        for key in self.model.functions:
            self.may_block[key] = {}
        changed = True
        while changed:
            changed = False
            for key, info in self.model.functions.items():
                blocks = self.may_block[key]
                before = len(blocks)
                for event in info.events:
                    if isinstance(event, BlockingEvent):
                        blocks.setdefault(event.op, (info.qualname,))
                    elif isinstance(event, CallEvent):
                        callee = self.callee(info, event)
                        if callee is None:
                            continue
                        for op, chain in self.may_block[callee].items():
                            if len(chain) >= 4:
                                continue  # bound chain depth
                            blocks.setdefault(
                                op, (info.qualname,) + chain
                            )
                if len(blocks) != before:
                    changed = True

    def _fix_inherited_held(self) -> None:
        """Locks held at *every* resolved call site of private helpers.

        Public functions and functions with no resolved call sites get
        the empty set (any caller context is possible).  The fixpoint
        is decreasing from ⊤, so mutually recursive helpers converge.
        """
        all_locks = frozenset(self.model.lock_names())
        eligible = {
            key
            for key, info in self.model.functions.items()
            if info.owner and info.is_private and not info.is_contextmanager
        }
        self.inherited_held = {
            key: all_locks if key in eligible else frozenset()
            for key in self.model.functions
        }
        for __ in range(len(self.model.functions) + 1):
            changed = False
            call_sites: Dict[str, List[FrozenSet[str]]] = {}
            for key, info in self.model.functions.items():
                for event in info.events:
                    if not isinstance(event, CallEvent):
                        continue
                    callee = self.callee(info, event)
                    if callee is None or callee not in eligible:
                        continue
                    context = self.held_locks(
                        info, event.held
                    ) | self.inherited_held.get(key, frozenset())
                    call_sites.setdefault(callee, []).append(context)
            for key in eligible:
                contexts = call_sites.get(key)
                if contexts:
                    value: FrozenSet[str] = frozenset.intersection(*contexts)
                else:
                    value = frozenset()
                if value != self.inherited_held[key]:
                    self.inherited_held[key] = value
                    changed = True
            if not changed:
                break

    def _build_edges(self) -> None:
        for key, info in self.model.functions.items():
            for event in info.events:
                if isinstance(event, AcquireEvent) and event.lock is not None:
                    for held, __ in self._expand(info, event.held):
                        if held == event.lock:
                            continue
                        self._edge(
                            held,
                            event.lock,
                            EdgeSite(
                                held=held,
                                acquired=event.lock,
                                qualname=info.qualname,
                                location=f"{info.module}:{event.line}",
                            ),
                        )
                elif isinstance(event, CallEvent):
                    callee = self.callee(info, event)
                    if callee is None:
                        continue
                    held_pairs = self._expand(info, event.held)
                    if not held_pairs:
                        continue
                    callee_info = self.model.functions[callee]
                    for acquired in self.may_acquire[callee]:
                        for held, __ in held_pairs:
                            if held == acquired:
                                continue
                            self._edge(
                                held,
                                acquired,
                                EdgeSite(
                                    held=held,
                                    acquired=acquired,
                                    qualname=info.qualname,
                                    location=f"{info.module}:{event.line}",
                                    via=callee_info.qualname,
                                ),
                            )

    def _edge(self, held: str, acquired: str, site: EdgeSite) -> None:
        self.edges.setdefault((held, acquired), []).append(site)

    # -- graph queries ------------------------------------------------------

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        return set(self.edges)

    def cycles(self) -> List[Tuple[str, ...]]:
        """Elementary cycles in the may-acquire-under graph, canonical.

        The graph is a handful of nodes, so a simple DFS enumeration
        is plenty; each cycle is rotated to start at its smallest node
        and deduplicated.
        """
        graph: Dict[str, Set[str]] = {}
        for held, acquired in self.edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        found: Set[Tuple[str, ...]] = set()

        def walk(start: str, node: str, path: List[str]) -> None:
            for successor in sorted(graph.get(node, ())):
                if successor == start and len(path) > 1:
                    found.add(canonical_cycle(tuple(path)))
                elif successor not in path and successor > start:
                    # Only explore nodes >= start: every cycle is found
                    # from its smallest node, once.
                    walk(start, successor, path + [successor])

        for start in sorted(graph):
            walk(start, start, [start])
        return sorted(found)

    def static_graph(self) -> Dict[str, object]:
        """The may-acquire-under graph as plain JSON-able data."""
        return {
            "locks": sorted(self.model.lock_names()),
            "edges": sorted([a, b] for (a, b) in self.edges),
        }


def canonical_cycle(path: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rotate a cycle so the smallest lock name comes first."""
    pivot = path.index(min(path))
    return path[pivot:] + path[:pivot]


def analyze_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> CodeLintContext:
    """Extract and analyze an explicit set of Python files."""
    return CodeLintContext.analyze(
        extract_paths([Path(p) for p in paths], root=root)
    )


def analyze_package(root: Optional[Path] = None) -> CodeLintContext:
    """Extract and analyze every module of the ``repro`` package."""
    package_root = Path(root) if root is not None else repro_package_root()
    paths = sorted(package_root.rglob("*.py"))
    return analyze_paths(paths, root=package_root)


def static_lock_graph() -> Dict[str, object]:
    """The package's static may-acquire-under graph (for the sanitizer)."""
    return analyze_package().static_graph()


def code_lint(
    context: CodeLintContext,
    *,
    disable: Sequence[str] = (),
    only: Optional[Sequence[str]] = None,
    waivers: Optional[Dict[str, object]] = None,
):
    """Run every ``code``-target rule over an analyzed package.

    Returns ``(report, waived, unused_waivers)``: the
    :class:`~repro.analysis.diagnostics.LintReport` of unwaived
    findings, the findings suppressed by the waiver file, and waiver
    fingerprints that matched nothing (stale entries).
    """
    import repro.analysis.concurrency.rules  # noqa: F401  (registers rules)
    from repro.analysis.diagnostics import LintReport, rules_for

    selected = []
    for rule in rules_for("code"):
        if only is not None and rule.code not in only:
            continue
        if rule.code in disable:
            continue
        selected.append(rule)
    diagnostics = []
    for rule in selected:
        diagnostics.extend(rule.run(context))
    waivers = waivers or {}
    kept, waived = [], []
    used = set()
    for diagnostic in diagnostics:
        if diagnostic.fingerprint in waivers:
            used.add(diagnostic.fingerprint)
            waived.append(diagnostic)
        else:
            kept.append(diagnostic)
    unused = sorted(set(waivers) - used)
    subject = f"code ({len(context.model.modules)} modules)"
    return LintReport(subject=subject, diagnostics=kept), waived, unused
