"""SQL-DDL import parser: CREATE TABLE script -> MD schema.

The metadata layer "offers plug-in capabilities for adding import and
export parsers, for supporting various external notations (e.g., SQL,
...)" (§2.5).  This is the SQL *import* direction: it reads a star/
constellation DDL script (the dialect our own generator emits, which is
plain enough to cover hand-written scripts of the same shape) and
reconstructs an :class:`repro.mdmodel.model.MDSchema`:

* every ``dim_<name>`` table becomes a dimension with one level holding
  all its columns,
* every other table becomes a fact: columns covered by some dimension's
  attributes form the grain (and the fact-dimension links), the rest
  become SUM measures.

Round-trip guarantee: ``import(export(schema))`` preserves table names,
columns, grains and measure names (hierarchy structure beyond one level
and ontology provenance are not expressible in DDL and are lost — which
is exactly why xMD, not SQL, is the system's canonical format).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.errors import FormatError
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)

_CREATE_RE = re.compile(
    r"CREATE\s+TABLE\s+(?P<name>\"[^\"]+\"|\w+)\s*\((?P<body>.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)

_PK_RE = re.compile(r"PRIMARY\s+KEY\s*\(\s*(?P<columns>[^)]*)\)", re.IGNORECASE)

_TYPE_MAP = {
    "bigint": ScalarType.INTEGER,
    "integer": ScalarType.INTEGER,
    "int": ScalarType.INTEGER,
    "double precision": ScalarType.DECIMAL,
    "real": ScalarType.DECIMAL,
    "numeric": ScalarType.DECIMAL,
    "boolean": ScalarType.BOOLEAN,
    "date": ScalarType.DATE,
    "text": ScalarType.STRING,
}


def loads(script: str, name: str = "imported") -> MDSchema:
    """Parse a DDL script into an MD schema."""
    tables = _parse_tables(script)
    if not tables:
        raise FormatError("no CREATE TABLE statements found")
    schema = MDSchema(name=name)
    dimension_tables = {
        table_name: columns
        for table_name, (columns, __) in tables.items()
        if table_name.startswith("dim_")
    }
    attribute_owner: Dict[str, List[str]] = {}
    for table_name, columns in dimension_tables.items():
        dimension_name = table_name[len("dim_"):]
        dimension = Dimension(name=dimension_name)
        level = Level(
            name=dimension_name,
            attributes=[
                LevelAttribute(column, scalar_type)
                for column, scalar_type in columns.items()
            ],
        )
        dimension.add_level(level)
        dimension.add_hierarchy(
            Hierarchy(name=dimension_name, levels=[dimension_name])
        )
        schema.add_dimension(dimension)
        for column in columns:
            attribute_owner.setdefault(column, []).append(dimension_name)
    for table_name, (columns, primary_key) in tables.items():
        if table_name.startswith("dim_"):
            continue
        fact = Fact(name=table_name)
        for column, scalar_type in columns.items():
            owners = attribute_owner.get(column)
            if owners:
                fact.grain.append(column)
                for owner in owners:
                    if fact.link_for(owner) is None:
                        fact.link_dimension(owner, owner)
            else:
                fact.add_measure(
                    Measure(name=column, expression=column, type=scalar_type)
                )
        if primary_key:
            # Trust the declared key over the inference when present.
            fact.grain = [c for c in primary_key if c in columns]
        schema.add_fact(fact)
    return schema


def _parse_tables(script: str) -> Dict[str, Tuple[Dict[str, ScalarType], List[str]]]:
    tables: Dict[str, Tuple[Dict[str, ScalarType], List[str]]] = {}
    for match in _CREATE_RE.finditer(script):
        table_name = match.group("name").strip('"')
        body = match.group("body")
        columns: Dict[str, ScalarType] = {}
        primary_key: List[str] = []
        for part in _split_columns(body):
            part = part.strip()
            if not part:
                continue
            pk_match = _PK_RE.match(part)
            if pk_match:
                primary_key = [
                    column.strip().strip('"')
                    for column in pk_match.group("columns").split(",")
                    if column.strip()
                ]
                continue
            column_name, scalar_type = _parse_column(part, table_name)
            columns[column_name] = scalar_type
        tables[table_name] = (columns, primary_key)
    return tables


def _split_columns(body: str) -> List[str]:
    """Split on top-level commas (VARCHAR(255) has nested parens)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    parts.append("".join(current))
    return parts


def _parse_column(text: str, table: str) -> Tuple[str, ScalarType]:
    pieces = text.split(None, 1)
    if len(pieces) != 2:
        raise FormatError(f"table {table!r}: cannot parse column {text!r}")
    column_name = pieces[0].strip('"')
    type_text = pieces[1].strip().lower()
    if type_text.startswith("varchar") or type_text.startswith("char"):
        return column_name, ScalarType.STRING
    for sql_name, scalar_type in _TYPE_MAP.items():
        if type_text.startswith(sql_name):
            return column_name, scalar_type
    raise FormatError(
        f"table {table!r}: unknown SQL type {pieces[1]!r} for column "
        f"{column_name!r}"
    )
