"""The embedded relational database (PostgreSQL stand-in).

Holds named tables with typed schemas, primary keys and foreign keys,
enforcing integrity on insert.  The Design Deployer creates warehouse
tables here, the ETL executor reads sources from and loads facts into
it, and the OLAP helper queries it.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import EngineError, IntegrityError, UnknownTableError
from repro.engine.columnar import ColumnarRelation
from repro.engine.relation import Relation
from repro.locks import new_lock
from repro.expressions.types import ScalarType, type_of_value

#: Exact Python types that satisfy each scalar type without further
#: checks; values outside these fall back to :func:`type_of_value`
#: (``bool`` is deliberately not an ``int`` here, ``datetime`` still
#: satisfies DATE via the fallback).
_FAST_TYPES: Dict[ScalarType, tuple] = {
    ScalarType.INTEGER: (int,),
    ScalarType.DECIMAL: (float, int),
    ScalarType.STRING: (str,),
    ScalarType.BOOLEAN: (bool,),
    ScalarType.DATE: (datetime.date,),
}


@dataclass(frozen=True)
class ForeignKeyDef:
    """A foreign key: local columns -> target table's primary key."""

    columns: Tuple[str, ...]
    target_table: str


@dataclass
class TableDef:
    """A table definition for :meth:`Database.create_table`."""

    name: str
    columns: Dict[str, ScalarType]
    primary_key: Tuple[str, ...] = ()
    foreign_keys: Tuple[ForeignKeyDef, ...] = ()

    def __post_init__(self) -> None:
        for key_column in self.primary_key:
            if key_column not in self.columns:
                raise EngineError(
                    f"table {self.name!r}: primary key column "
                    f"{key_column!r} undefined"
                )
        for foreign_key in self.foreign_keys:
            for column in foreign_key.columns:
                if column not in self.columns:
                    raise EngineError(
                        f"table {self.name!r}: foreign key column "
                        f"{column!r} undefined"
                    )


class _Table:
    """Internal table state: definition + relation + PK index."""

    def __init__(self, definition: TableDef) -> None:
        self.definition = definition
        self.relation = Relation(schema=dict(definition.columns))
        self._pk_index: set = set()
        #: Cached columnar view of the relation; dropped on any write.
        #: Writers invalidate without the lock (the write paths are
        #: caller-serialised, as for ``scan``), hence ``[writes]`` only
        #: covers the pivot's publication, not the invalidation.
        self._columnar: Optional[ColumnarRelation] = None  # guarded-by: _Table._columnar_lock [writes]
        #: Guards the lazy columnar pivot: two concurrent readers must
        #: agree on one cached view instead of both pivoting (or one
        #: observing the other's half-built pivot).
        self._columnar_lock = new_lock("_Table._columnar_lock")
        #: Bumped on every write; statistics caches key on it, so stale
        #: table stats are detected without comparing contents.
        self.generation: int = 0

    def primary_key_of(self, row: dict) -> Optional[tuple]:
        if not self.definition.primary_key:
            return None
        return tuple(row[column] for column in self.definition.primary_key)


class Database:
    """A named collection of tables with integrity enforcement."""

    def __init__(self, name: str = "warehouse") -> None:
        self.name = name
        self._tables: Dict[str, _Table] = {}

    # -- DDL ------------------------------------------------------------------

    def create_table(self, definition: TableDef, if_not_exists: bool = False) -> None:
        """Create a table; FK targets must exist already."""
        if definition.name in self._tables:
            if if_not_exists:
                return
            raise EngineError(f"table {definition.name!r} already exists")
        for foreign_key in definition.foreign_keys:
            if foreign_key.target_table not in self._tables:
                raise EngineError(
                    f"table {definition.name!r} references missing table "
                    f"{foreign_key.target_table!r}"
                )
        self._tables[definition.name] = _Table(definition)

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(name)
        referers = [
            table.definition.name
            for table in self._tables.values()
            if any(
                fk.target_table == name for fk in table.definition.foreign_keys
            )
        ]
        if referers:
            raise EngineError(
                f"cannot drop {name!r}: referenced by {sorted(referers)}"
            )
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return list(self._tables)

    def table_def(self, name: str) -> TableDef:
        return self._lookup(name).definition

    # -- DML ------------------------------------------------------------------

    def insert(self, table_name: str, row: dict) -> None:
        """Insert one row, enforcing PK uniqueness, NOT NULL keys and FKs."""
        table = self._lookup(table_name)
        table.relation.check_row(row)
        key = table.primary_key_of(row)
        if key is not None:
            if any(part is None for part in key):
                raise IntegrityError(
                    f"{table_name!r}: NULL in primary key {key}"
                )
            if key in table._pk_index:
                raise IntegrityError(
                    f"{table_name!r}: duplicate primary key {key}"
                )
        for foreign_key in table.definition.foreign_keys:
            values = tuple(row[column] for column in foreign_key.columns)
            if any(value is None for value in values):
                continue  # NULL FK is permitted (no reference)
            target = self._lookup(foreign_key.target_table)
            if values not in target._pk_index:
                raise IntegrityError(
                    f"{table_name!r}: foreign key {values} has no match in "
                    f"{foreign_key.target_table!r}"
                )
        table.relation.rows.append(row)
        table._columnar = None
        table.generation += 1
        if key is not None:
            table._pk_index.add(key)

    def insert_many(self, table_name: str, rows) -> int:
        """Insert rows one by one; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    def insert_columns(
        self, table_name: str, columns: Dict[str, list], length: int
    ) -> int:
        """Bulk-insert column arrays, validating each column in one pass.

        The fast path for loaders: tables without keys (the warehouse
        targets the executor creates) skip per-row dict bookkeeping —
        types are checked column-wise and rows appended in bulk.  Tables
        with a primary or foreign key fall back to :meth:`insert_many`
        so integrity enforcement is unchanged.
        """
        table = self._lookup(table_name)
        schema = table.relation.schema
        extra = set(columns) - set(schema)
        if extra:
            raise EngineError(f"row has unknown attributes {sorted(extra)}")
        for name in schema:
            if name not in columns:
                raise EngineError(f"row is missing attribute {name!r}")
        names = list(schema)
        ordered = [columns[name] for name in names]
        if table.definition.primary_key or table.definition.foreign_keys:
            # Integrity-enforced tables go row by row, unchanged.
            rows = (
                [dict(zip(names, values)) for values in zip(*ordered)]
                if ordered
                else [{} for _ in range(length)]
            )
            return self.insert_many(table_name, rows)
        for name, expected in schema.items():
            fast = _FAST_TYPES[expected]
            for value in columns[name]:
                if value is None or type(value) in fast:
                    continue
                actual = type_of_value(value)
                if actual is expected:
                    continue
                if (
                    expected is ScalarType.DECIMAL
                    and actual is ScalarType.INTEGER
                ):
                    continue
                raise EngineError(
                    f"attribute {name!r}: expected {expected}, got {actual} "
                    f"({value!r})"
                )
        if ordered:
            table.relation.rows.extend(
                dict(zip(names, values)) for values in zip(*ordered)
            )
        else:
            table.relation.rows.extend({} for _ in range(length))
        table._columnar = None
        table.generation += 1
        return length

    def truncate(self, table_name: str) -> None:
        table = self._lookup(table_name)
        table.relation.rows.clear()
        table._pk_index.clear()
        table._columnar = None
        table.generation += 1

    # -- queries ------------------------------------------------------------------

    def scan(self, table_name: str) -> Relation:
        """The table's relation (shared — treat as read-only)."""
        return self._lookup(table_name).relation

    def scan_columns(self, table_name: str) -> ColumnarRelation:
        """A columnar view of the table (cached; shared — read-only).

        The cache is dropped by every write path (:meth:`insert`,
        :meth:`insert_columns`, :meth:`truncate`), so repeated flow
        executions over the same sources pay the row-to-column pivot
        once.

        Thread-safe: the pivot runs under a per-table lock with a
        double-check, so a pool of workers scanning the same table gets
        one shared view and exactly one pivot (writers concurrent with
        readers remain the caller's problem, as for :meth:`scan`).
        """
        table = self._lookup(table_name)
        columnar = table._columnar
        if columnar is None:
            with table._columnar_lock:
                columnar = table._columnar
                if columnar is None:
                    columnar = ColumnarRelation.from_relation(table.relation)
                    table._columnar = columnar
        return columnar

    def row_count(self, table_name: str) -> int:
        return len(self._lookup(table_name).relation)

    def table_generation(self, table_name: str) -> int:
        """The table's write generation (see :class:`_Table`)."""
        return self._lookup(table_name).generation

    def row_counts(self) -> Dict[str, int]:
        return {name: len(table.relation) for name, table in self._tables.items()}

    # -- bulk loading ---------------------------------------------------------------

    def load_source(
        self, schema, data: Dict[str, list]
    ) -> Dict[str, int]:
        """Create and fill tables from a source schema plus generated data.

        ``schema`` is a :class:`repro.sources.schema.SourceSchema`; the
        tables are created in FK-respecting order and all integrity
        checks apply.  Returns rows inserted per table.
        """
        created: Dict[str, int] = {}
        remaining = list(schema.tables())
        while remaining:
            progressed = False
            for table in list(remaining):
                targets = {fk.target_table for fk in table.foreign_keys}
                if not targets <= set(self._tables) | {table.name}:
                    continue
                self.create_table(
                    TableDef(
                        name=table.name,
                        columns=table.column_types(),
                        primary_key=tuple(table.primary_key),
                        foreign_keys=tuple(
                            ForeignKeyDef(fk.columns, fk.target_table)
                            for fk in table.foreign_keys
                        ),
                    )
                )
                remaining.remove(table)
                progressed = True
            if not progressed:
                raise EngineError("cyclic foreign keys in source schema")
        for table_name in self._topological_table_order(schema):
            created[table_name] = self.insert_many(
                table_name, data.get(table_name, [])
            )
        return created

    def _topological_table_order(self, schema) -> List[str]:
        order: List[str] = []
        remaining = {table.name: table for table in schema.tables()}
        while remaining:
            for name, table in list(remaining.items()):
                targets = {fk.target_table for fk in table.foreign_keys}
                if targets <= set(order) | {name}:
                    order.append(name)
                    del remaining[name]
                    break
            else:
                raise EngineError("cyclic foreign keys in source schema")
        return order

    # -- internals ---------------------------------------------------------------------

    def _lookup(self, name: str) -> _Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None
