"""Lint rules over ETL flows.

* ``QRY001``–``QRY005`` — structural shape (the former
  ``EtlFlow.validate`` checks; the exact legacy message texts are kept
  so ``validate()``/``check()`` stay byte-compatible wrappers).
* ``QRY101``/``QRY102`` — lineage: dead attributes, subgraphs that feed
  no loader.
* ``QRY201``–``QRY204`` — types and hashability: join key type
  mismatches, unhashable key values (definite/possible), schema
  propagation failures (which also cover comparisons over incomparable
  types inside predicates and expressions).
* ``QRY301``–``QRY303`` — predicate satisfiability: always-true and
  always-false selections, contradictory selection chains.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity, diag, rule
from repro.analysis.folding import truth, unsatisfiable
from repro.analysis.lineage import DEFINITE, introduced_attributes
from repro.errors import FlowValidationError, QuarryError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Distinct,
    Extraction,
    Join,
    Loader,
    Projection,
    Selection,
    Sort,
)
from repro.expressions import parse
from repro.expressions.types import comparable


# ---------------------------------------------------------------------------
# QRY0xx — structural shape
# ---------------------------------------------------------------------------


def structural_diagnostics(flow: EtlFlow) -> List[Diagnostic]:
    """The structural checks, in the legacy ``validate()`` order.

    The message texts are exactly what ``EtlFlow.validate`` has always
    returned; the wrapper strips the codes back off.
    """
    problems: List[Diagnostic] = []
    for operation in flow.nodes():
        name = operation.name
        actual = len(flow.inputs(name))
        if actual != operation.arity:
            problems.append(
                diag(
                    "QRY001",
                    f"{operation.kind} {name!r} expects {operation.arity} "
                    f"input(s), has {actual}",
                    node=name,
                    hint="connect the missing inputs or remove the node",
                )
            )
        if operation.kind == "Datastore" and flow.inputs(name):
            problems.append(
                diag("QRY002", f"datastore {name!r} has inputs", node=name)
            )
        if operation.kind == "Loader" and flow.outputs(name):
            problems.append(
                diag("QRY003", f"loader {name!r} has outputs", node=name)
            )
        if operation.kind != "Loader" and not flow.outputs(name):
            problems.append(
                diag(
                    "QRY004",
                    f"{operation.kind} {name!r} is a dead end "
                    f"(only loaders may be sinks)",
                    node=name,
                    hint="route the node into a loader or drop it",
                )
            )
    try:
        flow.topological_order()
    except FlowValidationError as exc:
        for violation in exc.violations:
            problems.append(diag("QRY005", str(violation)))
    return problems


def _structural_by_code(code: str):
    def run(context) -> List[Diagnostic]:
        return [d for d in context.structural if d.code == code]

    return run


rule("QRY001", "operation arity mismatch", "flow", Severity.ERROR)(
    _structural_by_code("QRY001")
)
rule("QRY002", "datastore has inputs", "flow", Severity.ERROR)(
    _structural_by_code("QRY002")
)
rule("QRY003", "loader has outputs", "flow", Severity.ERROR)(
    _structural_by_code("QRY003")
)
rule("QRY004", "non-loader sink", "flow", Severity.ERROR)(
    _structural_by_code("QRY004")
)
rule("QRY005", "flow contains a cycle", "flow", Severity.ERROR)(
    _structural_by_code("QRY005")
)


# ---------------------------------------------------------------------------
# QRY1xx — lineage
# ---------------------------------------------------------------------------

_INTRODUCED_VERB = {
    "DerivedAttribute": "computed",
    "SurrogateKey": "computed",
    "Aggregation": "aggregated",
    "Rename": "renamed",
    "Projection": "extracted",
    "Extraction": "extracted",
}


@rule("QRY101", "dead attribute", "flow", Severity.WARNING)
def _dead_attributes(context) -> Iterable[Diagnostic]:
    if not context.acyclic:
        return []
    out: List[Diagnostic] = []
    demand = context.demand
    for operation in context.flow.nodes():
        name = operation.name
        needed = demand.get(name)
        if needed is None:
            continue  # unknown downstream demand: stay quiet
        if not context.reaches_loader(name):
            continue  # QRY004/QRY102 own unrooted subgraphs
        verb = _INTRODUCED_VERB.get(operation.kind, "produced")
        for attribute in introduced_attributes(operation):
            if attribute in needed:
                continue
            out.append(
                diag(
                    "QRY101",
                    f"attribute {attribute!r} is {verb} here but never "
                    f"consumed downstream",
                    node=name,
                    attribute=attribute,
                    hint="drop the attribute or consume it",
                )
            )
    return out


@rule("QRY102", "subgraph feeds no loader", "flow", Severity.WARNING)
def _unreachable(context) -> Iterable[Diagnostic]:
    flow = context.flow
    loaders = {op.name for op in flow.nodes() if isinstance(op, Loader)}
    if not loaders:
        return []  # an entirely loader-less flow is a structural problem
    out: List[Diagnostic] = []
    for operation in flow.nodes():
        name = operation.name
        if name in loaders or not flow.outputs(name):
            continue  # loaders are fine; sinks are QRY004's business
        if not flow.downstream(name) & loaders:
            out.append(
                diag(
                    "QRY102",
                    f"{operation.kind} {name!r} feeds no loader; its whole "
                    f"subgraph is dead",
                    node=name,
                    hint="route the subgraph into a loader or remove it",
                )
            )
    return out


# ---------------------------------------------------------------------------
# QRY2xx — types and hashability
# ---------------------------------------------------------------------------


@rule("QRY201", "join key type mismatch", "flow", Severity.WARNING)
def _join_key_types(context) -> Iterable[Diagnostic]:
    if not context.acyclic:
        return []
    out: List[Diagnostic] = []
    schemas = context.node_schemas
    for operation in context.flow.nodes():
        if not isinstance(operation, Join):
            continue
        inputs = context.flow.inputs(operation.name)
        if len(inputs) != 2:
            continue
        left_schema = schemas.get(inputs[0])
        right_schema = schemas.get(inputs[1])
        if left_schema is None or right_schema is None:
            continue
        for left_key, right_key in zip(
            operation.left_keys, operation.right_keys
        ):
            left_type = left_schema.get(left_key)
            right_type = right_schema.get(right_key)
            if left_type is None or right_type is None:
                continue  # missing keys are propagation errors (QRY204)
            if not comparable(left_type, right_type):
                out.append(
                    diag(
                        "QRY201",
                        f"join key {left_key!r} ({left_type}) never matches "
                        f"{right_key!r} ({right_type}); the join drops "
                        f"every row",
                        node=operation.name,
                        attribute=left_key,
                        hint="align the key types or pick other keys",
                    )
                )
    return out


_HAZARD_HINT = (
    "the value is invisible to the type system; cleanse it at the source "
    "or guard the flow upstream"
)


@rule("QRY202", "unhashable key value (certain failure)", "flow", Severity.ERROR)
def _unhashable_definite(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY202",
            f"an unhashable source value reaches {hazard.role} "
            f"{hazard.attribute!r}; execution will fail here",
            node=hazard.node,
            attribute=hazard.attribute,
            hint=_HAZARD_HINT,
        )
        for hazard in context.hazards
        if hazard.status == DEFINITE
    ]


@rule("QRY203", "unhashable key value (possible failure)", "flow", Severity.WARNING)
def _unhashable_possible(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY203",
            f"an unhashable source value can reach {hazard.role} "
            f"{hazard.attribute!r}; execution may fail here",
            node=hazard.node,
            attribute=hazard.attribute,
            hint=_HAZARD_HINT,
        )
        for hazard in context.hazards
        if hazard.status != DEFINITE
    ]


@rule("QRY204", "schema propagation failure", "flow", Severity.ERROR)
def _propagation(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY204",
            message,
            node=node,
            hint="fix the schema mismatch; the engine cannot run this node",
        )
        for node, message in context.propagation_failures
    ]


# ---------------------------------------------------------------------------
# QRY3xx — predicate satisfiability
# ---------------------------------------------------------------------------


def _predicate_of(operation: Selection):
    try:
        return parse(operation.predicate)
    except QuarryError:
        return None  # unparseable predicates surface as QRY204


@rule("QRY301", "selection is always true", "flow", Severity.WARNING)
def _always_true(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for operation in context.flow.nodes():
        if not isinstance(operation, Selection):
            continue
        predicate = _predicate_of(operation)
        if predicate is not None and truth(predicate) is True:
            out.append(
                diag(
                    "QRY301",
                    f"predicate {operation.predicate!r} is always true; "
                    f"the filter does nothing",
                    node=operation.name,
                    hint="remove the Selection",
                )
            )
    return out


@rule("QRY302", "selection is always false", "flow", Severity.WARNING)
def _always_false(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for operation in context.flow.nodes():
        if not isinstance(operation, Selection):
            continue
        predicate = _predicate_of(operation)
        if predicate is None:
            continue
        if truth(predicate) is False or unsatisfiable([predicate]):
            out.append(
                diag(
                    "QRY302",
                    f"predicate {operation.predicate!r} can never pass a "
                    f"row; everything downstream is empty",
                    node=operation.name,
                    hint="fix or remove the Selection",
                )
            )
    return out


#: Operations a predicate conjunction can be collected across: they
#: neither change attribute names nor attribute values of surviving rows.
_ROW_TRANSPARENT = (Selection, Sort, Distinct, Projection, Extraction)


def _upstream_predicates(
    flow: EtlFlow, name: str
) -> List[Tuple[str, object]]:
    """(node, predicate AST) of Selections on the unary chain above."""
    collected: List[Tuple[str, object]] = []
    current = name
    while True:
        inputs = flow.inputs(current)
        if len(inputs) != 1:
            return collected
        current = inputs[0]
        operation = flow.node(current)
        if not isinstance(operation, _ROW_TRANSPARENT):
            return collected
        if isinstance(operation, Selection):
            predicate = _predicate_of(operation)
            if predicate is None:
                return collected
            collected.append((current, predicate))


@rule("QRY303", "contradictory selection chain", "flow", Severity.WARNING)
def _contradictory_chain(context) -> Iterable[Diagnostic]:
    if not context.acyclic:
        return []
    out: List[Diagnostic] = []
    for operation in context.flow.nodes():
        if not isinstance(operation, Selection):
            continue
        own = _predicate_of(operation)
        if own is None:
            continue
        if truth(own) is False or unsatisfiable([own]):
            continue  # QRY302 owns single-node contradictions
        ancestors = _upstream_predicates(context.flow, operation.name)
        if not ancestors:
            continue
        predicates = [predicate for _node, predicate in ancestors] + [own]
        if unsatisfiable(predicates):
            chain = ", ".join(repr(node) for node, _ in reversed(ancestors))
            out.append(
                diag(
                    "QRY303",
                    f"predicate {operation.predicate!r} contradicts the "
                    f"upstream selection chain ({chain}); no row survives",
                    node=operation.name,
                    hint="reconcile the chained filters",
                )
            )
    return out
