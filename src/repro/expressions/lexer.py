"""Tokeniser for the expression language.

The grammar's lexical level: identifiers, numeric and string literals,
``date '...'`` literals, operators and punctuation.  Keywords (``and``,
``or``, ``not``, ``in``, ``true``, ``false``, ``null``, ``date``) are
case-insensitive; identifiers keep their case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenKind(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    NUMBER = "number"
    STRING = "string"
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    position: int


_KEYWORDS = {"and", "or", "not", "in", "true", "false", "null", "date"}

#: Multi-character operators must be listed before their prefixes.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789.")


def tokenize(text: str) -> list:
    """Tokenise an expression string into a list of :class:`Token`.

    The returned list always ends with an END token.  Raises
    :class:`LexError` on characters outside the grammar.
    """
    tokens = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char in " \t\r\n":
            index += 1
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", index))
            index += 1
            continue
        if char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", index))
            index += 1
            continue
        if char == ",":
            tokens.append(Token(TokenKind.COMMA, ",", index))
            index += 1
            continue
        if char == "'":
            token, index = _read_string(text, index)
            tokens.append(token)
            continue
        if char.isdigit():
            token, index = _read_number(text, index)
            tokens.append(token)
            continue
        if char in _IDENT_START:
            token, index = _read_word(text, index)
            tokens.append(token)
            continue
        operator = _match_operator(text, index)
        if operator is not None:
            # Normalise the SQL-style <> spelling to !=.
            canonical = "!=" if operator == "<>" else operator
            tokens.append(Token(TokenKind.OPERATOR, canonical, index))
            index += len(operator)
            continue
        raise LexError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _match_operator(text: str, index: int):
    """Return the operator spelled at ``index``, or None."""
    for operator in _OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None


def _read_string(text: str, start: int):
    """Read a single-quoted string literal; ``''`` escapes a quote."""
    index = start + 1
    pieces = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if index + 1 < len(text) and text[index + 1] == "'":
                pieces.append("'")
                index += 2
                continue
            token = Token(TokenKind.STRING, "".join(pieces), start)
            return token, index + 1
        pieces.append(char)
        index += 1
    raise LexError("unterminated string literal", start)


def _read_number(text: str, start: int):
    """Read an integer or decimal literal."""
    index = start
    seen_dot = False
    while index < len(text):
        char = text[index]
        if char.isdigit():
            index += 1
            continue
        if char == "." and not seen_dot and index + 1 < len(text) and text[index + 1].isdigit():
            seen_dot = True
            index += 1
            continue
        break
    return Token(TokenKind.NUMBER, text[start:index], start), index


def _read_word(text: str, start: int):
    """Read an identifier or keyword.

    Identifiers may contain dots (qualified names like ``Part.p_name``)
    but may not start or end with one.
    """
    index = start + 1
    while index < len(text) and text[index] in _IDENT_CONT:
        index += 1
    # Do not swallow a trailing dot (e.g. end of sentence in free text).
    while index > start and text[index - 1] == ".":
        index -= 1
    word = text[start:index]
    lowered = word.lower()
    if lowered in _KEYWORDS:
        return Token(TokenKind.KEYWORD, lowered, start), index
    return Token(TokenKind.IDENTIFIER, word, start), index
