"""Random valid ETL flows over the full operation vocabulary.

The generator keeps a pool of *open* nodes (name + tracked output
schema).  Each step draws an operation builder, consumes one or two open
nodes and pushes the result back; at the end every open node is closed
with a Loader into its own ``out<N>`` target so the flow validates
(only loaders may be sinks) and the oracle can diff every branch.

The tracked schemas mirror :mod:`repro.etlmodel.propagation` rule for
rule — attribute order included — so generated flows execute rather
than die in validation.  Deliberate error flows (join attribute
collisions, unhashable key values) are still generated occasionally:
for those the oracle asserts *error parity* between the two engine
modes instead of result equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    JoinType,
    Loader,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions.types import ScalarType
from repro.fuzz import exprgen
from repro.fuzz.datagen import TableSpec, inject_unhashable, make_tables

_NUMERIC = (ScalarType.INTEGER, ScalarType.DECIMAL)

_AGG_RESULT = {
    "SUM": None,  # input type
    "MIN": None,
    "MAX": None,
    "AVERAGE": ScalarType.DECIMAL,
    "COUNT": ScalarType.INTEGER,
}


@dataclass
class FlowTrial:
    """One differential trial: source tables plus a flow to run."""

    tables: List[TableSpec]
    flow: EtlFlow
    seed: object = None
    notes: List[str] = field(default_factory=list)


Entry = Tuple[str, Dict[str, ScalarType]]


class _Builder:
    def __init__(
        self,
        rng: random.Random,
        flow: EtlFlow,
        allow_division: bool = True,
    ) -> None:
        self.rng = rng
        self.flow = flow
        self.allow_division = allow_division
        self._counter = 0
        self._column_counter = 0

    def fresh(self, stem: str) -> str:
        name = f"{stem}_{self._counter}"
        self._counter += 1
        return name

    def fresh_column(self, stem: str) -> str:
        name = f"{stem}{self._column_counter}"
        self._column_counter += 1
        return name


def _selection(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("sel")
    predicate = exprgen.random_predicate(
        builder.rng, schema, allow_division=builder.allow_division
    )
    builder.flow.add(Selection(node, predicate=predicate))
    builder.flow.connect(name, node)
    return node, dict(schema)


def _projection(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("proj")
    columns = tuple(
        builder.rng.sample(list(schema), builder.rng.randint(1, len(schema)))
    )
    cls = builder.rng.choice((Projection, Extraction))
    builder.flow.add(cls(node, columns=columns))
    builder.flow.connect(name, node)
    return node, {column: schema[column] for column in columns}


def _derive(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("der")
    expression, result_type = exprgen.random_derivation(
        builder.rng, schema, allow_division=builder.allow_division
    )
    if schema and builder.rng.random() < 0.15:
        output = builder.rng.choice(list(schema))  # overwrite in place
    else:
        output = builder.fresh_column("d")
    builder.flow.add(
        DerivedAttribute(node, output=output, expression=expression)
    )
    builder.flow.connect(name, node)
    new_schema = dict(schema)
    new_schema[output] = result_type
    return node, new_schema


def _rename(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("ren")
    olds = builder.rng.sample(
        list(schema), builder.rng.randint(1, min(2, len(schema)))
    )
    renaming = tuple(
        (old, builder.fresh_column("r")) for old in olds
    )
    builder.flow.add(Rename(node, renaming=renaming))
    builder.flow.connect(name, node)
    mapping = dict(renaming)
    return node, {
        mapping.get(column, column): t for column, t in schema.items()
    }


def _sort(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("sort")
    keys = tuple(
        builder.rng.sample(
            list(schema), builder.rng.randint(1, min(2, len(schema)))
        )
    )
    builder.flow.add(
        Sort(node, keys=keys, descending=builder.rng.random() < 0.5)
    )
    builder.flow.connect(name, node)
    return node, dict(schema)


def _distinct(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("dis")
    builder.flow.add(Distinct(node))
    builder.flow.connect(name, node)
    return node, dict(schema)


def _surrogate(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    node = builder.fresh("sk")
    output = builder.fresh_column("sk")
    business_keys = tuple(
        builder.rng.sample(
            list(schema), builder.rng.randint(0, min(2, len(schema)))
        )
    )
    builder.flow.add(
        SurrogateKey(node, output=output, business_keys=business_keys)
    )
    builder.flow.connect(name, node)
    new_schema = {output: ScalarType.INTEGER}
    new_schema.update(schema)
    return node, new_schema


def _aggregation(builder: _Builder, entry: Entry) -> Entry:
    name, schema = entry
    rng = builder.rng
    node = builder.fresh("agg")
    group_by = tuple(
        rng.sample(list(schema), rng.randint(0, min(2, len(schema))))
    )
    numeric = [c for c, t in schema.items() if t in _NUMERIC]
    specs = []
    new_schema = {column: schema[column] for column in group_by}
    for _ in range(rng.randint(1, 2)):
        function = rng.choice(list(_AGG_RESULT))
        if function in ("SUM", "AVERAGE"):
            if not numeric:
                function = rng.choice(("MIN", "MAX", "COUNT"))
                pool = list(schema)
            else:
                pool = numeric
        else:
            pool = list(schema)
        source = rng.choice(pool)
        output = builder.fresh_column("g")
        specs.append(AggregationSpec(output, function, source))
        fixed = _AGG_RESULT[function]
        new_schema[output] = fixed if fixed is not None else schema[source]
    builder.flow.add(
        Aggregation(node, group_by=group_by, aggregates=tuple(specs))
    )
    builder.flow.connect(name, node)
    return node, new_schema


def _union(builder: _Builder, entry: Entry) -> Entry:
    """Branch the entry through two fresh selections, then union them.

    The flow forbids duplicate edges, so a self-union needs distinct
    intermediate nodes; the selections also make the two branches carry
    different row subsets.
    """
    name, schema = entry
    branches = []
    for _ in range(2):
        branch, branch_schema = _selection(builder, (name, schema))
        branches.append(branch)
        schema = branch_schema
    node = builder.fresh("uni")
    builder.flow.add(UnionOp(node))
    builder.flow.connect(branches[0], node)
    builder.flow.connect(branches[1], node)
    return node, dict(schema)


def _join(builder: _Builder, left: Entry, right: Entry) -> Entry:
    rng = builder.rng
    left_name, left_schema = left
    right_name, right_schema = right
    arity = 2 if rng.random() < 0.3 and len(right_schema) >= 2 else 1
    left_keys = [rng.choice(list(left_schema)) for _ in range(arity)]
    right_keys = rng.sample(list(right_schema), arity)

    mapping: Dict[str, str] = {}
    if rng.random() < 0.35 and left_keys[0] not in right_schema:
        # Exercise the same-named-key path: the equi-joined column
        # collapses to one output attribute.
        mapping[right_keys[0]] = left_keys[0]
    joined_same = {
        mapping.get(r, r)
        for l, r in zip(left_keys, right_keys)
        if mapping.get(r, r) == l
    }
    keep_collision = rng.random() < 0.1  # error-parity trial
    for column in right_schema:
        target = mapping.get(column, column)
        if target in joined_same:
            continue
        if target in left_schema and not keep_collision:
            mapping[column] = builder.fresh_column("j")
    if mapping:
        rename_node = builder.fresh("jren")
        builder.flow.add(
            Rename(rename_node, renaming=tuple(mapping.items()))
        )
        builder.flow.connect(right_name, rename_node)
        right_name = rename_node
        right_schema = {
            mapping.get(column, column): t
            for column, t in right_schema.items()
        }
        right_keys = [mapping.get(key, key) for key in right_keys]

    node = builder.fresh("join")
    join_type = rng.choice(
        (JoinType.INNER, JoinType.INNER, JoinType.LEFT)
    )
    builder.flow.add(
        Join(
            node,
            left_keys=tuple(left_keys),
            right_keys=tuple(right_keys),
            join_type=join_type,
        )
    )
    builder.flow.connect(left_name, node)
    builder.flow.connect(right_name, node)
    joined_same_names = {
        r for l, r in zip(left_keys, right_keys) if l == r
    }
    new_schema = dict(left_schema)
    for column, t in right_schema.items():
        if column in joined_same_names or column in new_schema:
            continue
        new_schema[column] = t
    return node, new_schema


_UNARY_BUILDERS = (
    (_selection, 4),
    (_projection, 2),
    (_derive, 3),
    (_rename, 1),
    (_sort, 2),
    (_distinct, 2),
    (_surrogate, 1),
    (_aggregation, 2),
    (_union, 1),
)


def _weighted_choice(rng: random.Random, weighted):
    total = sum(weight for _, weight in weighted)
    mark = rng.random() * total
    for value, weight in weighted:
        mark -= weight
        if mark <= 0:
            return value
    return weighted[-1][0]


def build_flow(
    rng: random.Random,
    tables: List[TableSpec],
    allow_division: bool = True,
) -> EtlFlow:
    """A random structurally-valid flow over the given source tables.

    ``allow_division=False`` keeps every generated expression total (no
    ``/`` or ``%``), for oracles that rewrite flows and therefore cannot
    tolerate expressions whose errors depend on *where* they run.
    """
    flow = EtlFlow("fuzz")
    builder = _Builder(rng, flow, allow_division=allow_division)
    sources = list(tables)
    if rng.random() < 0.3:
        sources.append(rng.choice(tables))  # scan one table twice
    open_nodes: List[Entry] = []
    for spec in sources:
        name = builder.fresh("src")
        flow.add(Datastore(name, table=spec.name))
        open_nodes.append((name, dict(spec.schema)))

    for _ in range(rng.randint(2, 8)):
        if len(open_nodes) >= 2 and rng.random() < 0.45:
            right = open_nodes.pop(rng.randrange(len(open_nodes)))
            left = open_nodes.pop(rng.randrange(len(open_nodes)))
            open_nodes.append(_join(builder, left, right))
            continue
        index = rng.randrange(len(open_nodes))
        entry = open_nodes.pop(index)
        build = _weighted_choice(rng, _UNARY_BUILDERS)
        open_nodes.append(build(builder, entry))

    for position, (name, _schema) in enumerate(open_nodes):
        loader = builder.fresh("load")
        flow.add(Loader(loader, table=f"out{position}", mode="insert"))
        flow.connect(name, loader)
    flow.check()
    return flow


def build_flow_trial(seed: int) -> FlowTrial:
    """The deterministic flow trial for a seed.

    String-seeding :class:`random.Random` is stable across processes
    and platforms (unlike hashing), so ``seed`` alone reproduces the
    trial anywhere.
    """
    rng = random.Random(f"flow:{seed}")
    tables = make_tables(rng)
    notes = []
    if rng.random() < 0.12 and inject_unhashable(rng, tables):
        notes.append("unhashable value injected")
    flow = build_flow(rng, tables)
    return FlowTrial(tables=tables, flow=flow, seed=seed, notes=notes)
