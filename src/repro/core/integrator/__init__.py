"""The Design Integrator (§2.3): MD and ETL consolidation modules.

* :mod:`repro.core.integrator.md_integrator` — the MD Schema Integrator
  with its four stages (matching facts, matching dimensions,
  complementing, integration) driven by the structural-complexity cost
  model [6],
* :mod:`repro.core.integrator.etl_integrator` — the ETL Process
  Integrator: largest-overlap consolidation boosted by equivalence-rule
  alignment and checked against the configurable cost model [5].
"""

from repro.core.integrator.etl_integrator import EtlConsolidation, EtlIntegrator
from repro.core.integrator.md_integrator import MDIntegration, MDIntegrator

__all__ = [
    "EtlConsolidation",
    "EtlIntegrator",
    "MDIntegration",
    "MDIntegrator",
]
