"""Fluent builder for information requirements.

>>> requirement = (
...     RequirementBuilder("IR1", "revenue per part from Spain")
...     .measure("revenue",
...              "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
...              "SUM")
...     .per("Part_p_name")
...     .where("Nation_n_name = 'SPAIN'")
...     .build()
... )
"""

from __future__ import annotations

from typing import Union

from repro.core.requirements.model import (
    InformationRequirement,
    RequirementAggregation,
    RequirementDimension,
    RequirementMeasure,
    RequirementSlicer,
)
from repro.mdmodel.model import AggregationFunction


class RequirementBuilder:
    """Accumulates requirement parts; aggregations are derived from the
    per-measure function unless added explicitly."""

    def __init__(self, requirement_id: str, description: str = "") -> None:
        self._requirement = InformationRequirement(
            id=requirement_id, description=description
        )
        self._measure_functions = {}

    def measure(
        self,
        name: str,
        expression: str,
        aggregation: Union[str, AggregationFunction] = AggregationFunction.SUM,
    ) -> "RequirementBuilder":
        """Add a measure with its default aggregation function."""
        self._requirement.measures.append(
            RequirementMeasure(name=name, expression=expression)
        )
        if isinstance(aggregation, str):
            aggregation = AggregationFunction.parse(aggregation)
        self._measure_functions[name] = aggregation
        return self

    def per(self, *properties: str) -> "RequirementBuilder":
        """Add analysis dimensions (datatype-property ids)."""
        for property_id in properties:
            self._requirement.dimensions.append(
                RequirementDimension(property=property_id)
            )
        return self

    def where(self, predicate: str) -> "RequirementBuilder":
        """Add a slicer predicate."""
        self._requirement.slicers.append(RequirementSlicer(predicate=predicate))
        return self

    def aggregate(
        self,
        dimension: str,
        measure: str,
        function: Union[str, AggregationFunction],
        order: int = 1,
    ) -> "RequirementBuilder":
        """Add an explicit xRQ-style aggregation entry."""
        if isinstance(function, str):
            function = AggregationFunction.parse(function)
        self._requirement.aggregations.append(
            RequirementAggregation(
                order=order, dimension=dimension, measure=measure,
                function=function,
            )
        )
        return self

    def build(self) -> InformationRequirement:
        """Finish the requirement, materialising default aggregations."""
        if not self._requirement.aggregations:
            for measure in self._requirement.measures:
                function = self._measure_functions.get(
                    measure.name, AggregationFunction.SUM
                )
                for dimension in self._requirement.dimensions:
                    self._requirement.aggregations.append(
                        RequirementAggregation(
                            order=1,
                            dimension=dimension.property,
                            measure=measure.name,
                            function=function,
                        )
                    )
        return self._requirement
