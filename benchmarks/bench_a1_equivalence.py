"""A1 — ablation: equivalence-rule alignment in the ETL integrator.

"ETL Process Integrator aligns the order of ETL operations by applying
generic equivalence rules" (§2.3).  This ablation measures the reuse
found with and without the alignment, over flow pairs that compute the
same thing with operations in different orders (the situation alignment
exists for).  Expected shape: aligned reuse >= unaligned reuse, strictly
greater on reordered pairs.
"""

import pytest

from repro.core.integrator import EtlIntegrator
from repro.etlmodel import (
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Extraction,
    Loader,
    Selection,
)


def reordered_pair(variant_count=4):
    """Flows applying the same filter + derive + extract in different
    orders (every legal permutation of the unary segment)."""
    stages = {
        "sel": lambda: Selection("SEL", predicate="a = 'x' and b = 'y'"),
        "ext": lambda: Extraction("EXT", columns=("a", "b", "c")),
        "der": lambda: DerivedAttribute("DER", output="d", expression="c + c"),
    }
    orders = [
        ("sel", "ext", "der"),
        ("ext", "sel", "der"),
        ("ext", "der", "sel"),
        ("der", "ext", "sel"),
    ][:variant_count]
    flows = []
    for index, order in enumerate(orders):
        flow = EtlFlow(f"variant_{index}", requirements={f"R{index}"})
        chain = [
            Datastore("SRC", table="t", columns=("a", "b", "c")),
        ]
        chain.extend(stages[stage]() for stage in order)
        chain.append(Loader(f"LOAD_{index}", table=f"out_{index}"))
        flow.chain(*chain)
        flows.append(flow)
    return flows


def consolidate_pairwise(flows, align):
    integrator = EtlIntegrator(align=align)
    unified = flows[0].copy()
    reused = 0
    for flow in flows[1:]:
        result = integrator.consolidate(unified, flow)
        unified = result.flow
        reused += len(result.reused)
    return unified, reused


class TestAblation:
    def test_alignment_finds_reordered_overlap(self):
        flows = reordered_pair()
        __, aligned_reuse = consolidate_pairwise(flows, align=True)
        __, unaligned_reuse = consolidate_pairwise(flows, align=False)
        assert aligned_reuse > unaligned_reuse

    def test_aligned_unified_flow_is_smaller(self):
        flows = reordered_pair()
        aligned, __ = consolidate_pairwise(flows, align=True)
        unaligned, __ = consolidate_pairwise(flows, align=False)
        assert len(aligned) < len(unaligned)

    def test_both_results_execute_identically(self):
        from repro.engine import Database, Executor, TableDef
        from repro.expressions import ScalarType

        flows = reordered_pair()
        results = {}
        for align in (True, False):
            database = Database()
            database.create_table(TableDef(
                "t",
                {"a": ScalarType.STRING, "b": ScalarType.STRING,
                 "c": ScalarType.STRING},
            ))
            database.insert_many("t", [
                {"a": "x", "b": "y", "c": "1"},
                {"a": "x", "b": "z", "c": "2"},
                {"a": "q", "b": "y", "c": "3"},
            ])
            unified, __ = consolidate_pairwise(flows, align=align)
            Executor(database).execute(unified)
            results[align] = {
                table: database.scan(table).rows
                for table in ("out_0", "out_1", "out_2", "out_3")
            }
        for table in results[True]:
            key = lambda row: sorted(row.items())
            assert sorted(results[True][table], key=key) == sorted(
                results[False][table], key=key
            )

    def test_alignment_no_worse_on_generated_flows(self):
        from repro.core.interpreter import Interpreter
        from repro.sources import tpch

        from benchmarks._workloads import requirement_corpus

        interpreter = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        )
        # The first three corpus requirements have distinct fact tables,
        # so raw pairwise consolidation is well-defined without the
        # facade's loader retargeting.
        partials = [
            interpreter.interpret(requirement).etl_flow
            for requirement in requirement_corpus(3)
        ]
        aligned, aligned_reuse = consolidate_pairwise(partials, align=True)
        unaligned, unaligned_reuse = consolidate_pairwise(partials, align=False)
        assert len(aligned) <= len(unaligned)


@pytest.mark.parametrize("align", [True, False])
def test_consolidation_speed(benchmark, align):
    from repro.core.interpreter import Interpreter
    from repro.sources import tpch

    from benchmarks._workloads import requirement_corpus

    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    partials = [
        interpreter.interpret(requirement).etl_flow
        for requirement in requirement_corpus(3)
    ]
    benchmark.group = "A1 consolidation"
    benchmark.name = "aligned" if align else "unaligned"
    unified, __ = benchmark(lambda: consolidate_pairwise(partials, align))
    assert unified.validate() == []
