"""Dimension conformance tests and merge utilities.

The MD Schema Integrator must decide when two dimensions coming from
different partial designs denote the *same* analysis axis and can be
conformed (shared by several facts).  This module gives it:

* :func:`levels_match` — whether two levels describe the same class
  (by ontology concept provenance, or by name + attribute overlap),
* :func:`dimensions_conformable` — whether two dimensions share matching
  levels and their hierarchies are order-compatible,
* :func:`merge_levels` / :func:`merge_dimensions` — the union merge that
  the integrator applies when the user (or the cost model) accepts a
  match.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import MDError
from repro.mdmodel.model import Dimension, Hierarchy, Level, SCDPolicy

#: Change-tracking strength: a merge keeps the stronger policy, so a
#: level that keeps history for one requirement keeps it for all.
_SCD_STRENGTH = {SCDPolicy.TYPE0: 0, SCDPolicy.TYPE1: 1, SCDPolicy.TYPE2: 2}


def strongest_policy(first: SCDPolicy, second: SCDPolicy) -> SCDPolicy:
    """The stronger of two change-tracking policies (history wins)."""
    if _SCD_STRENGTH[second] > _SCD_STRENGTH[first]:
        return second
    return first


def levels_match(first: Level, second: Level) -> bool:
    """Whether two levels denote the same real-world class.

    Ontology provenance wins: two levels generated from the same concept
    always match, ones from different concepts never do.  Without
    provenance, match on equal name or on sharing at least half of the
    smaller attribute set.
    """
    if first.concept is not None and second.concept is not None:
        return first.concept == second.concept
    if first.name == second.name:
        return True
    first_names = set(first.attribute_names())
    second_names = set(second.attribute_names())
    if not first_names or not second_names:
        return False
    overlap = len(first_names & second_names)
    return overlap * 2 >= min(len(first_names), len(second_names))


def find_matching_level(level: Level, dimension: Dimension) -> Optional[Level]:
    """The level of ``dimension`` that matches ``level``, if any."""
    for candidate in dimension.levels.values():
        if levels_match(level, candidate):
            return candidate
    return None


def level_matches(
    first: Dimension, second: Dimension
) -> List[Tuple[str, str]]:
    """All (first level, second level) name pairs that match."""
    pairs = []
    for level in first.levels.values():
        counterpart = find_matching_level(level, second)
        if counterpart is not None:
            pairs.append((level.name, counterpart.name))
    return pairs


def hierarchies_order_compatible(
    first: Dimension, second: Dimension, pairs: List[Tuple[str, str]]
) -> bool:
    """Whether matched levels roll up in the same order on both sides.

    If first says City -> Country and second says Country -> City, the
    dimensions cannot be conformed.
    """
    mapping = dict(pairs)
    for finer, coarser in _rollup_pairs(first):
        if finer in mapping and coarser in mapping:
            other_finer, other_coarser = mapping[finer], mapping[coarser]
            if second.rolls_up(other_coarser, other_finer) and not second.rolls_up(
                other_finer, other_coarser
            ):
                return False
    return True


def _rollup_pairs(dimension: Dimension):
    for hierarchy in dimension.hierarchies:
        for index, finer in enumerate(hierarchy.levels):
            for coarser in hierarchy.levels[index + 1 :]:
                yield finer, coarser


def dimensions_conformable(first: Dimension, second: Dimension) -> bool:
    """Whether the two dimensions can be merged into one conformed axis."""
    pairs = level_matches(first, second)
    if not pairs:
        return False
    return hierarchies_order_compatible(first, second, pairs)


def merge_levels(target: Level, incoming: Level) -> Level:
    """Union-merge ``incoming`` into a copy of ``target``.

    Keeps target's name and key; adds attributes the target lacks.
    Raises :class:`MDError` if the levels do not match.
    """
    if not levels_match(target, incoming):
        raise MDError(
            f"levels {target.name!r} and {incoming.name!r} do not match"
        )
    merged = Level(
        name=target.name,
        attributes=list(target.attributes),
        key=target.key,
        concept=target.concept if target.concept is not None else incoming.concept,
        scd_policy=strongest_policy(target.scd_policy, incoming.scd_policy),
    )
    existing = set(merged.attribute_names())
    for attribute in incoming.attributes:
        if attribute.name not in existing:
            merged.attributes.append(attribute)
            existing.add(attribute.name)
    return merged


def merge_dimensions(target: Dimension, incoming: Dimension) -> Dimension:
    """Union-merge two conformable dimensions into a new dimension.

    Matched levels are merged attribute-wise; unmatched incoming levels
    and hierarchies are added.  Hierarchies equal to an existing one are
    dropped, others are added under a disambiguated name.  Raises
    :class:`MDError` when the dimensions are not conformable.
    """
    if not dimensions_conformable(target, incoming):
        raise MDError(
            f"dimensions {target.name!r} and {incoming.name!r} are not "
            f"conformable"
        )
    merged = Dimension(
        name=target.name,
        requirements=set(target.requirements) | set(incoming.requirements),
    )
    incoming_to_target = {}
    for level in target.levels.values():
        merged.add_level(
            Level(
                name=level.name,
                attributes=list(level.attributes),
                key=level.key,
                concept=level.concept,
                scd_policy=level.scd_policy,
            )
        )
    for level in incoming.levels.values():
        counterpart = find_matching_level(level, target)
        if counterpart is not None:
            incoming_to_target[level.name] = counterpart.name
            merged.levels[counterpart.name] = merge_levels(
                merged.levels[counterpart.name], level
            )
        else:
            incoming_to_target[level.name] = level.name
            merged.add_level(
                Level(
                    name=level.name,
                    attributes=list(level.attributes),
                    key=level.key,
                    concept=level.concept,
                    scd_policy=level.scd_policy,
                )
            )
    for hierarchy in target.hierarchies:
        merged.add_hierarchy(Hierarchy(hierarchy.name, list(hierarchy.levels)))
    for hierarchy in incoming.hierarchies:
        renamed = [incoming_to_target[name] for name in hierarchy.levels]
        if any(renamed == existing.levels for existing in merged.hierarchies):
            continue
        name = hierarchy.name
        if any(existing.name == name for existing in merged.hierarchies):
            name = f"{incoming.name}_{hierarchy.name}"
        suffix = 2
        while any(existing.name == name for existing in merged.hierarchies):
            name = f"{incoming.name}_{hierarchy.name}_{suffix}"
            suffix += 1
        merged.add_hierarchy(Hierarchy(name, renamed))
    return merged
