"""Time-and-evolution rules (QRY5xx) over hand-built schemas.

Each rule targets a state the design-evolution operators can produce
(a retype breaking additivity, a merge pulling in a colliding or
reserved attribute name, a split leaving a policy above the base
level), so the fixtures mimic those outcomes directly.
"""

import pytest

from repro.analysis import lint
from repro.errors import LintError
from repro.core.quarry import Quarry
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    AggregationFunction,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
    SCDPolicy,
)
from repro.sources import tpch

from tests.core.conftest import build_revenue_requirement


def attribute(name, type=ScalarType.STRING):
    return LevelAttribute(name=name, type=type)


def versioned_dimension(name="supplier", policy=SCDPolicy.TYPE2):
    dimension = Dimension(name=name)
    dimension.add_level(
        Level(
            name="base",
            attributes=[attribute("s_name"), attribute("s_phone")],
            scd_policy=policy,
        )
    )
    dimension.add_level(Level(name="nation", attributes=[attribute("n_name")]))
    dimension.add_hierarchy(Hierarchy(name="geo", levels=["base", "nation"]))
    return dimension


def star(dimension):
    schema = MDSchema(name="star")
    schema.add_dimension(dimension)
    fact = Fact(name="sales")
    fact.add_measure(Measure(name="amount", expression="price"))
    fact.link_dimension(dimension.name, "base")
    schema.add_fact(fact)
    return schema


def test_sound_versioned_star_is_clean():
    assert lint(star(versioned_dimension())).codes() == []


class TestQRY501:
    def test_summed_non_numeric_measure_is_an_error(self):
        schema = star(versioned_dimension())
        schema.fact("sales").add_measure(
            Measure(
                name="label",
                expression="name",
                type=ScalarType.STRING,
                aggregation=AggregationFunction.SUM,
            )
        )
        report = lint(schema)
        assert [d.attribute for d in report.by_code("QRY501")] == ["label"]
        assert report.by_code("QRY501")[0].severity.value == "error"

    def test_counted_string_measure_is_fine(self):
        schema = star(versioned_dimension())
        schema.fact("sales").add_measure(
            Measure(
                name="label",
                expression="name",
                type=ScalarType.STRING,
                aggregation=AggregationFunction.COUNT,
            )
        )
        assert not lint(schema).by_code("QRY501")


class TestQRY502:
    def test_versioned_level_without_key(self):
        dimension = versioned_dimension()
        dimension.level("base").key = None
        report = lint(star(dimension))
        diagnostics = report.by_code("QRY502")
        assert [d.attribute for d in diagnostics] == ["base"]
        assert diagnostics[0].severity.value == "error"

    def test_type2_level_with_only_its_key_warns(self):
        dimension = Dimension(name="supplier")
        dimension.add_level(
            Level(
                name="base",
                attributes=[attribute("s_name")],
                scd_policy=SCDPolicy.TYPE2,
            )
        )
        dimension.add_hierarchy(Hierarchy(name="h", levels=["base"]))
        diagnostics = lint(star(dimension)).by_code("QRY502")
        assert len(diagnostics) == 1
        assert diagnostics[0].severity.value == "warning"

    def test_type1_single_attribute_is_fine(self):
        dimension = Dimension(name="supplier")
        dimension.add_level(
            Level(
                name="base",
                attributes=[attribute("s_name")],
                scd_policy=SCDPolicy.TYPE1,
            )
        )
        dimension.add_hierarchy(Hierarchy(name="h", levels=["base"]))
        assert not lint(star(dimension)).by_code("QRY502")


class TestQRY503:
    def test_window_column_shadowing(self):
        dimension = versioned_dimension()
        dimension.level("base").attributes.append(
            attribute("scd_valid_from", ScalarType.DATE)
        )
        diagnostics = lint(star(dimension)).by_code("QRY503")
        assert [d.attribute for d in diagnostics] == ["scd_valid_from"]

    def test_reserved_name_in_unversioned_dimension_is_fine(self):
        dimension = versioned_dimension(policy=SCDPolicy.TYPE0)
        dimension.level("base").attributes.append(
            attribute("scd_valid_from", ScalarType.DATE)
        )
        assert not lint(star(dimension)).by_code("QRY503")


class TestQRY504:
    def test_policy_above_base_level_warns(self):
        dimension = versioned_dimension(policy=SCDPolicy.TYPE0)
        dimension.level("nation").scd_policy = SCDPolicy.TYPE2
        diagnostics = lint(star(dimension)).by_code("QRY504")
        assert [d.attribute for d in diagnostics] == ["nation"]
        assert diagnostics[0].severity.value == "warning"

    def test_policy_at_base_level_is_fine(self):
        assert not lint(star(versioned_dimension())).by_code("QRY504")


class TestQRY505:
    def test_duplicate_attribute_in_versioned_dimension(self):
        dimension = versioned_dimension()
        dimension.level("nation").attributes.append(attribute("s_phone"))
        diagnostics = lint(star(dimension)).by_code("QRY505")
        assert [d.attribute for d in diagnostics] == ["s_phone"]

    def test_duplicate_in_unversioned_dimension_stays_qry406(self):
        dimension = versioned_dimension(policy=SCDPolicy.TYPE0)
        dimension.level("nation").attributes.append(attribute("s_phone"))
        report = lint(star(dimension))
        assert not report.by_code("QRY505")
        assert report.by_code("QRY406")  # the generic duplicate rule


class TestDeployGate:
    def test_qry5xx_error_blocks_deploy(self):
        """An ERROR-severity time rule gates deploy() like any other."""
        quarry = Quarry(
            tpch.ontology(),
            tpch.schema(),
            tpch.mappings(),
            scd_policies={"Supplier": "type2"},
        )
        quarry.add_requirement(build_revenue_requirement("IR1"))
        md_schema, __ = quarry.unified_design()
        # Simulate a bad merge: an attribute shadowing a window column.
        md_schema.dimension("Supplier").level("Supplier").attributes.append(
            attribute("scd_is_current")
        )
        with pytest.raises(LintError) as excinfo:
            quarry.deploy("postgres")
        assert "QRY503" in {d.code for d in excinfo.value.diagnostics}
