"""Source schema mappings: grounding ontology elements in source tables.

The Communication & Metadata layer stores, next to each domain ontology,
the *source schema mappings* "that define the mappings of the ontological
concepts in terms of underlying data sources" (§2.5).  The model here:

* a :class:`ConceptMapping` binds a concept to a table (plus the
  identifier columns that realise the concept's instances),
* a :class:`PropertyMapping` binds a datatype property to a column of the
  concept's table,
* an object property is realised by the foreign key between the mapped
  tables of its domain and range concepts; :meth:`SourceMappings.join_columns`
  resolves the join condition the ETL generator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import MappingError
from repro.ontology.model import Ontology
from repro.sources.schema import SourceSchema


@dataclass(frozen=True)
class ConceptMapping:
    """Binding of a concept to a source table."""

    concept: str
    table: str
    key_columns: Tuple[str, ...]


@dataclass(frozen=True)
class PropertyMapping:
    """Binding of a datatype property to a column."""

    property: str
    table: str
    column: str


@dataclass
class SourceMappings:
    """All mappings from one ontology onto one source schema."""

    ontology_name: str
    source_name: str
    _concepts: Dict[str, ConceptMapping] = field(default_factory=dict)
    _properties: Dict[str, PropertyMapping] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def map_concept(
        self, concept: str, table: str, key_columns: Tuple[str, ...]
    ) -> "SourceMappings":
        if concept in self._concepts:
            raise MappingError(f"concept {concept!r} is already mapped")
        self._concepts[concept] = ConceptMapping(concept, table, tuple(key_columns))
        return self

    def map_property(self, property_id: str, column: str) -> "SourceMappings":
        """Map a datatype property to a column of its concept's table.

        The owning concept must already be mapped; the column lives in
        that concept's table.
        """
        if property_id in self._properties:
            raise MappingError(f"property {property_id!r} is already mapped")
        self._properties[property_id] = PropertyMapping(
            property_id, table="", column=column
        )
        return self

    # -- evolution ----------------------------------------------------------

    def rename_concept(self, old_id: str, new_id: str) -> "SourceMappings":
        """Follow an ontology concept rename (same table binding)."""
        if old_id not in self._concepts:
            raise MappingError(f"concept {old_id!r} has no source mapping")
        if new_id != old_id and new_id in self._concepts:
            raise MappingError(f"concept {new_id!r} is already mapped")
        mapping = self._concepts.pop(old_id)
        self._concepts[new_id] = ConceptMapping(
            new_id, mapping.table, mapping.key_columns
        )
        return self

    def unmap_concept(self, concept: str) -> "SourceMappings":
        """Drop a concept's table binding (after a concept merge)."""
        if concept not in self._concepts:
            raise MappingError(f"concept {concept!r} has no source mapping")
        del self._concepts[concept]
        return self

    def snapshot(self) -> dict:
        """A restorable copy of the mapping tables (entries are frozen)."""
        return {
            "concepts": dict(self._concepts),
            "properties": dict(self._properties),
        }

    def restore(self, snapshot: dict) -> None:
        """Roll the mappings back to a :meth:`snapshot` (in place)."""
        self._concepts = dict(snapshot["concepts"])
        self._properties = dict(snapshot["properties"])

    # -- lookup ---------------------------------------------------------------

    def concept_mapping(self, concept: str) -> ConceptMapping:
        try:
            return self._concepts[concept]
        except KeyError:
            raise MappingError(f"concept {concept!r} has no source mapping") from None

    def has_concept_mapping(self, concept: str) -> bool:
        return concept in self._concepts

    def property_column(self, property_id: str) -> str:
        try:
            return self._properties[property_id].column
        except KeyError:
            raise MappingError(
                f"property {property_id!r} has no source mapping"
            ) from None

    def has_property_mapping(self, property_id: str) -> bool:
        return property_id in self._properties

    def mapped_concepts(self) -> List[str]:
        return list(self._concepts)

    def mapped_properties(self) -> List[str]:
        return list(self._properties)

    # -- join resolution ---------------------------------------------------------

    def join_columns(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        property_id: str,
        forward: bool,
    ) -> Tuple[str, List[Tuple[str, str]], str]:
        """Resolve the join realising an object property.

        Returns ``(left_table, [(left_col, right_col), ...], right_table)``
        where *left* is the traversal source (the property's domain when
        ``forward``) and *right* the traversal target.  The join columns
        come from the FK between the mapped tables; the FK may sit on
        either side.
        """
        prop = ontology.object_property(property_id)
        domain_map = self.concept_mapping(prop.domain)
        range_map = self.concept_mapping(prop.range)
        domain_table = schema.table(domain_map.table)
        range_table = schema.table(range_map.table)

        if domain_table.name == range_table.name:
            # Both concepts realised by one table (a design-level split):
            # the "join" is the identity on the shared key columns.
            pairs = [(column, column) for column in domain_map.key_columns]
            return domain_table.name, pairs, range_table.name

        fk = domain_table.foreign_key_to(range_table.name)
        if fk is not None:
            pairs = list(zip(fk.columns, fk.target_columns))
            if forward:
                return domain_table.name, pairs, range_table.name
            flipped = [(right, left) for left, right in pairs]
            return range_table.name, flipped, domain_table.name

        fk = range_table.foreign_key_to(domain_table.name)
        if fk is not None:
            pairs = list(zip(fk.target_columns, fk.columns))
            if forward:
                return domain_table.name, pairs, range_table.name
            flipped = [(right, left) for left, right in pairs]
            return range_table.name, flipped, domain_table.name

        raise MappingError(
            f"no foreign key realises property {property_id!r} between "
            f"{domain_table.name!r} and {range_table.name!r}"
        )

    # -- validation ------------------------------------------------------------

    def validate(self, ontology: Ontology, schema: SourceSchema) -> List[str]:
        """Cross-check mappings against ontology and schema.

        Returns a list of human-readable problems (empty when valid):
        unknown elements, missing tables/columns, properties mapped
        without their concept, and object properties with no realising
        foreign key.
        """
        problems: List[str] = []
        for concept_id, mapping in self._concepts.items():
            if not ontology.has_concept(concept_id):
                problems.append(f"mapped concept {concept_id!r} not in ontology")
                continue
            if not schema.has_table(mapping.table):
                problems.append(
                    f"concept {concept_id!r} mapped to unknown table "
                    f"{mapping.table!r}"
                )
                continue
            table = schema.table(mapping.table)
            for column in mapping.key_columns:
                if not table.has_column(column):
                    problems.append(
                        f"concept {concept_id!r}: key column {column!r} "
                        f"not in table {mapping.table!r}"
                    )
        for property_id in self._properties:
            if not ontology.has_datatype_property(property_id):
                problems.append(f"mapped property {property_id!r} not in ontology")
                continue
            prop = ontology.datatype_property(property_id)
            if prop.concept not in self._concepts:
                problems.append(
                    f"property {property_id!r} mapped but its concept "
                    f"{prop.concept!r} is not"
                )
                continue
            table = self._concepts[prop.concept].table
            if schema.has_table(table):
                if not schema.table(table).has_column(
                    self._properties[property_id].column
                ):
                    problems.append(
                        f"property {property_id!r}: column "
                        f"{self._properties[property_id].column!r} not in "
                        f"table {table!r}"
                    )
        for prop in ontology.object_properties():
            both_mapped = (
                prop.domain in self._concepts and prop.range in self._concepts
            )
            if not both_mapped:
                continue
            try:
                self.join_columns(ontology, schema, prop.id, forward=True)
            except MappingError as exc:
                problems.append(str(exc))
        return problems

    def table_of(self, concept: str) -> str:
        """Shorthand: the table a concept is mapped to."""
        return self.concept_mapping(concept).table

    def property_table(self, ontology: Ontology, property_id: str) -> str:
        """The table holding a datatype property's column."""
        prop = ontology.datatype_property(property_id)
        return self.concept_mapping(prop.concept).table
