"""The typed metadata catalog over the document store.

"the Communication & Metadata layer also serves as a repository for the
metadata that are produced and used during the DW design lifecycle"
(§2.5): information requirements, partial designs (per requirement),
unified designs, domain ontologies and source schema mappings.

Artefacts cross the boundary in their XML formats (xRQ/xMD/xLM) and are
stored as JSON documents via the generic converter — mirroring the
MongoDB + XML-JSON-XML parser of §2.6.

A repository is a *view* over a shared document store, scoped by a
session **namespace**: the default namespace (``""``) uses the plain
collection names, every other namespace prefixes them
(``session::<ns>::<collection>``), so many design sessions coexist in
one store without ever seeing each other's artefacts.  Catalog indexes
are declared per namespace.  The global ``sessions`` collection (never
namespaced) registers which sessions live in the store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.requirements.model import InformationRequirement
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema
from repro.ontology import io as ontology_io
from repro.ontology.model import Ontology
from repro.repository.documents import Collection, DocumentStore
from repro.repository import store as file_store
from repro.xformats import xlm, xmd, xrq
from repro.xformats.xmljson import json_to_xml, xml_to_json

REQUIREMENTS = "requirements"
PARTIAL_DESIGNS = "partial_designs"
UNIFIED_DESIGNS = "unified_designs"
ONTOLOGIES = "ontologies"
DEPLOYMENTS = "deployments"
BUS_EVENTS = "bus_events"
CHECKPOINTS = "checkpoints"
SESSION_STATE = "session_state"
#: Global (never namespaced) registry of the sessions in a store.
SESSIONS = "sessions"

#: The session name that maps to the unprefixed namespace — what every
#: pre-session store (and the `Quarry` facade) uses.
DEFAULT_SESSION = "default"


def namespaced(collection_name: str, namespace: str) -> str:
    """The physical collection name for a logical one in a namespace."""
    if not namespace:
        return collection_name
    return f"session::{namespace}::{collection_name}"


def namespace_for_session(session: str) -> str:
    """Map a session name to its store namespace (default -> ``""``)."""
    return "" if session in ("", DEFAULT_SESSION) else session


#: Secondary indexes the catalog declares on its collections.  The
#: partial-design ``requirement`` index serves the hot lookup of the
#: lifecycle (cascade-deleting the partial designs of a requirement);
#: ``kind`` indexes serve catalog-wide audits; ``design`` serves the
#: deployment history lookup; ``topic`` serves per-topic bus replay.
CATALOG_INDEXES = {
    REQUIREMENTS: ("kind",),
    PARTIAL_DESIGNS: ("requirement", "kind"),
    UNIFIED_DESIGNS: ("kind",),
    DEPLOYMENTS: ("design", "platform"),
    BUS_EVENTS: ("topic",),
    CHECKPOINTS: ("kind",),
}


class MetadataRepository:
    """Typed facade over one session namespace of a document store."""

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        namespace: str = "",
    ) -> None:
        self._store = store if store is not None else DocumentStore()
        self._namespace = namespace
        for collection_name, paths in CATALOG_INDEXES.items():
            collection = self._collection(collection_name)
            for path in paths:
                collection.create_index(path)

    @property
    def store(self) -> DocumentStore:
        return self._store

    @property
    def namespace(self) -> str:
        return self._namespace

    def _collection(self, name: str) -> Collection:
        return self._store.collection(namespaced(name, self._namespace))

    # -- session views ----------------------------------------------------------

    def for_session(self, session: str) -> "MetadataRepository":
        """A repository view scoped to ``session``, over the same store.

        The default session maps to the unprefixed namespace, so
        ``for_session("default")`` on a default-namespace repository is
        the repository itself — pre-session code keeps its exact
        collection layout.
        """
        namespace = namespace_for_session(session)
        if namespace == self._namespace:
            return self
        return MetadataRepository(store=self._store, namespace=namespace)

    def register_session(self, session: str) -> str:
        """Record a session in the store-global session registry."""
        self._store.collection(SESSIONS).replace(
            {"_id": session, "kind": "session"}
        )
        return session

    def session_names(self) -> List[str]:
        """Registered sessions, in registration order."""
        return self._store.collection(SESSIONS).ids()

    # -- requirements -----------------------------------------------------------

    def save_requirement(self, requirement: InformationRequirement) -> str:
        """Store a requirement (xRQ -> JSON document)."""
        document = {
            "_id": requirement.id,
            "kind": "requirement",
            "description": requirement.description,
            "xrq": xml_to_json(xrq.dumps(requirement)),
        }
        self._collection(REQUIREMENTS).replace(document)
        return requirement.id

    def load_requirement(self, requirement_id: str) -> InformationRequirement:
        document = self._collection(REQUIREMENTS).get(requirement_id)
        return xrq.loads(json_to_xml(document["xrq"]))

    def delete_requirement(self, requirement_id: str) -> None:
        self._collection(REQUIREMENTS).delete(requirement_id)
        self._collection(PARTIAL_DESIGNS).delete_many(
            {"requirement": requirement_id}
        )

    def requirement_ids(self) -> List[str]:
        return self._collection(REQUIREMENTS).ids()

    # -- partial designs ---------------------------------------------------------

    def save_partial_design(
        self,
        requirement_id: str,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> str:
        """Store the partial designs generated for one requirement."""
        doc_id = f"partial::{requirement_id}"
        document = {
            "_id": doc_id,
            "kind": "partial_design",
            "requirement": requirement_id,
            "xmd": xml_to_json(xmd.dumps(md_schema)),
            "xlm": xml_to_json(xlm.dumps(etl_flow)),
        }
        self._collection(PARTIAL_DESIGNS).replace(document)
        return doc_id

    def load_partial_design(
        self, requirement_id: str
    ) -> Tuple[MDSchema, EtlFlow]:
        document = self._collection(PARTIAL_DESIGNS).get(
            f"partial::{requirement_id}"
        )
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
        )

    def partial_design_ids(self) -> List[str]:
        return [
            document["requirement"]
            for document in self._collection(PARTIAL_DESIGNS).find()
        ]

    # -- unified designs --------------------------------------------------------------

    def save_unified_design(
        self,
        name: str,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        satisfied_requirements: List[str],
    ) -> str:
        """Store a unified design solution version."""
        document = {
            "_id": name,
            "kind": "unified_design",
            "requirements": sorted(satisfied_requirements),
            "xmd": xml_to_json(xmd.dumps(md_schema)),
            "xlm": xml_to_json(xlm.dumps(etl_flow)),
        }
        self._collection(UNIFIED_DESIGNS).replace(document)
        return name

    def load_unified_design(self, name: str) -> Tuple[MDSchema, EtlFlow, List[str]]:
        document = self._collection(UNIFIED_DESIGNS).get(name)
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
            list(document["requirements"]),
        )

    def unified_design_names(self) -> List[str]:
        return self._collection(UNIFIED_DESIGNS).ids()

    # -- integration checkpoints --------------------------------------------------------

    def save_checkpoint(
        self, position: int, md_schema: MDSchema, etl_flow: EtlFlow
    ) -> str:
        """Store the unified design checkpoint after fold position ``position``."""
        doc_id = f"ckpt::{position:06d}"
        self._collection(CHECKPOINTS).replace(
            {
                "_id": doc_id,
                "kind": "checkpoint",
                "position": position,
                "xmd": xml_to_json(xmd.dumps(md_schema)),
                "xlm": xml_to_json(xlm.dumps(etl_flow)),
            }
        )
        return doc_id

    def load_checkpoint(self, position: int) -> Tuple[MDSchema, EtlFlow]:
        document = self._collection(CHECKPOINTS).get(f"ckpt::{position:06d}")
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
        )

    def truncate_checkpoints(self, start: int) -> int:
        """Drop every checkpoint at fold position >= ``start``."""
        return self._collection(CHECKPOINTS).delete_many(
            {"position": {"$gte": start}}
        )

    def checkpoint_count(self) -> int:
        return len(self._collection(CHECKPOINTS))

    # -- session state ------------------------------------------------------------------

    def save_session_state(self, order: List[str]) -> None:
        """Persist the session's requirement *insertion* order.

        ``save_unified_design`` stores the satisfied requirements sorted
        (a set, essentially); incremental integration is a fold over the
        insertion order, so resuming a session needs the true order too.
        """
        self._collection(SESSION_STATE).replace(
            {"_id": "state", "kind": "session_state", "order": list(order)}
        )

    def load_session_state(self) -> Optional[Dict]:
        """The persisted session state, or ``None`` for legacy stores."""
        collection = self._collection(SESSION_STATE)
        if not collection.has("state"):
            return None
        return collection.get("state")

    # -- ontologies and mappings --------------------------------------------------------

    def save_ontology(self, ontology: Ontology) -> str:
        document = {
            "_id": ontology.name,
            "kind": "ontology",
            "text": ontology_io.dumps(ontology),
        }
        self._collection(ONTOLOGIES).replace(document)
        return ontology.name

    def load_ontology(self, name: str) -> Ontology:
        document = self._collection(ONTOLOGIES).get(name)
        return ontology_io.loads(document["text"])

    def ontology_names(self) -> List[str]:
        return self._collection(ONTOLOGIES).ids()

    # -- deployment records -------------------------------------------------------------

    def record_deployment(
        self, design_name: str, platform: str, artifacts: dict
    ) -> str:
        """Record what was generated/deployed for a design on a platform."""
        doc_id = f"{design_name}::{platform}"
        self._collection(DEPLOYMENTS).replace(
            {
                "_id": doc_id,
                "kind": "deployment",
                "design": design_name,
                "platform": platform,
                "artifacts": artifacts,
            }
        )
        return doc_id

    def deployments_of(self, design_name: str) -> List[dict]:
        return self._collection(DEPLOYMENTS).find(
            {"design": design_name}
        )

    # -- bus event log ------------------------------------------------------------------

    def append_bus_event(self, event: dict) -> str:
        """Append one artifact-bus event (already envelope-shaped)."""
        document = dict(event)
        document["_id"] = f"evt::{event['position']:08d}"
        document["kind"] = "bus_event"
        self._collection(BUS_EVENTS).insert(document)
        return document["_id"]

    def bus_events(self, topic: Optional[str] = None) -> List[dict]:
        """Logged events (bus-wide order), optionally for one topic."""
        collection = self._collection(BUS_EVENTS)
        events = (
            collection.find() if topic is None
            else collection.find({"topic": topic})
        )
        events.sort(key=lambda event: event["position"])
        return events

    def delete_bus_events_after(self, position: int) -> int:
        """Drop every event logged after bus position ``position``."""
        return self._collection(BUS_EVENTS).delete_many(
            {"position": {"$gt": position}}
        )

    def bus_event_count(self) -> int:
        return len(self._collection(BUS_EVENTS))

    # -- persistence -------------------------------------------------------------------

    def save_to(self, path) -> None:
        """Persist the whole underlying store (every session) to a file."""
        file_store.save(self._store, path)

    @classmethod
    def load_from(cls, path) -> "MetadataRepository":
        return cls(store=file_store.load(path))
