"""A second, independent retail sample domain.

The demo uses "different examples of synthetic and real-world domains,
covering a variety of underlying data sources" (§3).  This module is the
second domain: a point-of-sale retail source whose shape differs from
TPC-H (a date dimension table, a store geography chain, a product
category hierarchy held in the product table itself).  Tests use it to
show the pipeline is not TPC-H-specific, and the MD integrator uses it
for cross-domain consolidation cases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.expressions.types import ScalarType
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology
from repro.sources.datagen import DataGenerator
from repro.sources.mappings import SourceMappings
from repro.sources.schema import ForeignKey, SourceSchema, make_table

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL
STR = ScalarType.STRING
DATE = ScalarType.DATE

_CATEGORIES = [
    ("Beverages", "Food"), ("Snacks", "Food"), ("Dairy", "Food"),
    ("Laptops", "Electronics"), ("Phones", "Electronics"),
    ("Cleaning", "Household"), ("Kitchen", "Household"),
]
_CITIES = [
    ("Barcelona", "Spain"), ("Madrid", "Spain"), ("Paris", "France"),
    ("Lyon", "France"), ("Berlin", "Germany"), ("Munich", "Germany"),
]


def schema() -> SourceSchema:
    """The retail point-of-sale relational schema."""
    source = SourceSchema(name="retail", description="POS retail sources")
    source.add_table(make_table(
        "store",
        [("store_id", INT), ("store_name", STR), ("city", STR),
         ("country", STR)],
        primary_key=["store_id"],
    ))
    source.add_table(make_table(
        "product",
        [("product_id", INT), ("product_name", STR), ("category", STR),
         ("family", STR), ("unit_price", DEC)],
        primary_key=["product_id"],
    ))
    source.add_table(make_table(
        "calendar",
        [("date_id", INT), ("day", DATE), ("month", INT), ("year", INT)],
        primary_key=["date_id"],
    ))
    source.add_table(make_table(
        "ticket_line",
        [("ticket_id", INT), ("line_no", INT), ("store_id", INT),
         ("product_id", INT), ("date_id", INT), ("units", INT),
         ("amount", DEC)],
        primary_key=["ticket_id", "line_no"],
        foreign_keys=[
            ForeignKey(("store_id",), "store", ("store_id",)),
            ForeignKey(("product_id",), "product", ("product_id",)),
            ForeignKey(("date_id",), "calendar", ("date_id",)),
        ],
    ))
    source.validate()
    return source


def ontology() -> Ontology:
    """The retail domain ontology."""
    builder = (
        OntologyBuilder("retail", description="retail POS domain ontology")
        .concept("Store", label="Store")
        .concept("Product", label="Product")
        .concept("Day", label="Day")
        .concept("TicketLine", label="Ticket line")
    )
    attributes = [
        ("Store_store_name", "Store", STR, "store"),
        ("Store_city", "Store", STR, "city"),
        ("Store_country", "Store", STR, "country"),
        ("Product_product_name", "Product", STR, "product"),
        ("Product_category", "Product", STR, "category"),
        ("Product_family", "Product", STR, "family"),
        ("Product_unit_price", "Product", DEC, "unit price"),
        ("Day_day", "Day", DATE, "date"),
        ("Day_month", "Day", INT, "month"),
        ("Day_year", "Day", INT, "year"),
        ("TicketLine_units", "TicketLine", INT, "units sold"),
        ("TicketLine_amount", "TicketLine", DEC, "sale amount"),
    ]
    for prop_id, concept, scalar_type, label in attributes:
        builder.attribute(prop_id, concept, scalar_type, label=label)
    for prop_id, domain, range_, label in [
        ("TicketLine_store", "TicketLine", "Store", "sold at"),
        ("TicketLine_product", "TicketLine", "Product", "sold product"),
        ("TicketLine_day", "TicketLine", "Day", "sold on"),
    ]:
        builder.relationship(prop_id, domain, range_, "N-1", label=label)
    return builder.build()


def mappings() -> SourceMappings:
    """Source schema mappings for the retail domain."""
    result = SourceMappings(ontology_name="retail", source_name="retail")
    for concept, table, keys in [
        ("Store", "store", ("store_id",)),
        ("Product", "product", ("product_id",)),
        ("Day", "calendar", ("date_id",)),
        ("TicketLine", "ticket_line", ("ticket_id", "line_no")),
    ]:
        result.map_concept(concept, table, keys)
    domain_ontology = ontology()
    for prop in domain_ontology.datatype_properties():
        column = prop.id[len(prop.concept) + 1 :]
        result.map_property(prop.id, column)
    return result


def generate(scale_factor: float = 1.0, seed: int = 7) -> Dict[str, List[dict]]:
    """Generate deterministic retail data at a micro scale factor."""
    gen = DataGenerator(seed)
    store_count = max(2, int(6 * scale_factor))
    product_count = max(5, int(60 * scale_factor))
    day_count = max(10, int(120 * scale_factor))
    ticket_count = max(10, int(400 * scale_factor))

    data: Dict[str, List[dict]] = {}
    data["store"] = []
    for store_id in range(1, store_count + 1):
        city, country = _CITIES[(store_id - 1) % len(_CITIES)]
        data["store"].append(
            {
                "store_id": store_id,
                "store_name": f"Store {store_id:03d}",
                "city": city,
                "country": country,
            }
        )
    data["product"] = []
    for product_id in range(1, product_count + 1):
        category, family = gen.choice(_CATEGORIES)
        data["product"].append(
            {
                "product_id": product_id,
                "product_name": gen.phrase(2),
                "category": category,
                "family": family,
                "unit_price": gen.decimal(0.5, 1500.0),
            }
        )
    data["calendar"] = []
    for date_id in range(1, day_count + 1):
        day = gen.date()
        data["calendar"].append(
            {"date_id": date_id, "day": day, "month": day.month, "year": day.year}
        )

    store_ids = [row["store_id"] for row in data["store"]]
    product_ids = [row["product_id"] for row in data["product"]]
    date_ids = [row["date_id"] for row in data["calendar"]]
    lines = []
    for ticket_id in range(1, ticket_count + 1):
        store_id = gen.choice(store_ids)
        date_id = gen.choice(date_ids)
        for line_no in range(1, gen.integer(1, 4) + 1):
            units = gen.integer(1, 10)
            lines.append(
                {
                    "ticket_id": ticket_id,
                    "line_no": line_no,
                    "store_id": store_id,
                    "product_id": gen.zipf_choice(product_ids),
                    "date_id": date_id,
                    "units": units,
                    "amount": round(units * gen.decimal(0.5, 200.0), 2),
                }
            )
    data["ticket_line"] = lines
    return data
