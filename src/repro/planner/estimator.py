"""Cardinality estimation over ETL flows, from catalog statistics.

A topological walk assigns every node an estimated output row count
plus per-attribute column estimates (distinct count, null fraction,
min/max, histogram where the source column had one).  The rules are the
classical System-R family:

* equality selectivity ``1/distinct`` (refined by the histogram: a
  literal outside ``[min, max]`` matches nothing),
* range selectivity by histogram interpolation,
* join cardinality by containment:
  ``|L JOIN R| = |L|·|R| / max(d(L.key), d(R.key))``,
* aggregation/distinct output capped by the product of key distincts.

Estimates are advisory: the rewrite pipeline uses them to order joins,
pick build sides and veto fusion, and ``explain`` prints them next to
the actual counts (q-error) after a planned run.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.engine.stats import ColumnStats, Histogram, StatisticsCatalog
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Join,
    Rename,
    SCDType,
    SCDUpdate,
    Selection,
    SurrogateKey,
    UnionOp,
)
from repro.mdmodel.model import (
    SCD2_IS_CURRENT,
    SCD2_VALID_FROM,
    SCD2_VALID_TO,
    SCD2_VERSION,
)
from repro.expressions import parse
from repro.expressions.ast import (
    Attribute,
    BinaryOp,
    Expression,
    Literal,
    UnaryOp,
    ValueList,
)

#: Cardinality assumed for a datastore whose table the catalog cannot
#: see (mirrors the abstract cost model's default).
DEFAULT_TABLE_ROWS = 1000.0

#: Fallback selectivities when no statistic decides (same spirit as
#: :class:`repro.etlmodel.cost.CostParameters`).
EQUALITY_FALLBACK = 0.1
RANGE_FALLBACK = 1.0 / 3.0
DEFAULT_FALLBACK = 0.5


@dataclass(frozen=True)
class ColumnEstimate:
    """What the estimator knows about one attribute mid-flow."""

    distinct: float
    null_fraction: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    histogram: Optional[Histogram] = None

    @classmethod
    def from_stats(cls, stats: ColumnStats) -> "ColumnEstimate":
        return cls(
            distinct=float(max(stats.distinct, 1)),
            null_fraction=stats.null_fraction,
            minimum=stats.minimum,
            maximum=stats.maximum,
            histogram=stats.histogram,
        )


@dataclass(frozen=True)
class NodeEstimate:
    """Estimated output of one node: rows plus column knowledge."""

    rows: float
    columns: Dict[str, ColumnEstimate] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnEstimate]:
        return self.columns.get(name)


def _literal_number(node: Expression) -> Optional[float]:
    if not isinstance(node, Literal):
        return None
    value = node.value
    if value is None or isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


def _is_literal(node: Expression) -> bool:
    return isinstance(node, Literal) or (
        isinstance(node, UnaryOp)
        and node.operator == "-"
        and isinstance(node.operand, Literal)
    )


def _attribute_literal(node: BinaryOp):
    """(attribute name, literal node, flipped?) of a simple comparison,
    or ``None`` when either side is compound."""
    if isinstance(node.left, Attribute) and _is_literal(node.right):
        return node.left.name, node.right, False
    if isinstance(node.right, Attribute) and _is_literal(node.left):
        return node.right.name, node.left, True
    return None


def _equality_selectivity(
    estimate: Optional[ColumnEstimate], literal: Expression
) -> float:
    if estimate is None:
        return EQUALITY_FALLBACK
    number = _literal_number(literal)
    if isinstance(literal, Literal) and literal.value is None:
        return 0.0  # nothing compares equal to NULL
    if (
        number is not None
        and estimate.minimum is not None
        and estimate.maximum is not None
        and not (estimate.minimum <= number <= estimate.maximum)
    ):
        return 0.0  # literal outside the observed range
    return (1.0 - estimate.null_fraction) / max(estimate.distinct, 1.0)


def _range_selectivity(
    estimate: Optional[ColumnEstimate],
    operator: str,
    literal: Expression,
    flipped: bool,
) -> float:
    if estimate is None:
        return RANGE_FALLBACK
    number = _literal_number(literal)
    if number is None:
        return RANGE_FALLBACK
    if flipped:  # literal OP attribute -> attribute OP' literal
        operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
    histogram = estimate.histogram
    if histogram is not None and histogram.total > 0:
        below = histogram.fraction_below(
            number, inclusive=operator in ("<=",)
        )
        fraction = below if operator in ("<", "<=") else 1.0 - below
        return max(0.0, min(1.0, fraction)) * (1.0 - estimate.null_fraction)
    if estimate.minimum is not None and estimate.maximum is not None:
        low, high = estimate.minimum, estimate.maximum
        if high == low:
            satisfied = (
                (operator in ("<=", ">=") and number == low)
                or (operator in ("<",) and number > low)
                or (operator in (">",) and number < low)
                or (operator == "<=" and number > low)
                or (operator == ">=" and number < low)
            )
            return (1.0 - estimate.null_fraction) if satisfied else 0.0
        fraction = (number - low) / (high - low)
        fraction = max(0.0, min(1.0, fraction))
        if operator in (">", ">="):
            fraction = 1.0 - fraction
        return fraction * (1.0 - estimate.null_fraction)
    return RANGE_FALLBACK


def selectivity(
    node: Expression, columns: Dict[str, ColumnEstimate]
) -> float:
    """Estimated fraction of rows a predicate keeps."""
    if isinstance(node, Literal):
        if node.value is True:
            return 1.0
        if node.value is False or node.value is None:
            return 0.0
        return DEFAULT_FALLBACK
    if isinstance(node, Attribute):  # bare boolean column
        estimate = columns.get(node.name)
        if estimate is not None and estimate.distinct <= 1:
            return 1.0 - (estimate.null_fraction or 0.0)
        return DEFAULT_FALLBACK
    if isinstance(node, UnaryOp) and node.operator == "not":
        return max(0.0, 1.0 - selectivity(node.operand, columns))
    if isinstance(node, BinaryOp):
        operator = node.operator
        if operator == "and":
            return selectivity(node.left, columns) * selectivity(
                node.right, columns
            )
        if operator == "or":
            left = selectivity(node.left, columns)
            right = selectivity(node.right, columns)
            return min(1.0, left + right - left * right)
        if operator == "in" and isinstance(node.right, ValueList):
            if isinstance(node.left, Attribute):
                estimate = columns.get(node.left.name)
                if estimate is not None:
                    matches = sum(
                        _equality_selectivity(estimate, item)
                        for item in node.right.items
                    )
                    return min(1.0, matches)
            return min(1.0, EQUALITY_FALLBACK * len(node.right.items))
        simple = _attribute_literal(node)
        if operator in ("=", "!=", "<>"):
            if simple is not None:
                name, literal, __ = simple
                equal = _equality_selectivity(columns.get(name), literal)
                return equal if operator == "=" else max(0.0, 1.0 - equal)
            if isinstance(node.left, Attribute) and isinstance(
                node.right, Attribute
            ):
                left = columns.get(node.left.name)
                right = columns.get(node.right.name)
                distinct = max(
                    left.distinct if left else 1.0,
                    right.distinct if right else 1.0,
                    1.0,
                )
                equal = 1.0 / distinct
                return equal if operator == "=" else max(0.0, 1.0 - equal)
            equal = EQUALITY_FALLBACK
            return equal if operator == "=" else 1.0 - equal
        if operator in ("<", "<=", ">", ">="):
            if simple is not None:
                name, literal, flipped = simple
                return _range_selectivity(
                    columns.get(name), operator, literal, flipped
                )
            return RANGE_FALLBACK
    return DEFAULT_FALLBACK


def predicate_selectivity(
    predicate: str, columns: Dict[str, ColumnEstimate]
) -> float:
    try:
        tree = parse(predicate)
    except Exception:
        return DEFAULT_FALLBACK
    return max(0.0, min(1.0, selectivity(tree, columns)))


def _scaled_columns(
    columns: Dict[str, ColumnEstimate], rows: float
) -> Dict[str, ColumnEstimate]:
    """Distinct counts can never exceed the (estimated) row count."""
    bound = max(rows, 1.0)
    return {
        name: (
            replace(estimate, distinct=min(estimate.distinct, bound))
            if estimate.distinct > bound
            else estimate
        )
        for name, estimate in columns.items()
    }


def _narrow_for_predicate(
    tree: Expression, columns: Dict[str, ColumnEstimate]
) -> Dict[str, ColumnEstimate]:
    """Refine column knowledge on the true-branch of a predicate
    (equality pins an attribute to a single value)."""
    result = dict(columns)
    if isinstance(tree, BinaryOp) and tree.operator == "and":
        result = _narrow_for_predicate(tree.left, result)
        return _narrow_for_predicate(tree.right, result)
    if isinstance(tree, BinaryOp) and tree.operator == "=":
        simple = _attribute_literal(tree)
        if simple is not None:
            name, literal, __ = simple
            estimate = result.get(name)
            if estimate is not None:
                number = _literal_number(literal)
                result[name] = replace(
                    estimate,
                    distinct=1.0,
                    null_fraction=0.0,
                    minimum=number if number is not None else estimate.minimum,
                    maximum=number if number is not None else estimate.maximum,
                )
    return result


def _key_distinct(
    estimate: NodeEstimate, keys: List[str]
) -> float:
    """Distinct count of a (possibly composite) join key tuple."""
    if not keys:
        return 1.0
    product = 1.0
    known = False
    for key in keys:
        column = estimate.column(key)
        if column is None:
            continue
        known = True
        product *= max(column.distinct, 1.0)
    if not known:
        return max(estimate.rows, 1.0)  # no statistics: assume key-like
    return min(product, max(estimate.rows, 1.0))


def _non_null_fraction(estimate: NodeEstimate, keys: List[str]) -> float:
    fraction = 1.0
    for key in keys:
        column = estimate.column(key)
        if column is not None:
            fraction *= 1.0 - column.null_fraction
    return fraction


def _estimate_join(operation: Join, left: NodeEstimate, right: NodeEstimate):
    left_keys = list(operation.left_keys)
    right_keys = list(operation.right_keys)
    effective_left = left.rows * _non_null_fraction(left, left_keys)
    effective_right = right.rows * _non_null_fraction(right, right_keys)
    distinct = max(
        _key_distinct(left, left_keys), _key_distinct(right, right_keys), 1.0
    )
    inner = (effective_left * effective_right) / distinct
    if str(operation.join_type) == "left":
        rows = max(inner, left.rows)
    else:
        rows = inner
    joined_same = {
        right_key
        for left_key, right_key in zip(left_keys, right_keys)
        if left_key == right_key
    }
    columns = dict(left.columns)
    for name, estimate in right.columns.items():
        if name in joined_same or name in columns:
            continue
        columns[name] = estimate
    return NodeEstimate(rows=rows, columns=_scaled_columns(columns, rows))


def _estimate_node(
    operation,
    inputs: List[NodeEstimate],
    catalog: StatisticsCatalog,
) -> NodeEstimate:
    if isinstance(operation, Datastore):
        try:
            stats = catalog.table_stats(operation.table)
        except Exception:
            stats = None
        if stats is None:
            columns = {
                name: ColumnEstimate(distinct=DEFAULT_TABLE_ROWS)
                for name in (operation.columns or ())
            }
            return NodeEstimate(rows=DEFAULT_TABLE_ROWS, columns=columns)
        wanted = list(operation.columns) if operation.columns else list(
            stats.columns
        )
        columns = {
            name: ColumnEstimate.from_stats(stats.columns[name])
            for name in wanted
            if name in stats.columns
        }
        return NodeEstimate(rows=float(stats.rows), columns=columns)
    if not inputs:
        return NodeEstimate(rows=0.0)
    first = inputs[0]
    if isinstance(operation, Selection):
        try:
            tree = parse(operation.predicate)
        except Exception:
            return first
        fraction = max(0.0, min(1.0, selectivity(tree, first.columns)))
        rows = first.rows * fraction
        columns = _narrow_for_predicate(tree, first.columns)
        return NodeEstimate(rows=rows, columns=_scaled_columns(columns, rows))
    if operation.kind in ("Projection", "Extraction"):
        columns = {
            name: first.columns[name]
            for name in operation.columns
            if name in first.columns
        }
        return NodeEstimate(rows=first.rows, columns=columns)
    if isinstance(operation, Join) and len(inputs) == 2:
        return _estimate_join(operation, inputs[0], inputs[1])
    if isinstance(operation, Aggregation):
        if not operation.group_by:
            rows = 1.0
        else:
            product = 1.0
            for name in operation.group_by:
                column = first.column(name)
                product *= max(column.distinct, 1.0) if column else max(
                    first.rows ** 0.5, 1.0
                )
                if product > first.rows:
                    break
            rows = min(product, max(first.rows, 1.0))
            if first.rows == 0.0:
                rows = 0.0
        columns = {
            name: first.columns[name]
            for name in operation.group_by
            if name in first.columns
        }
        for spec in operation.aggregates:
            columns[spec.output] = ColumnEstimate(distinct=max(rows, 1.0))
        return NodeEstimate(rows=rows, columns=_scaled_columns(columns, rows))
    if operation.kind == "Distinct":
        product = 1.0
        for estimate in first.columns.values():
            product *= max(estimate.distinct, 1.0)
            if product > first.rows:
                break
        rows = min(product, max(first.rows, 1.0)) if first.columns else min(
            1.0, first.rows
        )
        if first.rows == 0.0:
            rows = 0.0
        return NodeEstimate(
            rows=rows, columns=_scaled_columns(dict(first.columns), rows)
        )
    if isinstance(operation, UnionOp) and len(inputs) == 2:
        rows = inputs[0].rows + inputs[1].rows
        columns: Dict[str, ColumnEstimate] = {}
        for name, estimate in inputs[0].columns.items():
            other = inputs[1].column(name)
            merged = estimate if other is None else replace(
                estimate,
                distinct=estimate.distinct + other.distinct,
                null_fraction=max(
                    estimate.null_fraction, other.null_fraction
                ),
            )
            columns[name] = merged
        return NodeEstimate(rows=rows, columns=_scaled_columns(columns, rows))
    if isinstance(operation, DerivedAttribute):
        columns = dict(first.columns)
        columns[operation.output] = ColumnEstimate(
            distinct=max(first.rows, 1.0)
        )
        return NodeEstimate(rows=first.rows, columns=columns)
    if isinstance(operation, SurrogateKey):
        columns = {
            operation.output: ColumnEstimate(
                distinct=_key_distinct(first, list(operation.business_keys))
            )
        }
        columns.update(first.columns)
        return NodeEstimate(rows=first.rows, columns=columns)
    if isinstance(operation, Rename):
        mapping = operation.mapping()
        columns = {
            mapping.get(name, name): estimate
            for name, estimate in first.columns.items()
        }
        return NodeEstimate(rows=first.rows, columns=columns)
    if isinstance(operation, SCDUpdate):
        return _estimate_scd(operation, first, catalog)
    # Sort, Loader and anything row-preserving.
    return first


def _estimate_scd(
    operation: SCDUpdate,
    first: NodeEstimate,
    catalog: StatisticsCatalog,
) -> NodeEstimate:
    """Estimate an SCD merge's output: stored history plus new members.

    The output carries the stored dimension (history rows included)
    with roughly one fresh version per incoming member, so rows are the
    stored table's count plus the incoming estimate.  The key product:
    an ``scd_is_current = true`` equality downstream should select the
    *current fraction* — encoded by giving ``scd_is_current`` a
    distinct count of ``total / current`` so the System-R ``1/distinct``
    rule lands exactly on that fraction.
    """
    stored_rows = 0.0
    try:
        stats = catalog.table_stats(operation.table)
    except Exception:
        stats = None
    if stats is not None:
        stored_rows = float(stats.rows)
    if operation.policy != SCDType.TYPE2:
        rows = max(stored_rows, first.rows)
        return NodeEstimate(
            rows=rows, columns=_scaled_columns(dict(first.columns), rows)
        )
    rows = max(stored_rows + first.rows, first.rows, 1.0)
    # Current rows: one per distinct business key (at most the incoming
    # member count when the table has never been loaded).
    current = max(
        min(_key_distinct(first, list(operation.business_keys)), rows), 1.0
    )
    columns = _scaled_columns(dict(first.columns), rows)
    columns[SCD2_VERSION] = ColumnEstimate(
        distinct=max(rows / current, 1.0)
    )
    columns[SCD2_VALID_FROM] = ColumnEstimate(
        distinct=max(rows / current, 1.0)
    )
    columns[SCD2_VALID_TO] = ColumnEstimate(
        distinct=max(rows / current, 1.0),
        null_fraction=current / rows,
    )
    columns[SCD2_IS_CURRENT] = ColumnEstimate(distinct=rows / current)
    return NodeEstimate(rows=rows, columns=columns)


def estimate_flow(
    flow: EtlFlow, catalog: StatisticsCatalog
) -> Dict[str, NodeEstimate]:
    """Per-node output estimates for every node of the flow."""
    estimates: Dict[str, NodeEstimate] = {}
    for name in flow.topological_order():
        operation = flow.node(name)
        inputs = [estimates[source] for source in flow.inputs(name)]
        estimates[name] = _estimate_node(operation, inputs, catalog)
    return estimates
