"""Regression: ``_JobRunner.submit`` must enqueue under its lock.

The seed code allocated the job id and appended to ``_order`` under
the lock but called ``self._queue.put(job)`` *after* releasing it.  Two
concurrent submitters could then race between id allocation and the
put: submitter A allocates ``job-1``, is descheduled, submitter B
allocates ``job-2`` and puts it first — the worker drains ``job-2``
before ``job-1``, breaking the runner's strict-FIFO contract (deploy
N+1 must see the repository state deploy N recorded).

The test forces that interleaving deterministically by stalling the
first ``put``.  With the fix the second submitter parks on the lock
and order is preserved; with the seed code it drained inverted.
"""

import queue
import threading

from repro.serve.server import _JobRunner


class _StallFirstPut:
    """A queue whose first ``put`` parks until released."""

    def __init__(self):
        self._inner = queue.Queue()
        self._first = True
        self.blocked = threading.Event()
        self.release = threading.Event()

    def put(self, item):
        if self._first:
            self._first = False
            self.blocked.set()
            assert self.release.wait(5)
        self._inner.put(item)

    def get(self):
        return self._inner.get()


def test_concurrent_submits_drain_in_submission_order():
    processed = []
    both_done = threading.Event()

    def run(job):
        processed.append(job.id)
        if len(processed) == 2:
            both_done.set()
        return {"job": job.id}

    runner = _JobRunner(run, "fifo-test")
    stalled = _StallFirstPut()
    runner._queue = stalled

    first = threading.Thread(target=runner.submit, args=("sql", False))
    second = threading.Thread(target=runner.submit, args=("sql", False))
    first.start()
    assert stalled.blocked.wait(5)  # submitter A is mid-put
    second.start()
    second.join(0.3)
    # The fix: B must still be parked on the lock, not finished with
    # job-2 already enqueued ahead of job-1.
    assert second.is_alive()
    stalled.release.set()
    first.join(5)
    second.join(5)
    assert both_done.wait(5)

    assert processed == ["job-1", "job-2"]
    assert [entry["job"] for entry in runner.summaries()] == [
        "job-1",
        "job-2",
    ]
    assert all(entry["state"] == "done" for entry in runner.summaries())
