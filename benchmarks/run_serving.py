"""Serving-layer load benchmark: concurrent design sessions over HTTP.

Boots the served front door in-process (threaded stdlib HTTP server
over the TPC-H domain), then drives many concurrent design sessions
through the full lifecycle — create, elicit an xRQ requirement,
status, design, deploy to the ``sql`` platform — from a pool of driver
threads.  All sessions share one metadata repository, so this is the
workload that hammers the per-table engine caches, the artifact bus
and the store snapshot from many handler threads at once.

A second phase re-deploys a slice of those sessions **in the
background** (``{"background": true}`` → 202 + job id, polled to
completion) to measure what the async job runner buys: the 202
acceptance latency against the synchronous deploy's p50.

Writes ``BENCH_serving.json`` with sessions/sec plus p50/p99 latency
per request type and per whole session, and a ``background_deploy``
section.  Any non-2xx response, transport error or failed job fails
the run (exit 1): a throughput number is only reported for a
fully-correct run.

Usage::

    python -m benchmarks.run_serving [--sessions 120] [--drivers 16]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

try:
    import repro  # noqa: F401  (needs PYTHONPATH=src or an install)
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )

from repro.serve.server import QuarryServer, tpch_manager
from repro.serve.smoke import demo_xrq

DEFAULT_SESSIONS = 120
DEFAULT_DRIVERS = 16

#: How many of the load sessions phase two re-deploys in the background.
BACKGROUND_JOBS = 32


def percentile(samples: List[float], fraction: float) -> float:
    """The nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def timed_request(
    base: str, method: str, path: str, body=None
) -> Tuple[int, float]:
    """One JSON request; returns ``(status, seconds)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    return status, time.perf_counter() - started


def json_request(
    base: str, method: str, path: str, body=None
) -> Tuple[int, dict, float]:
    """One JSON request; returns ``(status, payload, seconds)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            payload = json.loads(response.read() or b"{}")
            status = response.status
    except urllib.error.HTTPError as error:
        payload = json.loads(error.read() or b"{}")
        status = error.code
    return status, payload, time.perf_counter() - started


def drive_background_deploy(base: str, name: str, errors) -> Tuple[float, float]:
    """Submit one background re-deploy; poll its job to completion.

    Returns ``(accept_seconds, completion_seconds)`` — the 202 round
    trip, and submit-to-done wall clock.
    """
    submitted = time.perf_counter()
    try:
        status, accepted, accept_seconds = json_request(
            base,
            "POST",
            f"/sessions/{name}/deploy",
            {"platform": "sql", "background": True},
        )
    except Exception as exc:  # transport-level failure
        errors.append(
            f"background deploy {name}: {type(exc).__name__}: {exc}"
        )
        return 0.0, 0.0
    if status != 202:
        errors.append(f"background deploy {name}: expected 202, got {status}")
        return accept_seconds, 0.0
    job_url = accepted["status_url"]
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        try:
            status, job, __ = json_request(base, "GET", job_url)
        except Exception:  # transient reset under load: poll again
            time.sleep(0.05)
            continue
        if status != 200:
            errors.append(f"job poll {job_url}: got {status}")
            break
        if job["state"] == "done":
            return accept_seconds, time.perf_counter() - submitted
        if job["state"] == "error":
            errors.append(f"background deploy {name}: {job.get('error')}")
            break
        time.sleep(0.05)
    else:
        errors.append(f"background deploy {name}: job never finished")
    return accept_seconds, time.perf_counter() - submitted


def drive_session(base: str, index: int, latencies, errors) -> float:
    """One full design-session lifecycle; returns its wall-clock time."""
    name = f"load{index:04d}"
    steps = [
        ("create", "POST", "/sessions", {"name": name}, 201),
        (
            "elicit",
            "POST",
            f"/sessions/{name}/requirements",
            {"xrq": demo_xrq("IR1" if index % 2 == 0 else "IR2")},
            201,
        ),
        ("status", "GET", f"/sessions/{name}/status", None, 200),
        ("design", "GET", f"/sessions/{name}/design", None, 200),
        (
            "deploy",
            "POST",
            f"/sessions/{name}/deploy",
            {"platform": "sql"},
            200,
        ),
    ]
    started = time.perf_counter()
    for label, method, path, body, expected in steps:
        try:
            status, seconds = timed_request(base, method, path, body)
        except Exception as exc:  # transport-level failure
            errors.append(f"{label} {path}: {type(exc).__name__}: {exc}")
            return time.perf_counter() - started
        latencies.setdefault(label, []).append(seconds)
        if status != expected:
            errors.append(
                f"{label} {path}: expected {expected}, got {status}"
            )
    return time.perf_counter() - started


def run_load(sessions: int, drivers: int) -> dict:
    latencies: Dict[str, List[float]] = {}
    errors: List[str] = []
    with QuarryServer(tpch_manager()) as server:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=drivers) as pool:
            session_seconds = list(
                pool.map(
                    lambda index: drive_session(
                        server.url, index, latencies, errors
                    ),
                    range(sessions),
                )
            )
        elapsed = time.perf_counter() - started
        live_sessions = server.manager.count()

        # Phase two: background re-deploys on a slice of the sessions.
        job_names = [
            f"load{index:04d}" for index in range(min(sessions, BACKGROUND_JOBS))
        ]
        with ThreadPoolExecutor(max_workers=drivers) as pool:
            job_samples = list(
                pool.map(
                    lambda name: drive_background_deploy(
                        server.url, name, errors
                    ),
                    job_names,
                )
            )
    accept_seconds = [sample[0] for sample in job_samples if sample[0] > 0]
    completion_seconds = [
        sample[1] for sample in job_samples if sample[1] > 0
    ]
    sync_deploy_p50 = percentile(latencies.get("deploy", [0.0]), 0.50)
    accept_p50 = percentile(accept_seconds, 0.50) if accept_seconds else 0.0
    background = {
        "jobs": len(job_names),
        "accept_p50_seconds": accept_p50,
        "accept_p99_seconds": (
            percentile(accept_seconds, 0.99) if accept_seconds else 0.0
        ),
        "completion_p50_seconds": (
            percentile(completion_seconds, 0.50)
            if completion_seconds
            else 0.0
        ),
        "sync_deploy_p50_seconds": sync_deploy_p50,
        "accept_below_sync_p50": accept_p50 < sync_deploy_p50,
    }
    report = {
        "benchmark": "serving: concurrent design sessions over HTTP",
        "sessions": sessions,
        "drivers": drivers,
        "live_sessions_at_end": live_sessions,
        "elapsed_seconds": elapsed,
        "sessions_per_second": sessions / elapsed if elapsed else 0.0,
        "session_latency": {
            "p50_seconds": percentile(session_seconds, 0.50),
            "p99_seconds": percentile(session_seconds, 0.99),
        },
        "request_latency": {
            label: {
                "count": len(samples),
                "p50_seconds": percentile(samples, 0.50),
                "p99_seconds": percentile(samples, 0.99),
            }
            for label, samples in sorted(latencies.items())
        },
        "background_deploy": background,
        "errors": errors,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks.run_serving")
    parser.add_argument(
        "--sessions", type=int, default=DEFAULT_SESSIONS
    )
    parser.add_argument("--drivers", type=int, default=DEFAULT_DRIVERS)
    parser.add_argument("--output", default="BENCH_serving.json")
    options = parser.parse_args(argv)

    print(
        f"serving benchmark: {options.sessions} sessions, "
        f"{options.drivers} drivers"
    )
    report = run_load(options.sessions, options.drivers)
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"{report['sessions_per_second']:.1f} sessions/sec, session p50 "
        f"{report['session_latency']['p50_seconds'] * 1000:.0f} ms, p99 "
        f"{report['session_latency']['p99_seconds'] * 1000:.0f} ms"
    )
    background = report["background_deploy"]
    print(
        f"background deploy: {background['jobs']} jobs, accept p50 "
        f"{background['accept_p50_seconds'] * 1000:.1f} ms vs sync "
        f"deploy p50 {background['sync_deploy_p50_seconds'] * 1000:.1f} ms"
        f" ({'faster' if background['accept_below_sync_p50'] else 'NOT faster'})"
    )
    print(f"report written to {options.output}")
    if report["errors"]:
        for error in report["errors"][:10]:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
