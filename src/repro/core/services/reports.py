"""Lifecycle reports: what one design change did, and design snapshots.

Both report types are value objects: equality is structural (two
reports describing the same change compare equal even when their nested
design objects are distinct instances), ``repr`` is compact enough for
assertion output, and ``to_dict()`` produces the JSON document the
artifact bus logs for every applied lifecycle change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.integrator import EtlConsolidation, MDIntegration
from repro.core.interpreter import PartialDesign


@dataclass(eq=False)
class ChangeReport:
    """What one lifecycle change did."""

    requirement_id: str
    action: str  # added | changed | removed
    partial: Optional[PartialDesign] = None
    md_integration: Optional[MDIntegration] = None
    etl_consolidation: Optional[EtlConsolidation] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary, logged by the bus event log."""
        partial = None
        if self.partial is not None:
            partial = {
                "facts": sorted(self.partial.md_schema.facts),
                "dimensions": sorted(self.partial.md_schema.dimensions),
                "etl_operations": len(self.partial.etl_flow),
            }
        md_integration = None
        if self.md_integration is not None:
            md_integration = {
                "decisions": [
                    {
                        "kind": decision.kind,
                        "partial_element": decision.partial_element,
                        "action": decision.action,
                        "unified_element": decision.unified_element,
                        "detail": decision.detail,
                    }
                    for decision in self.md_integration.decisions
                ],
                "complexity_before": self.md_integration.complexity_before,
                "complexity_after": self.md_integration.complexity_after,
                "complexity_naive": self.md_integration.complexity_naive,
            }
        etl_consolidation = None
        if self.etl_consolidation is not None:
            etl_consolidation = {
                "reused": list(self.etl_consolidation.reused),
                "added": list(self.etl_consolidation.added),
                "widened": list(self.etl_consolidation.widened),
                "cost_unified": self.etl_consolidation.cost_unified,
                "cost_separate": self.etl_consolidation.cost_separate,
            }
        return {
            "requirement_id": self.requirement_id,
            "action": self.action,
            "partial": partial,
            "md_integration": md_integration,
            "etl_consolidation": etl_consolidation,
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, ChangeReport):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"ChangeReport({self.action} {self.requirement_id!r}"
            + (", partial" if self.partial is not None else "")
            + ")"
        )


@dataclass(eq=False)
class DesignStatus:
    """Snapshot of the current unified design."""

    requirements: List[str]
    facts: List[str]
    dimensions: List[str]
    complexity: float
    etl_operations: int
    estimated_etl_cost: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requirements": list(self.requirements),
            "facts": list(self.facts),
            "dimensions": list(self.dimensions),
            "complexity": self.complexity,
            "etl_operations": self.etl_operations,
            "estimated_etl_cost": self.estimated_etl_cost,
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, DesignStatus):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"DesignStatus(requirements={self.requirements!r}, "
            f"facts={self.facts!r}, dimensions={self.dimensions!r}, "
            f"complexity={self.complexity:.2f}, "
            f"etl_operations={self.etl_operations}, "
            f"estimated_etl_cost={self.estimated_etl_cost:.2f})"
        )
