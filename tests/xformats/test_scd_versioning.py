"""xMD/xLM schema versioning: SCD vocabulary, legacy back-compat.

Version 1.1 of both notations added the time vocabulary (per-level
``<scd>`` policy elements in xMD, ``SCDUpdate`` nodes in xLM).  Three
contracts pin it down:

* designs that *use* the vocabulary round-trip losslessly and carry
  the ``version="1.1"`` stamp,
* designs that don't keep the legacy shape byte for byte — the
  committed fixture files under ``fixtures/`` are real 1.0 documents
  and must stay loadable forever,
* a document declaring a version this build does not know is rejected
  up front (historically it was silently accepted and half-parsed).
"""

import pytest

from repro.errors import XlmFormatError, XmdFormatError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import Datastore, Loader, SCDUpdate
from repro.mdmodel import MDSchema
from repro.mdmodel.model import (
    Dimension,
    Hierarchy,
    Level,
    LevelAttribute,
    SCDPolicy,
)
from repro.expressions.types import ScalarType
from repro.xformats import xlm, xmd

from tests.xformats.test_xmd import revenue_star

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"


def versioned_star() -> MDSchema:
    schema = MDSchema(name="timed")
    dimension = Dimension("Supplier")
    dimension.add_level(
        Level(
            "Supplier",
            [
                LevelAttribute("s_name", ScalarType.STRING),
                LevelAttribute("s_acctbal", ScalarType.DECIMAL),
            ],
            scd_policy=SCDPolicy.TYPE2,
        )
    )
    dimension.add_hierarchy(Hierarchy("h_supplier", ["Supplier"]))
    schema.add_dimension(dimension)
    return schema


def scd_flow() -> EtlFlow:
    flow = EtlFlow(name="scd")
    flow.add(Datastore("DATASTORE_supplier", table="supplier"))
    flow.add(
        SCDUpdate(
            "SCD_dim_Supplier",
            table="dim_Supplier",
            policy="type2",
            business_keys=("s_name",),
            effective_date="2024-06-01",
        )
    )
    flow.add(Loader("LOAD_dim_Supplier", table="dim_Supplier", mode="replace"))
    flow.connect("DATASTORE_supplier", "SCD_dim_Supplier")
    flow.connect("SCD_dim_Supplier", "LOAD_dim_Supplier")
    return flow


class TestScdRoundTrip:
    def test_xmd_scd_policy_roundtrips(self):
        schema = versioned_star()
        parsed = xmd.loads(xmd.dumps(schema))
        level = parsed.dimension("Supplier").level("Supplier")
        assert level.scd_policy is SCDPolicy.TYPE2

    def test_xmd_roundtrip_is_stable(self):
        text = xmd.dumps(versioned_star())
        assert xmd.dumps(xmd.loads(text)) == text

    def test_xmd_versioned_document_is_stamped(self):
        text = xmd.dumps(versioned_star())
        assert 'version="1.1"' in text
        assert "<scd>type2</scd>" in text

    def test_xlm_scd_update_roundtrips(self):
        flow = scd_flow()
        parsed = xlm.loads(xlm.dumps(flow))
        node = parsed.node("SCD_dim_Supplier")
        assert node.kind == "SCDUpdate"
        assert node.table == "dim_Supplier"
        assert node.policy == "type2"
        assert node.business_keys == ("s_name",)
        assert node.effective_date == "2024-06-01"

    def test_xlm_roundtrip_is_stable(self):
        text = xlm.dumps(scd_flow())
        assert xlm.dumps(xlm.loads(text)) == text

    def test_xlm_versioned_document_is_stamped(self):
        assert 'version="1.1"' in xlm.dumps(scd_flow())

    def test_bad_scd_policy_rejected(self):
        text = xmd.dumps(versioned_star()).replace(
            "<scd>type2</scd>", "<scd>type9</scd>"
        )
        with pytest.raises(XmdFormatError):
            xmd.loads(text)


class TestLegacyShape:
    """Designs without time vocabulary keep the 1.0 wire shape."""

    def test_xmd_plain_design_is_not_stamped(self):
        text = xmd.dumps(revenue_star())
        assert "version=" not in text
        assert "<scd>" not in text

    def test_xlm_plain_flow_is_not_stamped(self):
        from tests.etlmodel.conftest import build_revenue_flow

        assert "version=" not in xlm.dumps(build_revenue_flow())

    def test_legacy_xmd_fixture_loads(self):
        """A committed 1.0 document must stay loadable forever."""
        text = (FIXTURES / "legacy_design.xmd").read_text()
        assert "version=" not in text  # it really is a legacy document
        schema = xmd.loads(text)
        assert "fact_table_revenue" in schema.facts
        for __, level in schema.iter_levels():
            assert level.scd_policy is SCDPolicy.TYPE0
        assert xmd.dumps(schema) == text  # and re-saves byte-identically

    def test_legacy_xlm_fixture_loads(self):
        text = (FIXTURES / "legacy_design.xlm").read_text()
        assert "version=" not in text
        flow = xlm.loads(text)
        assert any(node.kind == "Loader" for node in flow.nodes())
        assert xlm.dumps(flow) == text


class TestVersionRejection:
    """The registry must reject versions it cannot parse, by name."""

    def test_xmd_unknown_version_rejected(self):
        text = xmd.dumps(versioned_star()).replace(
            'version="1.1"', 'version="9.7"'
        )
        with pytest.raises(XmdFormatError, match=r"9\.7.*1\.0, 1\.1"):
            xmd.loads(text)

    def test_xlm_unknown_version_rejected(self):
        text = xlm.dumps(scd_flow()).replace('version="1.1"', 'version="2.0"')
        with pytest.raises(XlmFormatError, match=r"2\.0"):
            xlm.loads(text)

    def test_supported_versions_accepted(self):
        from repro.xformats.registry import check_schema_version

        assert check_schema_version("xmd", "1.0") == "1.0"
        assert check_schema_version("xlm", "1.1") == "1.1"
