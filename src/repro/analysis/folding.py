"""Constant folding and definite-unsatisfiability over predicates.

The folder reduces an expression bottom-up, evaluating any subtree whose
operands are literals with the engine's own evaluator, so folding agrees
with runtime semantics by construction (SQL three-valued logic
included).  Logical connectives fold partially — ``false and x`` is
``false`` whatever ``x`` is — mirroring the evaluator's Kleene
short-circuits.

:func:`truth` classifies a predicate as always-true / always-false /
unknown; :func:`unsatisfiable` decides whether a *conjunction* of
predicates can pass any row at all, using per-attribute interval
reasoning over the comparison atoms (``attr op literal``).  Both are
deliberately one-sided: ``None`` / ``False`` answers mean "don't know",
never "provably fine".
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.expressions import ast
from repro.expressions.evaluator import evaluate

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/", "%"}

#: attr OP literal  ->  literal OP attr, mirrored.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
#: not (attr OP literal)  ->  attr OP' literal.
_NEGATE = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def fold(node: ast.Expression) -> ast.Expression:
    """Reduce an expression by evaluating constant subtrees."""
    if isinstance(node, (ast.Literal, ast.Attribute)):
        return node
    if isinstance(node, ast.UnaryOp):
        operand = fold(node.operand)
        folded = ast.UnaryOp(node.operator, operand)
        if isinstance(operand, ast.Literal):
            return _evaluated(folded)
        return folded
    if isinstance(node, ast.BinaryOp):
        return _fold_binary(node)
    if isinstance(node, ast.FunctionCall):
        arguments = tuple(fold(argument) for argument in node.arguments)
        folded = ast.FunctionCall(node.name, arguments)
        if all(isinstance(argument, ast.Literal) for argument in arguments):
            return _evaluated(folded)
        return folded
    if isinstance(node, ast.ValueList):
        return ast.ValueList(tuple(fold(item) for item in node.items))
    return node


def _evaluated(node: ast.Expression) -> ast.Expression:
    """Evaluate a constant subtree; keep it unfolded if evaluation fails.

    A failing constant (``1 / 0``) is left in place — the engine will
    raise at run time, which is not this pass's business to predict.
    """
    try:
        return ast.Literal(evaluate(node, {}))
    except EvaluationError:
        return node


def _fold_binary(node: ast.BinaryOp) -> ast.Expression:
    left = fold(node.left)
    right = fold(node.right)
    if node.operator in ("and", "or"):
        return _fold_logical(node.operator, left, right)
    folded = ast.BinaryOp(node.operator, left, right)
    if node.operator in _COMPARISONS | _ARITHMETIC:
        # NULL poisons comparisons and arithmetic regardless of the
        # other side (the evaluator returns None before dispatching).
        if _is_null(left) or _is_null(right):
            return ast.Literal(None)
    if isinstance(left, ast.Literal):
        if isinstance(right, ast.Literal):
            return _evaluated(folded)
        if node.operator == "in" and _all_literals(right):
            return _evaluated(folded)
    return folded


def _is_null(node: ast.Expression) -> bool:
    return isinstance(node, ast.Literal) and node.value is None


def _all_literals(node: ast.Expression) -> bool:
    return isinstance(node, ast.ValueList) and all(
        isinstance(item, ast.Literal) for item in node.items
    )


def _fold_logical(
    operator: str, left: ast.Expression, right: ast.Expression
) -> ast.Expression:
    """Kleene partial folding of AND/OR."""
    # AND: False absorbs, True is identity.  OR: the other way round.
    identity = operator == "and"
    absorber = not identity
    lval = left.value if isinstance(left, ast.Literal) else _UNKNOWN
    rval = right.value if isinstance(right, ast.Literal) else _UNKNOWN
    if lval is absorber or rval is absorber:
        return ast.Literal(absorber)
    if lval is not _UNKNOWN and rval is not _UNKNOWN:
        # Both literal, neither absorbing: NULL if either is NULL.
        if lval is None or rval is None:
            return ast.Literal(None)
        if isinstance(lval, bool) and isinstance(rval, bool):
            return ast.Literal(identity)
        return ast.BinaryOp(operator, left, right)  # ill-typed; keep
    if lval is identity:
        return right
    if rval is identity:
        return left
    return ast.BinaryOp(operator, left, right)


class _Unknown:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unknown>"


_UNKNOWN = _Unknown()


def truth(node: ast.Expression) -> Optional[bool]:
    """Classify a predicate: ``True`` passes every row, ``False`` passes
    none (a NULL predicate filters the row out), ``None`` is unknown."""
    folded = fold(node)
    if not isinstance(folded, ast.Literal):
        return None
    if folded.value is True:
        return True
    if folded.value is False or folded.value is None:
        return False
    return None  # non-boolean constant: the engine will raise, not filter


# ---------------------------------------------------------------------------
# Conjunction satisfiability via per-attribute intervals
# ---------------------------------------------------------------------------


def _same_family(left, right) -> bool:
    """Whether two literal values are comparable for this analysis.

    Booleans are their own family (``True == 1`` in Python would
    otherwise leak int reasoning into booleans, which the engine
    rejects).
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)


Atom = Tuple[str, str, object]  # (attribute, operator, literal value)


def _atoms_of(conjunct: ast.Expression) -> Optional[List[Atom]]:
    """Extract ``attr op literal`` atoms from one folded conjunct.

    Returns ``None`` when the conjunct is not of a shape this analysis
    understands (it is then simply ignored — conservative).  A returned
    empty list means "always false" (e.g. ``not (x in (1, null))``).
    """
    negated = False
    node = conjunct
    while isinstance(node, ast.UnaryOp) and node.operator == "not":
        negated = not negated
        node = node.operand
    if not isinstance(node, ast.BinaryOp):
        return None
    if node.operator == "in":
        return _in_atoms(node, negated)
    if node.operator not in _FLIP:
        return None
    left, right, operator = node.left, node.right, node.operator
    if isinstance(left, ast.Literal) and isinstance(right, ast.Attribute):
        left, right = right, left
        operator = _FLIP[operator]
    if not (isinstance(left, ast.Attribute) and isinstance(right, ast.Literal)):
        return None
    if right.value is None:
        # Comparison with NULL never passes; fold() normally catches
        # this, but be safe.
        return []
    if negated:
        operator = _NEGATE[operator]
    return [(left.name, operator, right.value)]


def _in_atoms(node: ast.BinaryOp, negated: bool) -> Optional[List[Atom]]:
    if not isinstance(node.left, ast.Attribute):
        return None
    if not _all_literals(node.right):
        return None
    values = [item.value for item in node.right.items]
    non_null = [value for value in values if value is not None]
    if negated:
        if len(non_null) != len(values):
            # ``not (x in (..., null, ...))`` is never true: a non-member
            # x yields NULL (filtered), a member yields False.
            return []
        return [(node.left.name, "!=", value) for value in non_null]
    if not non_null:
        return []  # ``x in (null)`` is never true
    return [(node.left.name, "in", tuple(non_null))]


class _Domain:
    """Accumulated constraints on one attribute."""

    def __init__(self) -> None:
        self.eq: object = _UNKNOWN
        self.neq: List[object] = []
        self.low: Optional[Tuple[object, bool]] = None  # (value, strict)
        self.high: Optional[Tuple[object, bool]] = None
        self.members: Optional[List[object]] = None  # from IN lists

    def add(self, operator: str, value) -> bool:
        """Apply one atom; returns False when definitely unsatisfiable."""
        try:
            if operator == "=":
                if self.eq is not _UNKNOWN and not self._eq(self.eq, value):
                    return False
                self.eq = value
            elif operator == "!=":
                self.neq.append(value)
            elif operator == "in":
                members = list(value)
                if self.members is None:
                    self.members = members
                else:
                    self.members = [
                        m
                        for m in self.members
                        if any(self._eq(m, other) for other in members)
                    ]
            elif operator in (">", ">="):
                strict = operator == ">"
                if self.low is None or self._tighter(value, strict, self.low, True):
                    self.low = (value, strict)
            elif operator in ("<", "<="):
                strict = operator == "<"
                if self.high is None or self._tighter(value, strict, self.high, False):
                    self.high = (value, strict)
            return self.consistent()
        except TypeError:
            # Mixed-family constraints: leave this attribute alone.
            return True

    @staticmethod
    def _eq(left, right) -> bool:
        return _same_family(left, right) and left == right

    @staticmethod
    def _tighter(value, strict: bool, current: Tuple[object, bool], is_low: bool) -> bool:
        cur_value, cur_strict = current
        if not _same_family(value, cur_value):
            raise TypeError
        if value == cur_value:
            return strict and not cur_strict
        return value > cur_value if is_low else value < cur_value

    def _passes(self, value) -> bool:
        """Whether a candidate value satisfies bounds and exclusions."""
        if any(self._eq(value, excluded) for excluded in self.neq):
            return False
        if self.low is not None:
            low, strict = self.low
            if _same_family(value, low):
                if value < low or (strict and value == low):
                    return False
        if self.high is not None:
            high, strict = self.high
            if _same_family(value, high):
                if value > high or (strict and value == high):
                    return False
        return True

    def consistent(self) -> bool:
        try:
            if self.low is not None and self.high is not None:
                low, low_strict = self.low
                high, high_strict = self.high
                if _same_family(low, high):
                    if low > high:
                        return False
                    if low == high and (low_strict or high_strict):
                        return False
            if self.eq is not _UNKNOWN:
                if not self._passes(self.eq):
                    return False
                if self.members is not None and not any(
                    self._eq(self.eq, m) for m in self.members
                ):
                    return False
            if self.members is not None:
                if not any(self._passes(m) for m in self.members):
                    return False
            # A boolean excluded from both truth values has no home.
            booleans = {v for v in self.neq if isinstance(v, bool)}
            if booleans == {True, False} and self.eq is _UNKNOWN:
                return False
            return True
        except TypeError:
            return True


def unsatisfiable(predicates: Iterable[ast.Expression]) -> bool:
    """Whether the conjunction of ``predicates`` definitely passes no row.

    ``False`` means "could not prove it", not "satisfiable".
    """
    atoms: List[Atom] = []
    for predicate in predicates:
        folded = fold(predicate)
        if isinstance(folded, ast.Literal):
            if folded.value is False or folded.value is None:
                return True
            continue
        for conjunct in ast.conjuncts(folded):
            if isinstance(conjunct, ast.Literal):
                if conjunct.value is False or conjunct.value is None:
                    return True
                continue
            extracted = _atoms_of(conjunct)
            if extracted is None:
                continue
            if extracted == []:
                return True
            atoms.extend(extracted)
    domains: dict = {}
    for attribute, operator, value in atoms:
        domain = domains.setdefault(attribute, _Domain())
        if not domain.add(operator, value):
            return True
    return False
