"""Unit tests for the ETL cost model."""

import pytest

from repro.etlmodel import (
    Datastore,
    EtlFlow,
    Loader,
    Selection,
    Sort,
)
from repro.etlmodel.cost import CostModel, CostParameters
from repro.etlmodel.equivalence import normalize


@pytest.fixture
def model():
    return CostModel()


ROWS = {"lineitem": 6000, "orders": 1500, "customer": 150, "nation": 25}


class TestSelectivity:
    def test_equality_is_most_selective(self, model):
        assert model.selectivity("a = 1") < model.selectivity("a > 1")
        assert model.selectivity("a > 1") < model.selectivity("a != 1")

    def test_conjuncts_multiply(self, model):
        single = model.selectivity("a = 1")
        double = model.selectivity("a = 1 and b = 2")
        assert double == pytest.approx(single * single)


class TestEstimates:
    def test_datastore_rows_come_from_counts(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        assert report.node("DATASTORE_lineitem").output_rows == 6000

    def test_missing_table_defaults(self, model):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="unknown", columns=("a",)),
            Loader("load", table="o"),
        )
        report = model.estimate(flow, {})
        assert report.node("src").output_rows == 1000

    def test_selection_reduces_rows(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        selection = report.node("SELECTION_nation")
        assert selection.output_rows < selection.input_rows

    def test_join_output_is_max_input(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        join = report.node("JOIN_lineitem_orders")
        assert join.output_rows == 6000

    def test_aggregation_compresses(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        agg = report.node("AGG_revenue")
        assert agg.output_rows == pytest.approx(agg.input_rows * 0.1)

    def test_total_is_sum_of_nodes(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        assert report.total == pytest.approx(
            sum(node.cost for node in report.nodes)
        )
        assert model.total(revenue_flow, ROWS) == pytest.approx(report.total)

    def test_unknown_node_raises_keyerror(self, model, revenue_flow):
        report = model.estimate(revenue_flow, ROWS)
        with pytest.raises(KeyError):
            report.node("ghost")

    def test_sort_pays_logarithmic_factor(self, model):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="big", columns=("a",)),
            Sort("sort", keys=("a",)),
            Loader("load", table="o"),
        )
        report = model.estimate(flow, {"big": 4096})
        # unit 1.0 * 4096 rows * log2(4096)=12
        assert report.node("sort").cost == pytest.approx(4096 * 12)


class TestCostDrivesOptimisation:
    def test_pushed_down_selection_is_cheaper(self, revenue_flow, model):
        # The paper's motivation for operator reordering: filtering at
        # the nation extraction is cheaper than filtering after 3 joins.
        before = model.total(revenue_flow, ROWS)
        after = model.total(normalize(revenue_flow), ROWS)
        assert after < before

    def test_custom_parameters_change_costs(self, revenue_flow):
        cheap_joins = CostParameters(
            unit_costs={**CostParameters().unit_costs, "Join": 0.01}
        )
        default_total = CostModel().total(revenue_flow, ROWS)
        cheap_total = CostModel(cheap_joins).total(revenue_flow, ROWS)
        assert cheap_total < default_total

    def test_minimum_rows_floor(self):
        model = CostModel()
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="tiny", columns=("a",)),
            Selection("sel", predicate="a = 'x' and a = 'y' and a = 'z'"),
            Loader("load", table="o"),
        )
        report = model.estimate(flow, {"tiny": 2})
        assert report.node("sel").output_rows >= 1.0
