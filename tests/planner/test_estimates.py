"""Accuracy tests of the cardinality estimator (q-error bounds).

The estimator is advisory, so the tests pin *bounds*, not exact
numbers: scans must be exact (the catalog has the true row counts),
and filters/joins over the TPC-H generator's data must stay within a
small constant q-error — enough to keep join ordering trustworthy.
"""

import pytest

from repro.engine import Database, Executor, TableDef
from repro.engine.stats import StatisticsCatalog
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    EtlFlow,
    Join,
    Loader,
    Selection,
)
from repro.expressions import ScalarType
from repro.planner import estimate_flow
from repro.sources import tpch

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL


def tpch_database(scale_factor=1.0):
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(scale_factor, seed=7))
    return database


def q_error(estimated, actual):
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


def test_scan_estimates_are_exact():
    database = tpch_database()
    catalog = StatisticsCatalog(database)
    flow = EtlFlow("scans")
    flow.add(Datastore("src", table="lineitem"))
    estimates = estimate_flow(flow, catalog)
    assert estimates["src"].rows == len(database.scan("lineitem").rows)


def test_equality_selectivity_uses_distinct_count():
    database = Database()
    database.create_table(TableDef("t", {"k": INT}))
    database.insert_many("t", [{"k": index % 10} for index in range(100)])
    flow = EtlFlow("eq")
    flow.chain(
        Datastore("src", table="t"),
        Selection("pick", predicate="k = 3"),
    )
    estimates = estimate_flow(flow, StatisticsCatalog(database))
    # 10 distinct values over 100 rows -> ~10 rows expected, 10 actual.
    assert q_error(estimates["pick"].rows, 10) <= 1.5


def test_range_selectivity_uses_histogram():
    database = Database()
    database.create_table(TableDef("t", {"k": INT}))
    database.insert_many("t", [{"k": index} for index in range(100)])
    flow = EtlFlow("range")
    flow.chain(
        Datastore("src", table="t"),
        Selection("pick", predicate="k < 25"),
    )
    estimates = estimate_flow(flow, StatisticsCatalog(database))
    assert q_error(estimates["pick"].rows, 25) <= 1.5


def test_out_of_range_literal_estimates_zero():
    database = Database()
    database.create_table(TableDef("t", {"k": INT}))
    database.insert_many("t", [{"k": index} for index in range(100)])
    flow = EtlFlow("none")
    flow.chain(
        Datastore("src", table="t"),
        Selection("pick", predicate="k = 1000"),
    )
    estimates = estimate_flow(flow, StatisticsCatalog(database))
    assert estimates["pick"].rows == 0.0


def _joined_flow():
    """lineitem JOIN part JOIN supplier, filtered and aggregated."""
    flow = EtlFlow("tpch_planned")
    flow.add(Datastore("src_lineitem", table="lineitem"))
    flow.add(Datastore("src_part", table="part"))
    flow.add(Datastore("src_supplier", table="supplier"))
    flow.add(
        Join("j_part", left_keys=("l_partkey",), right_keys=("p_partkey",))
    )
    flow.add(
        Join("j_supp", left_keys=("l_suppkey",), right_keys=("s_suppkey",))
    )
    flow.add(Selection("cheap", predicate="l_quantity <= 25"))
    flow.add(
        Aggregation(
            "per_brand",
            group_by=("p_brand",),
            aggregates=(
                AggregationSpec(
                    output="qty", function="SUM", input="l_quantity"
                ),
            ),
        )
    )
    flow.add(Loader("out", table="out_per_brand", mode="replace"))
    flow.connect("src_lineitem", "j_part")
    flow.connect("src_part", "j_part")
    flow.connect("j_part", "j_supp")
    flow.connect("src_supplier", "j_supp")
    flow.connect("j_supp", "cheap")
    flow.connect("cheap", "per_brand")
    flow.connect("per_brand", "out")
    return flow


#: Per-kind q-error budgets on the TPC-H workload.  Foreign-key joins
#: estimate tightly (containment holds); value filters and group-bys
#: lean on histograms/distinct products, so they get more slack.
Q_ERROR_BOUNDS = {
    "Datastore": 1.0,
    "Join": 2.0,
    "Selection": 2.5,
    "Aggregation": 3.0,
}


@pytest.mark.parametrize("scale_factor", [0.5, 1.0])
def test_tpch_q_error_within_bounds(scale_factor):
    database = tpch_database(scale_factor)
    executor = Executor(database, mode="planned")
    stats = executor.execute(_joined_flow())
    checked = 0
    for node in stats.nodes:
        bound = Q_ERROR_BOUNDS.get(node.kind)
        if bound is None or node.estimated_rows is None:
            continue
        checked += 1
        assert node.q_error <= bound, (
            f"{node.kind} {node.name}: estimated {node.estimated_rows:.0f}, "
            f"actual {node.output_rows}, q-error {node.q_error:.2f} "
            f"> bound {bound}"
        )
    assert checked >= 5  # scans, both joins, the filter, the aggregate


def test_join_containment_estimate():
    """|L JOIN R| = |L|*|R| / max(d(L.key), d(R.key)) on a known case."""
    database = Database()
    database.create_table(TableDef("fact", {"k": INT, "v": DEC}))
    database.create_table(TableDef("dim", {"k": INT}))
    database.insert_many(
        "fact", [{"k": index % 20, "v": 1.0} for index in range(200)]
    )
    database.insert_many("dim", [{"k": index} for index in range(20)])
    flow = EtlFlow("join")
    flow.add(Datastore("src_fact", table="fact"))
    flow.add(Datastore("src_dim", table="dim"))
    flow.add(Join("j", left_keys=("k",), right_keys=("k",)))
    flow.connect("src_fact", "j")
    flow.connect("src_dim", "j")
    estimates = estimate_flow(flow, StatisticsCatalog(database))
    # 200 * 20 / max(20, 20) = 200 — and the true join is 200 rows.
    assert q_error(estimates["j"].rows, 200) <= 1.1
